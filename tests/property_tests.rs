//! Property-based tests (proptest): the paper's invariants must hold for
//! arbitrary system sizes, participant subsets, seeds, adversaries and crash
//! patterns.
//!
//! # Reproducing failures from CI output
//!
//! Every case derives from a logged **master seed**: each iteration prints
//! `proptest <test>: case <i> of <n> (master seed <m> — rerun with
//! PROPTEST_MASTER_SEED=<m>)` to captured stdout, which the test harness
//! replays on failure. To reproduce a CI failure locally, run the named test
//! with `PROPTEST_MASTER_SEED=<m>` — the identical case sequence (and thus
//! the identical failing inputs) is re-derived deterministically; no
//! machine-local state is involved. The default master seed is 0, so plain
//! `cargo test` runs are stable from commit to commit.

use fast_leader_election::prelude::*;
use proptest::prelude::*;

/// Build one of the four adversary families from a small index.
fn adversary_from(kind: u8, seed: u64) -> Box<dyn Adversary> {
    match kind % 4 {
        0 => Box::new(RandomAdversary::with_seed(seed)),
        1 => Box::new(ObliviousAdversary::with_seed(seed)),
        2 => Box::new(SequentialAdversary::new()),
        _ => Box::new(CoinAwareAdversary::with_seed(seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Leader election: unique winner, someone wins, everyone returns, the
    /// history is linearizable — for arbitrary n, k, seed and adversary.
    #[test]
    fn election_invariants_hold(
        n in 2usize..12,
        extra in 0usize..4,
        seed in 0u64..1_000,
        kind in 0u8..4,
    ) {
        let system = n + extra;
        let setup = ElectionSetup::first_k_participate(system, n).with_seed(seed);
        let mut adversary = adversary_from(kind, seed);
        let report = run_leader_election(&setup, adversary.as_mut()).expect("terminates");
        prop_assert!(checks::unique_winner(&report));
        prop_assert!(checks::someone_won(&report));
        prop_assert!(checks::linearizable_test_and_set(&report));
        prop_assert_eq!(report.outcomes.len(), n);
    }

    /// A single sifting phase never eliminates everyone (Claim 3.1), under
    /// either sifter and any adversary.
    #[test]
    fn sifting_always_keeps_a_survivor(
        n in 1usize..14,
        seed in 0u64..1_000,
        kind in 0u8..4,
        heterogeneous in proptest::bool::ANY,
    ) {
        let setup = SiftSetup::all_participate(n).with_seed(seed);
        let mut adversary = adversary_from(kind, seed);
        let report = if heterogeneous {
            run_heterogeneous_poison_pill(&setup, adversary.as_mut())
        } else {
            run_poison_pill(&setup, 1.0 / (n as f64).sqrt(), adversary.as_mut())
        }.expect("terminates");
        prop_assert!(checks::at_least_one_survivor(&report));
        prop_assert_eq!(report.outcomes.len(), n);
    }

    /// Renaming always produces a set of distinct names inside 1..=n.
    #[test]
    fn renaming_names_form_a_partial_permutation(
        n in 2usize..8,
        k_fraction in 1usize..4,
        seed in 0u64..1_000,
        kind in 0u8..4,
    ) {
        let k = (n * k_fraction / 3).clamp(1, n);
        let setup = RenamingSetup {
            n,
            participants: (0..k).map(ProcId).collect(),
            seed,
        };
        let mut adversary = adversary_from(kind, seed);
        let report = run_renaming(&setup, adversary.as_mut()).expect("terminates");
        prop_assert_eq!(report.names().len(), k);
        prop_assert!(checks::valid_partial_renaming(&report, n));
    }

    /// Crashing any minority at any single point never breaks uniqueness,
    /// termination of correct processors, or linearizability.
    #[test]
    fn crashes_never_break_safety(
        n in 3usize..10,
        seed in 0u64..1_000,
        crash_at in 0u64..400,
    ) {
        let budget = n.div_ceil(2) - 1;
        let victims: Vec<ProcId> = (0..budget).map(|i| ProcId(n - 1 - i)).collect();
        let mut plan = CrashPlan::none();
        for victim in victims {
            plan = plan.and_then(crash_at, victim);
        }
        let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(seed), plan);
        let setup = ElectionSetup::all_participate(n).with_seed(seed);
        let report = run_leader_election(&setup, &mut adversary).expect("terminates");
        let participants: Vec<ProcId> = (0..n).map(ProcId).collect();
        prop_assert!(checks::unique_winner(&report));
        prop_assert!(checks::all_correct_returned(&report, &participants));
        prop_assert!(checks::linearizable_test_and_set(&report));
    }

    /// The simulator is deterministic: identical seeds and adversaries give
    /// identical traces, outcomes and message counts.
    #[test]
    fn executions_are_reproducible(
        n in 2usize..8,
        seed in 0u64..1_000,
    ) {
        let run = || {
            let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed).with_trace());
            for i in 0..n {
                sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
            }
            sim.run(&mut RandomAdversary::with_seed(seed ^ 0xabcd)).expect("terminates")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.trace.digest(), b.trace.digest());
        prop_assert_eq!(a.total_messages(), b.total_messages());
        prop_assert_eq!(a.winners(), b.winners());
    }

    /// Message complexity never undercuts the Ω(kn/16) lower bound of
    /// Corollary B.3 (for k ≥ 2; a lone participant talks to a quorum too,
    /// but the bound is trivial there).
    #[test]
    fn message_lower_bound_is_respected(
        n in 3usize..12,
        seed in 0u64..1_000,
    ) {
        let setup = ElectionSetup::all_participate(n).with_seed(seed);
        let report = run_leader_election(&setup, &mut RandomAdversary::with_seed(seed))
            .expect("terminates");
        let lower = (n * n) as f64 / 16.0;
        prop_assert!(
            report.total_messages() as f64 >= lower,
            "measured {} messages under the kn/16 = {lower} bound",
            report.total_messages()
        );
    }
}

/// Decode a small integer into one register write, covering every value
/// family and slot family the protocols use.
fn decoded_write(
    code: u64,
) -> (
    fast_leader_election::model::Slot,
    fast_leader_election::model::Value,
) {
    use fast_leader_election::model::{Priority, ProcId, ProcSet, Slot, Status, Value};
    let slot = match code % 3 {
        0 => Slot::Proc(ProcId((code / 3 % 7) as usize)),
        1 => Slot::Name((code / 3 % 5) as usize),
        _ => Slot::Global,
    };
    let value = match code % 5 {
        0 => Value::Flag(code.is_multiple_of(2)),
        1 => Value::Round((code / 5 % 9) as u32),
        2 => Value::Int((code / 5 % 11) as i64 - 5),
        3 => Value::Status(if code.is_multiple_of(2) {
            Status::Commit
        } else {
            Status::resolved_with_list(
                if code % 4 == 1 {
                    Priority::Low
                } else {
                    Priority::High
                },
                (0..(code / 5 % 6) as usize).map(ProcId).collect(),
            )
        }),
        _ => Value::ProcSet(ProcSet::from_vec(
            (0..(code / 5 % 8) as usize)
                .map(|i| ProcId(i * 2))
                .collect(),
        )),
    };
    (slot, value)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// Delta collect replies reconstruct the responder's view exactly: for a
    /// random write sequence with a collect after every prefix, the view a
    /// requester accumulates from deltas (with full snapshots as fallback)
    /// equals the full view the responder holds — and equals what the
    /// retained clone path would have shipped.
    #[test]
    fn delta_collect_merge_equals_full_view_merge(
        writes in 4u64..90,
        seed in 0u64..10_000,
        checkpoints in 2u64..9,
    ) {
        use fast_leader_election::model::store::{CollectCache, ReplicaStore};
        use fast_leader_election::model::{InstanceId, Key, ProcId};

        let instance = InstanceId::custom(9, 9);
        let mut responder = ReplicaStore::new();
        let mut cache = CollectCache::new();
        let responder_id = ProcId(1);

        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        for _ in 0..checkpoints {
            // A random burst of writes lands at the responder...
            for _ in 0..(writes / checkpoints).max(1) {
                let (slot, value) = decoded_write(next());
                responder.apply(Key::new(instance, slot), &value);
            }
            // ...then the requester collects: the responder answers relative
            // to the version the requester reports, and the reconstructed
            // view must equal the responder's actual full view.
            cache.prepare(instance, 2);
            let transfer = responder.transfer_since(instance, cache.known(responder_id));
            let reconstructed = cache.resolve(responder_id, transfer);
            let full = responder.view_of(instance);
            prop_assert_eq!(&*reconstructed, &full, "delta reconstruction diverged");
        }

        // Interleaving a collect of a *different* instance resets the cache;
        // the next collect falls back to a full snapshot and still agrees.
        cache.prepare(InstanceId::custom(9, 10), 2);
        cache.prepare(instance, 2);
        prop_assert_eq!(cache.known(responder_id), 0, "switch must invalidate");
        let transfer = responder.transfer_since(instance, cache.known(responder_id));
        let reconstructed = cache.resolve(responder_id, transfer);
        prop_assert_eq!(&*reconstructed, &responder.view_of(instance));
    }
}
