//! Property-based tests (proptest): the paper's invariants must hold for
//! arbitrary system sizes, participant subsets, seeds, adversaries and crash
//! patterns.

use fast_leader_election::prelude::*;
use proptest::prelude::*;

/// Build one of the four adversary families from a small index.
fn adversary_from(kind: u8, seed: u64) -> Box<dyn Adversary> {
    match kind % 4 {
        0 => Box::new(RandomAdversary::with_seed(seed)),
        1 => Box::new(ObliviousAdversary::with_seed(seed)),
        2 => Box::new(SequentialAdversary::new()),
        _ => Box::new(CoinAwareAdversary::with_seed(seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Leader election: unique winner, someone wins, everyone returns, the
    /// history is linearizable — for arbitrary n, k, seed and adversary.
    #[test]
    fn election_invariants_hold(
        n in 2usize..12,
        extra in 0usize..4,
        seed in 0u64..1_000,
        kind in 0u8..4,
    ) {
        let system = n + extra;
        let setup = ElectionSetup::first_k_participate(system, n).with_seed(seed);
        let mut adversary = adversary_from(kind, seed);
        let report = run_leader_election(&setup, adversary.as_mut()).expect("terminates");
        prop_assert!(checks::unique_winner(&report));
        prop_assert!(checks::someone_won(&report));
        prop_assert!(checks::linearizable_test_and_set(&report));
        prop_assert_eq!(report.outcomes.len(), n);
    }

    /// A single sifting phase never eliminates everyone (Claim 3.1), under
    /// either sifter and any adversary.
    #[test]
    fn sifting_always_keeps_a_survivor(
        n in 1usize..14,
        seed in 0u64..1_000,
        kind in 0u8..4,
        heterogeneous in proptest::bool::ANY,
    ) {
        let setup = SiftSetup::all_participate(n).with_seed(seed);
        let mut adversary = adversary_from(kind, seed);
        let report = if heterogeneous {
            run_heterogeneous_poison_pill(&setup, adversary.as_mut())
        } else {
            run_poison_pill(&setup, 1.0 / (n as f64).sqrt(), adversary.as_mut())
        }.expect("terminates");
        prop_assert!(checks::at_least_one_survivor(&report));
        prop_assert_eq!(report.outcomes.len(), n);
    }

    /// Renaming always produces a set of distinct names inside 1..=n.
    #[test]
    fn renaming_names_form_a_partial_permutation(
        n in 2usize..8,
        k_fraction in 1usize..4,
        seed in 0u64..1_000,
        kind in 0u8..4,
    ) {
        let k = (n * k_fraction / 3).clamp(1, n);
        let setup = RenamingSetup {
            n,
            participants: (0..k).map(ProcId).collect(),
            seed,
        };
        let mut adversary = adversary_from(kind, seed);
        let report = run_renaming(&setup, adversary.as_mut()).expect("terminates");
        prop_assert_eq!(report.names().len(), k);
        prop_assert!(checks::valid_partial_renaming(&report, n));
    }

    /// Crashing any minority at any single point never breaks uniqueness,
    /// termination of correct processors, or linearizability.
    #[test]
    fn crashes_never_break_safety(
        n in 3usize..10,
        seed in 0u64..1_000,
        crash_at in 0u64..400,
    ) {
        let budget = n.div_ceil(2) - 1;
        let victims: Vec<ProcId> = (0..budget).map(|i| ProcId(n - 1 - i)).collect();
        let mut plan = CrashPlan::none();
        for victim in victims {
            plan = plan.and_then(crash_at, victim);
        }
        let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(seed), plan);
        let setup = ElectionSetup::all_participate(n).with_seed(seed);
        let report = run_leader_election(&setup, &mut adversary).expect("terminates");
        let participants: Vec<ProcId> = (0..n).map(ProcId).collect();
        prop_assert!(checks::unique_winner(&report));
        prop_assert!(checks::all_correct_returned(&report, &participants));
        prop_assert!(checks::linearizable_test_and_set(&report));
    }

    /// The simulator is deterministic: identical seeds and adversaries give
    /// identical traces, outcomes and message counts.
    #[test]
    fn executions_are_reproducible(
        n in 2usize..8,
        seed in 0u64..1_000,
    ) {
        let run = || {
            let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed).with_trace());
            for i in 0..n {
                sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
            }
            sim.run(&mut RandomAdversary::with_seed(seed ^ 0xabcd)).expect("terminates")
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.trace.digest(), b.trace.digest());
        prop_assert_eq!(a.total_messages(), b.total_messages());
        prop_assert_eq!(a.winners(), b.winners());
    }

    /// Message complexity never undercuts the Ω(kn/16) lower bound of
    /// Corollary B.3 (for k ≥ 2; a lone participant talks to a quorum too,
    /// but the bound is trivial there).
    #[test]
    fn message_lower_bound_is_respected(
        n in 3usize..12,
        seed in 0u64..1_000,
    ) {
        let setup = ElectionSetup::all_participate(n).with_seed(seed);
        let report = run_leader_election(&setup, &mut RandomAdversary::with_seed(seed))
            .expect("terminates");
        let lower = (n * n) as f64 / 16.0;
        prop_assert!(
            report.total_messages() as f64 >= lower,
            "measured {} messages under the kn/16 = {lower} bound",
            report.total_messages()
        );
    }
}
