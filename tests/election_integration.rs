//! Cross-crate integration tests: the full leader election driven through the
//! public API, across backends, adversaries and failure patterns.

use fast_leader_election::prelude::*;

fn adversaries(seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(RandomAdversary::with_seed(seed)),
        Box::new(ObliviousAdversary::with_seed(seed)),
        Box::new(SequentialAdversary::new()),
        Box::new(CoinAwareAdversary::with_seed(seed)),
    ]
}

#[test]
fn election_has_unique_winner_across_adversaries_and_sizes() {
    for n in [2usize, 3, 5, 8, 13, 21] {
        for seed in 0..3u64 {
            for mut adversary in adversaries(seed) {
                let setup = ElectionSetup::all_participate(n).with_seed(seed);
                let report = run_leader_election(&setup, adversary.as_mut())
                    .expect("the election terminates");
                assert!(
                    checks::unique_winner(&report),
                    "n={n} seed={seed} adversary={}",
                    adversary.name()
                );
                assert!(checks::someone_won(&report));
                assert!(checks::linearizable_test_and_set(&report));
                assert_eq!(report.outcomes.len(), n, "every participant returns");
            }
        }
    }
}

#[test]
fn election_is_adaptive_to_low_contention() {
    // With a single participant in a large system the winner finishes after a
    // constant number of communicate calls, regardless of n (Theorem A.5's
    // adaptivity in k).
    for n in [16usize, 64, 128] {
        let setup = ElectionSetup::first_k_participate(n, 1).with_seed(1);
        let report = run_leader_election(&setup, &mut RandomAdversary::with_seed(1))
            .expect("the election terminates");
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
        assert!(
            report.max_communicate_calls() <= 12,
            "a lone participant should finish in O(1) calls, took {}",
            report.max_communicate_calls()
        );
    }
}

#[test]
fn election_message_complexity_scales_with_participants_not_system_size() {
    // O(kn): doubling k at fixed n should roughly double the message count,
    // and small k at large n must cost far less than k = n.
    let n = 48;
    let messages_for = |k: usize| {
        let trials = 3u64;
        let total: u64 = (0..trials)
            .map(|seed| {
                let setup = ElectionSetup::first_k_participate(n, k).with_seed(seed);
                run_leader_election(&setup, &mut RandomAdversary::with_seed(seed))
                    .expect("terminates")
                    .total_messages()
            })
            .sum();
        total as f64 / trials as f64
    };
    let m2 = messages_for(2);
    let m48 = messages_for(48);
    assert!(
        m48 > 4.0 * m2,
        "full contention ({m48}) must cost much more than 2 participants ({m2})"
    );
    // With k = 2 the cost is O(2·n) plus constants — far below the O(n·n) of
    // full contention (the constant per communicate call is ~n messages and a
    // participant performs a couple dozen calls).
    assert!(
        m2 < m48 / 6.0,
        "two participants ({m2}) should cost a small fraction of full contention ({m48})"
    );
}

#[test]
fn election_survives_maximal_crash_burst() {
    // Crash ⌈n/2⌉-1 participants early; every correct participant must still
    // return, with at most one winner and a linearizable history.
    for n in [5usize, 9, 12] {
        for seed in 0..3u64 {
            let budget = n.div_ceil(2) - 1;
            let mut plan = CrashPlan::none();
            for (index, victim) in (0..budget).enumerate() {
                plan = plan.and_then(index as u64 * 20, ProcId(n - 1 - victim));
            }
            let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(seed), plan);
            let setup = ElectionSetup::all_participate(n).with_seed(seed);
            let report =
                run_leader_election(&setup, &mut adversary).expect("the election terminates");
            let participants: Vec<ProcId> = (0..n).map(ProcId).collect();
            assert!(checks::all_correct_returned(&report, &participants));
            assert!(checks::unique_winner(&report));
            assert!(checks::linearizable_test_and_set(&report));
            assert_eq!(report.crashed.len(), budget);
        }
    }
}

#[test]
fn late_arrivals_lose_once_the_door_is_closed() {
    // The sequential adversary runs processor 0 to completion first; the
    // doorway then forces every later arrival to lose, giving a linearizable
    // order with the early processor as the winner.
    let setup = ElectionSetup::all_participate(6).with_seed(4);
    let report = run_leader_election(&setup, &mut SequentialAdversary::new())
        .expect("the election terminates");
    assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
    for i in 1..6 {
        assert_eq!(report.outcome(ProcId(i)), Some(Outcome::Lose));
    }
}

#[test]
fn simulated_and_threaded_backends_agree_on_correctness() {
    // Same protocol code, two backends: both elect exactly one leader.
    let sim_report = run_leader_election(
        &ElectionSetup::all_participate(6).with_seed(9),
        &mut RandomAdversary::with_seed(9),
    )
    .expect("sim election terminates");
    assert_eq!(sim_report.winners().len(), 1);

    let threaded_report = run_threaded_leader_election(6, 9).expect("threaded election terminates");
    assert_eq!(threaded_report.winners().len(), 1);
    assert_eq!(threaded_report.outcomes.len(), 6);
}

#[test]
fn tournament_baseline_is_correct_but_slower() {
    let n = 32;
    let config = TournamentConfig::new(n);
    let mut sim = Simulator::new(SimConfig::new(n).with_seed(3));
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(TournamentTas::new(ProcId(i), config)));
    }
    let tournament = sim
        .run(&mut RandomAdversary::with_seed(3))
        .expect("the tournament terminates");
    assert!(checks::unique_winner(&tournament));
    assert!(checks::someone_won(&tournament));

    let ours = run_leader_election(
        &ElectionSetup::all_participate(n).with_seed(3),
        &mut RandomAdversary::with_seed(3),
    )
    .expect("the election terminates");

    assert!(
        tournament.max_communicate_calls() > ours.max_communicate_calls(),
        "at n={n} the tournament ({}) should already be slower than the paper's election ({})",
        tournament.max_communicate_calls(),
        ours.max_communicate_calls()
    );
}
