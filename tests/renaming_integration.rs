//! Cross-crate integration tests for the renaming algorithm and its baseline.

use fast_leader_election::prelude::*;

#[test]
fn renaming_assigns_a_permutation_under_every_adversary() {
    for n in [2usize, 4, 6, 10] {
        for seed in 0..3u64 {
            let adversaries: Vec<Box<dyn Adversary>> = vec![
                Box::new(RandomAdversary::with_seed(seed)),
                Box::new(SequentialAdversary::new()),
                Box::new(CoinAwareAdversary::with_seed(seed)),
                Box::new(ObliviousAdversary::with_seed(seed)),
            ];
            for mut adversary in adversaries {
                let setup = RenamingSetup::all_participate(n).with_seed(seed);
                let report = run_renaming(&setup, adversary.as_mut()).expect("renaming terminates");
                assert!(
                    checks::valid_tight_renaming(&report, n, n),
                    "n={n} seed={seed} adversary={} names={:?}",
                    adversary.name(),
                    report.names()
                );
            }
        }
    }
}

#[test]
fn partial_participation_still_yields_distinct_names() {
    // k < n participants renaming into 1..=n: all names distinct and in range.
    let n = 10;
    let k = 4;
    let setup = RenamingSetup {
        n,
        participants: (0..k).map(ProcId).collect(),
        seed: 7,
    };
    let report =
        run_renaming(&setup, &mut RandomAdversary::with_seed(7)).expect("renaming terminates");
    assert_eq!(report.names().len(), k);
    assert!(checks::valid_partial_renaming(&report, n));
}

#[test]
fn renaming_tolerates_a_crashing_minority() {
    let n: usize = 9;
    let budget = n.div_ceil(2) - 1;
    let mut plan = CrashPlan::none();
    for (index, victim) in (0..budget).enumerate() {
        plan = plan.and_then(100 + index as u64 * 100, ProcId(n - 1 - victim));
    }
    let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(2), plan);
    let setup = RenamingSetup::all_participate(n).with_seed(2);
    let report = run_renaming(&setup, &mut adversary).expect("renaming terminates");
    // Every correct processor gets a name; names never collide.
    let participants: Vec<ProcId> = (0..n).map(ProcId).collect();
    assert!(checks::all_correct_returned(&report, &participants));
    assert!(checks::valid_partial_renaming(&report, n));
}

#[test]
fn naive_baseline_is_correct_but_needs_more_attempts() {
    // Both renaming algorithms are correct; the paper's contention-aware
    // variant needs no more leader elections (attempts) than the random-order
    // baseline on average, because it never knowingly walks into a taken name.
    let n = 8;
    let trials = 5u64;
    let mut paper_msgs = 0u64;
    let mut naive_msgs = 0u64;
    for seed in 0..trials {
        let setup = RenamingSetup::all_participate(n).with_seed(seed);
        let report = run_renaming(&setup, &mut RandomAdversary::with_seed(seed))
            .expect("renaming terminates");
        assert!(checks::valid_tight_renaming(&report, n, n));
        paper_msgs += report.total_messages();

        let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
        for i in 0..n {
            sim.add_participant(ProcId(i), Box::new(RandomOrderRenaming::new(ProcId(i), n)));
        }
        let report = sim
            .run(&mut RandomAdversary::with_seed(seed))
            .expect("naive renaming terminates");
        assert!(checks::valid_tight_renaming(&report, n, n));
        naive_msgs += report.total_messages();
    }
    assert!(paper_msgs > 0 && naive_msgs > 0);
}

#[test]
fn threaded_renaming_matches_the_simulated_semantics() {
    let report = run_threaded_renaming(5, 3).expect("threaded renaming completes");
    let names: std::collections::BTreeSet<usize> = report.names().values().copied().collect();
    assert_eq!(names.len(), 5);
    assert!(names.into_iter().all(|u| (1..=5).contains(&u)));
}
