//! Differential tests for the simulator's performance modes.
//!
//! The simulator maintains its enabled-event set incrementally (see
//! `fle_sim::event_set`) and ships message payloads as refcount-shared
//! broadcasts and copy-on-write / delta view transfers (see
//! `fle_model::wire`); these tests pin both optimizations to the original
//! semantics:
//!
//! 1. **Per-step differential check** — `with_event_set_validation()` makes
//!    the engine assert, before *every* adversary decision, that the
//!    incremental indexes materialize to exactly the same ordered event list
//!    as a brute-force rescan of all processors and in-flight messages.
//! 2. **Whole-run equivalence** — the naive rebuild-per-event scheduler
//!    (`with_naive_event_set()`, the historical implementation's cost
//!    profile) must produce byte-identical execution reports: same trace
//!    digest, same outcomes, same metrics, same event counts, for every
//!    `(seed, adversary)` pair.
//! 3. **Payload-path equivalence** — the clone-per-message payload path
//!    (`with_naive_payloads()`) must produce byte-identical reports to the
//!    shared/delta path, alone and combined with the naive scheduler, across
//!    the election, renaming and crashy workloads.

use fast_leader_election::prelude::*;

fn adversary_from(kind: u8, seed: u64) -> Box<dyn Adversary> {
    match kind % 4 {
        0 => Box::new(RandomAdversary::with_seed(seed)),
        1 => Box::new(ObliviousAdversary::with_seed(seed)),
        2 => Box::new(SequentialAdversary::new()),
        _ => Box::new(CoinAwareAdversary::with_seed(seed)),
    }
}

fn run_election(
    n: usize,
    seed: u64,
    kind: u8,
    configure: impl Fn(SimConfig) -> SimConfig,
) -> ExecutionReport {
    let config = configure(SimConfig::new(n).with_seed(seed).with_trace());
    let mut sim = Simulator::new(config);
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    let mut adversary = adversary_from(kind, seed ^ 0x5bd1);
    sim.run(adversary.as_mut()).expect("election terminates")
}

fn run_renaming_sim(
    n: usize,
    seed: u64,
    kind: u8,
    configure: impl Fn(SimConfig) -> SimConfig,
) -> ExecutionReport {
    let config = configure(SimConfig::new(n).with_seed(seed).with_trace());
    let mut sim = Simulator::new(config);
    let renaming_config = RenamingConfig::new(n);
    for i in 0..n {
        sim.add_participant(
            ProcId(i),
            Box::new(Renaming::new(ProcId(i), renaming_config)),
        );
    }
    let mut adversary = adversary_from(kind, seed ^ 0x5bd1);
    sim.run(adversary.as_mut()).expect("renaming terminates")
}

fn run_crashy_election(
    n: usize,
    seed: u64,
    configure: impl Fn(SimConfig) -> SimConfig,
) -> ExecutionReport {
    let config = configure(SimConfig::new(n).with_seed(seed).with_trace());
    let mut sim = Simulator::new(config);
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    let budget = n.div_ceil(2).saturating_sub(1);
    let mut plan = CrashPlan::none();
    for (index, victim) in (n - budget..n).enumerate() {
        plan = plan.and_then((index as u64 + 1) * 40, ProcId(victim));
    }
    let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(seed), plan);
    sim.run(&mut adversary).expect("election terminates")
}

fn assert_reports_identical(a: &ExecutionReport, b: &ExecutionReport, context: &str) {
    assert_eq!(
        a.trace.digest(),
        b.trace.digest(),
        "trace digest: {context}"
    );
    assert_eq!(
        a.trace.events(),
        b.trace.events(),
        "trace events: {context}"
    );
    assert_eq!(a.outcomes, b.outcomes, "outcomes: {context}");
    assert_eq!(a.intervals, b.intervals, "intervals: {context}");
    assert_eq!(a.metrics, b.metrics, "metrics: {context}");
    assert_eq!(a.crashed, b.crashed, "crashed list: {context}");
    assert_eq!(
        a.events_executed, b.events_executed,
        "event count: {context}"
    );
}

/// The incremental enabled-event set matches a brute-force rebuild at every
/// single decision point, across system sizes, seeds and all four adversary
/// families — including executions with crashes.
#[test]
fn incremental_event_set_matches_brute_force_at_every_step() {
    for n in [1usize, 2, 3, 5, 9, 16] {
        for seed in 0..3u64 {
            for kind in 0..4u8 {
                let report = run_election(n, seed, kind, |c| c.with_event_set_validation());
                assert!(!report.winners().is_empty() || n == 0);
            }
        }
    }
    for n in [2usize, 4, 6] {
        for seed in 0..2u64 {
            run_renaming_sim(n, seed, seed as u8, |c| c.with_event_set_validation());
        }
    }
    for n in [4usize, 7, 10] {
        for seed in 0..3u64 {
            run_crashy_election(n, seed, |c| c.with_event_set_validation());
        }
    }
}

/// A fixed `(seed, adversary)` pair yields byte-identical execution reports
/// under the incremental scheduler and under the naive rebuild-per-event
/// scheduler (the pre-refactor behaviour).
#[test]
fn naive_and_incremental_schedulers_yield_identical_reports() {
    for n in [1usize, 2, 4, 8, 13] {
        for seed in 0..3u64 {
            for kind in 0..4u8 {
                let incremental = run_election(n, seed, kind, |c| c);
                let naive = run_election(n, seed, kind, SimConfig::with_naive_event_set);
                assert_reports_identical(
                    &incremental,
                    &naive,
                    &format!("election n={n} seed={seed} kind={kind}"),
                );
            }
        }
    }
    for n in [3usize, 5] {
        for seed in 0..2u64 {
            let incremental = run_renaming_sim(n, seed, 0, |c| c);
            let naive = run_renaming_sim(n, seed, 0, SimConfig::with_naive_event_set);
            assert_reports_identical(&incremental, &naive, &format!("renaming n={n} seed={seed}"));
        }
    }
    for n in [5usize, 9] {
        for seed in 0..3u64 {
            let incremental = run_crashy_election(n, seed, |c| c);
            let naive = run_crashy_election(n, seed, SimConfig::with_naive_event_set);
            assert_reports_identical(
                &incremental,
                &naive,
                &format!("crashy election n={n} seed={seed}"),
            );
        }
    }
}

/// The shared/delta payload path produces byte-identical execution reports
/// to the retained clone-per-message path: same trace, outcomes, metrics and
/// event counts for every `(workload, seed, adversary)` combination. This is
/// the differential gate for the O(1)-payload data plane (shared broadcast
/// `Arc`s, copy-on-write snapshots, delta collect replies).
#[test]
fn clone_and_shared_payload_paths_yield_identical_reports() {
    for n in [1usize, 2, 4, 8, 13] {
        for seed in 0..3u64 {
            for kind in 0..4u8 {
                let shared = run_election(n, seed, kind, |c| c);
                let cloned = run_election(n, seed, kind, SimConfig::with_naive_payloads);
                assert_reports_identical(
                    &shared,
                    &cloned,
                    &format!("payload election n={n} seed={seed} kind={kind}"),
                );
            }
        }
    }
    for n in [3usize, 5] {
        for seed in 0..2u64 {
            let shared = run_renaming_sim(n, seed, 0, |c| c);
            let cloned = run_renaming_sim(n, seed, 0, SimConfig::with_naive_payloads);
            assert_reports_identical(
                &shared,
                &cloned,
                &format!("payload renaming n={n} seed={seed}"),
            );
        }
    }
    for n in [5usize, 9] {
        for seed in 0..3u64 {
            let shared = run_crashy_election(n, seed, |c| c);
            let cloned = run_crashy_election(n, seed, SimConfig::with_naive_payloads);
            assert_reports_identical(
                &shared,
                &cloned,
                &format!("payload crashy election n={n} seed={seed}"),
            );
        }
    }
}

/// Both reference axes at once: the fully naive engine (rebuild-per-event
/// scheduler + clone-per-message payloads) agrees with the fully optimized
/// one, so the two optimizations cannot mask each other's divergences.
#[test]
fn fully_naive_and_fully_optimized_engines_agree() {
    for n in [2usize, 7, 12] {
        for seed in 0..2u64 {
            for kind in 0..4u8 {
                let optimized = run_election(n, seed, kind, |c| c);
                let naive = run_election(n, seed, kind, |c| {
                    c.with_naive_event_set().with_naive_payloads()
                });
                assert_reports_identical(
                    &optimized,
                    &naive,
                    &format!("fully-naive election n={n} seed={seed} kind={kind}"),
                );
            }
        }
    }
}

/// Determinism: running the same configuration twice yields byte-identical
/// reports (a regression gate for the incremental bookkeeping, whose order
/// must depend only on the decision sequence).
#[test]
fn repeated_runs_are_byte_identical() {
    for n in [2usize, 6, 11] {
        for seed in 0..3u64 {
            for kind in 0..4u8 {
                let a = run_election(n, seed, kind, |c| c);
                let b = run_election(n, seed, kind, |c| c);
                assert_reports_identical(&a, &b, &format!("repeat n={n} seed={seed} kind={kind}"));
            }
        }
    }
}
