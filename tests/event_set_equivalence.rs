//! Differential tests for the incremental enabled-event scheduler.
//!
//! The simulator maintains its enabled-event set incrementally (see
//! `fle_sim::event_set`); these tests pin that optimization to the original
//! semantics in two ways:
//!
//! 1. **Per-step differential check** — `with_event_set_validation()` makes
//!    the engine assert, before *every* adversary decision, that the
//!    incremental indexes materialize to exactly the same ordered event list
//!    as a brute-force rescan of all processors and in-flight messages.
//! 2. **Whole-run equivalence** — the naive rebuild-per-event scheduler
//!    (`with_naive_event_set()`, the historical implementation's cost
//!    profile) must produce byte-identical execution reports: same trace
//!    digest, same outcomes, same metrics, same event counts, for every
//!    `(seed, adversary)` pair.

use fast_leader_election::prelude::*;

fn adversary_from(kind: u8, seed: u64) -> Box<dyn Adversary> {
    match kind % 4 {
        0 => Box::new(RandomAdversary::with_seed(seed)),
        1 => Box::new(ObliviousAdversary::with_seed(seed)),
        2 => Box::new(SequentialAdversary::new()),
        _ => Box::new(CoinAwareAdversary::with_seed(seed)),
    }
}

fn run_election(
    n: usize,
    seed: u64,
    kind: u8,
    configure: impl Fn(SimConfig) -> SimConfig,
) -> ExecutionReport {
    let config = configure(SimConfig::new(n).with_seed(seed).with_trace());
    let mut sim = Simulator::new(config);
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    let mut adversary = adversary_from(kind, seed ^ 0x5bd1);
    sim.run(adversary.as_mut()).expect("election terminates")
}

fn run_renaming_sim(
    n: usize,
    seed: u64,
    kind: u8,
    configure: impl Fn(SimConfig) -> SimConfig,
) -> ExecutionReport {
    let config = configure(SimConfig::new(n).with_seed(seed).with_trace());
    let mut sim = Simulator::new(config);
    let renaming_config = RenamingConfig::new(n);
    for i in 0..n {
        sim.add_participant(
            ProcId(i),
            Box::new(Renaming::new(ProcId(i), renaming_config)),
        );
    }
    let mut adversary = adversary_from(kind, seed ^ 0x5bd1);
    sim.run(adversary.as_mut()).expect("renaming terminates")
}

fn run_crashy_election(
    n: usize,
    seed: u64,
    configure: impl Fn(SimConfig) -> SimConfig,
) -> ExecutionReport {
    let config = configure(SimConfig::new(n).with_seed(seed).with_trace());
    let mut sim = Simulator::new(config);
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    let budget = n.div_ceil(2).saturating_sub(1);
    let mut plan = CrashPlan::none();
    for (index, victim) in (n - budget..n).enumerate() {
        plan = plan.and_then((index as u64 + 1) * 40, ProcId(victim));
    }
    let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(seed), plan);
    sim.run(&mut adversary).expect("election terminates")
}

fn assert_reports_identical(a: &ExecutionReport, b: &ExecutionReport, context: &str) {
    assert_eq!(
        a.trace.digest(),
        b.trace.digest(),
        "trace digest: {context}"
    );
    assert_eq!(
        a.trace.events(),
        b.trace.events(),
        "trace events: {context}"
    );
    assert_eq!(a.outcomes, b.outcomes, "outcomes: {context}");
    assert_eq!(a.intervals, b.intervals, "intervals: {context}");
    assert_eq!(a.metrics, b.metrics, "metrics: {context}");
    assert_eq!(a.crashed, b.crashed, "crashed list: {context}");
    assert_eq!(
        a.events_executed, b.events_executed,
        "event count: {context}"
    );
}

/// The incremental enabled-event set matches a brute-force rebuild at every
/// single decision point, across system sizes, seeds and all four adversary
/// families — including executions with crashes.
#[test]
fn incremental_event_set_matches_brute_force_at_every_step() {
    for n in [1usize, 2, 3, 5, 9, 16] {
        for seed in 0..3u64 {
            for kind in 0..4u8 {
                let report = run_election(n, seed, kind, |c| c.with_event_set_validation());
                assert!(!report.winners().is_empty() || n == 0);
            }
        }
    }
    for n in [2usize, 4, 6] {
        for seed in 0..2u64 {
            run_renaming_sim(n, seed, seed as u8, |c| c.with_event_set_validation());
        }
    }
    for n in [4usize, 7, 10] {
        for seed in 0..3u64 {
            run_crashy_election(n, seed, |c| c.with_event_set_validation());
        }
    }
}

/// A fixed `(seed, adversary)` pair yields byte-identical execution reports
/// under the incremental scheduler and under the naive rebuild-per-event
/// scheduler (the pre-refactor behaviour).
#[test]
fn naive_and_incremental_schedulers_yield_identical_reports() {
    for n in [1usize, 2, 4, 8, 13] {
        for seed in 0..3u64 {
            for kind in 0..4u8 {
                let incremental = run_election(n, seed, kind, |c| c);
                let naive = run_election(n, seed, kind, SimConfig::with_naive_event_set);
                assert_reports_identical(
                    &incremental,
                    &naive,
                    &format!("election n={n} seed={seed} kind={kind}"),
                );
            }
        }
    }
    for n in [3usize, 5] {
        for seed in 0..2u64 {
            let incremental = run_renaming_sim(n, seed, 0, |c| c);
            let naive = run_renaming_sim(n, seed, 0, SimConfig::with_naive_event_set);
            assert_reports_identical(&incremental, &naive, &format!("renaming n={n} seed={seed}"));
        }
    }
    for n in [5usize, 9] {
        for seed in 0..3u64 {
            let incremental = run_crashy_election(n, seed, |c| c);
            let naive = run_crashy_election(n, seed, SimConfig::with_naive_event_set);
            assert_reports_identical(
                &incremental,
                &naive,
                &format!("crashy election n={n} seed={seed}"),
            );
        }
    }
}

/// Determinism: running the same configuration twice yields byte-identical
/// reports (a regression gate for the incremental bookkeeping, whose order
/// must depend only on the decision sequence).
#[test]
fn repeated_runs_are_byte_identical() {
    for n in [2usize, 6, 11] {
        for seed in 0..3u64 {
            for kind in 0..4u8 {
                let a = run_election(n, seed, kind, |c| c);
                let b = run_election(n, seed, kind, |c| c);
                assert_reports_identical(&a, &b, &format!("repeat n={n} seed={seed} kind={kind}"));
            }
        }
    }
}
