//! Differential tests across the execution backends.
//!
//! Every backend hosts the *same* protocol state machines through the
//! [`fle_model::SharedMemory`] contract (or, for the discrete-event
//! simulator, its inverted event-driven form). These tests run fixed-seed
//! instances on all of them and check:
//!
//! * the safety invariants hold everywhere (exactly one winner, distinct
//!   tight names),
//! * where determinism allows, the outputs are *identical*: the sequential
//!   backends agree bit-for-bit across repetitions, a lone participant
//!   wins on every backend, and the task-multiplexed executor's FIFO-gated
//!   schedule reproduces `SimMemory::run_all` outcome-for-outcome at any
//!   worker count.
//!
//! Byte-identical sim schedules across the refactor are covered separately
//! and exhaustively by `tests/event_set_equivalence.rs`, which this PR
//! leaves untouched.

use fast_leader_election::prelude::*;
use fle_sim::SimMemory;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Outcomes of a fixed-seed election on every backend, labelled.
fn election_on_all_backends(
    n: usize,
    k: usize,
    seed: u64,
) -> Vec<(&'static str, BTreeMap<ProcId, Outcome>)> {
    let mut results = Vec::new();

    // 1. The deterministic discrete-event simulator under a fair adversary.
    let setup = ElectionSetup {
        participants: (0..k).map(ProcId).collect(),
        ..ElectionSetup::all_participate(n)
    }
    .with_seed(seed);
    let report = run_leader_election(&setup, &mut RandomAdversary::with_seed(seed))
        .expect("the simulated election terminates");
    results.push(("sim", report.outcomes));

    // 2. The deterministic sequential register adapter.
    let mut memory = SimMemory::new(n, seed);
    results.push(("sim-memory", memory.run_all(election_participants(k))));

    // 3. The threaded message-passing runtime.
    let report = ThreadedRuntime::new(RuntimeConfig::new(n).with_seed(seed))
        .run(election_participants(k))
        .expect("the threaded election terminates");
    results.push(("threaded", report.outcomes));

    // 4. The in-process concurrent shared-register backend.
    let registers = Arc::new(SharedRegisters::new(4));
    let report = run_concurrent(&registers, seed, seed, election_participants(k));
    results.push(("concurrent", report.outcomes));

    // 5. The task-multiplexed executor, free-running: same registers shape,
    // same coin seeding, but participants are cooperative tasks on a small
    // worker pool instead of threads.
    let executor = Executor::new(ExecutorConfig::new(2));
    let registers = Arc::new(SharedRegisters::new(4));
    let ticket = executor.submit(
        &registers,
        seed,
        seed,
        election_participants(k),
        &FaultPlan::default(),
        CancelToken::none(),
    );
    match ticket.wait() {
        ExecResult::Completed(report) => results.push(("async", report.outcomes)),
        other => panic!("async: unexpected {other:?}"),
    }

    results
}

#[test]
fn every_backend_elects_exactly_one_winner() {
    for (n, k) in [(4usize, 4usize), (5, 3), (8, 8)] {
        for seed in 0..3u64 {
            for (backend, outcomes) in election_on_all_backends(n, k, seed) {
                assert_eq!(
                    outcomes.len(),
                    k,
                    "{backend}: n={n} k={k} seed={seed}: every participant returns"
                );
                let winners: Vec<&ProcId> = outcomes
                    .iter()
                    .filter(|(_, o)| o.is_win())
                    .map(|(p, _)| p)
                    .collect();
                assert_eq!(
                    winners.len(),
                    1,
                    "{backend}: n={n} k={k} seed={seed}: winners {winners:?}"
                );
                assert!(
                    outcomes
                        .values()
                        .all(|o| matches!(o, Outcome::Win | Outcome::Lose)),
                    "{backend}: elections return only WIN/LOSE"
                );
            }
        }
    }
}

#[test]
fn deterministic_backends_agree_where_determinism_allows() {
    // A lone participant must win on every backend — the one cross-backend
    // output fixed by the spec rather than by scheduling.
    for (backend, outcomes) in election_on_all_backends(4, 1, 9) {
        assert_eq!(
            outcomes.get(&ProcId(0)),
            Some(&Outcome::Win),
            "{backend}: a lone participant always wins"
        );
    }

    // The fully deterministic backends reproduce themselves bit-for-bit.
    for seed in 0..3u64 {
        let sim_a = &election_on_all_backends(6, 6, seed)[0].1;
        let sim_b = &election_on_all_backends(6, 6, seed)[0].1;
        assert_eq!(sim_a, sim_b, "the simulator is deterministic per seed");

        let mut mem_a = SimMemory::new(6, seed);
        let mut mem_b = SimMemory::new(6, seed);
        assert_eq!(
            mem_a.run_all(election_participants(6)),
            mem_b.run_all(election_participants(6)),
            "the sequential register adapter is deterministic per seed"
        );
    }
}

#[test]
fn renaming_is_tight_and_unique_on_every_backend() {
    let n = 4;
    let seed = 5;

    let mut all: Vec<(&'static str, BTreeMap<ProcId, usize>)> = Vec::new();

    let setup = RenamingSetup::all_participate(n).with_seed(seed);
    let report = run_renaming(&setup, &mut RandomAdversary::with_seed(seed))
        .expect("the simulated renaming terminates");
    all.push(("sim", report.names()));

    let mut memory = SimMemory::new(n, seed);
    let outcomes = memory.run_all(renaming_participants(n, n));
    all.push((
        "sim-memory",
        outcomes
            .into_iter()
            .filter_map(|(p, o)| match o {
                Outcome::Name(u) => Some((p, u)),
                _ => None,
            })
            .collect(),
    ));

    let report = ThreadedRuntime::new(RuntimeConfig::new(n).with_seed(seed))
        .run(renaming_participants(n, n))
        .expect("the threaded renaming terminates");
    all.push(("threaded", report.names()));

    let registers = Arc::new(SharedRegisters::new(2));
    let report = run_concurrent(&registers, 0, seed, renaming_participants(n, n));
    all.push(("concurrent", report.names()));

    let executor = Executor::new(ExecutorConfig::new(2));
    let registers = Arc::new(SharedRegisters::new(2));
    let ticket = executor.submit(
        &registers,
        0,
        seed,
        renaming_participants(n, n),
        &FaultPlan::default(),
        CancelToken::none(),
    );
    match ticket.wait() {
        ExecResult::Completed(report) => all.push((
            "async",
            report
                .outcomes
                .into_iter()
                .filter_map(|(p, o)| match o {
                    Outcome::Name(u) => Some((p, u)),
                    _ => None,
                })
                .collect(),
        )),
        other => panic!("async: unexpected {other:?}"),
    }

    for (backend, names) in all {
        assert_eq!(names.len(), n, "{backend}: every participant is renamed");
        let distinct: BTreeSet<usize> = names.values().copied().collect();
        assert_eq!(
            distinct.len(),
            n,
            "{backend}: names are distinct: {names:?}"
        );
        assert!(
            distinct.iter().all(|&u| (1..=n).contains(&u)),
            "{backend}: names are tight (1..={n}): {names:?}"
        );
    }
}

#[test]
fn gated_async_elections_match_the_sequential_adapter_bit_for_bit() {
    // The executor's FIFO-gated schedule serializes participants exactly
    // like `SimMemory::run_all`, and both seed their coins with the
    // simulator convention — so for a fixed seed the outcome maps must be
    // *equal*, not merely invariant-preserving. This is the async backend's
    // entry into the deterministic tier of the differential suite.
    let executor = Executor::new(ExecutorConfig::new(3));
    for (n, k) in [(4usize, 4usize), (5, 3), (8, 8)] {
        for seed in 0..3u64 {
            let mut memory = SimMemory::new(n, seed);
            let sequential = memory.run_all(election_participants(k));
            let registers = Arc::new(SharedRegisters::new(2));
            let report = run_gated_fifo(&executor, &registers, 0, seed, election_participants(k));
            assert_eq!(
                report.progress.outcomes, sequential,
                "n={n} k={k} seed={seed}"
            );
        }
    }
}

#[test]
fn gated_async_renaming_matches_the_sequential_adapter_bit_for_bit() {
    let executor = Executor::new(ExecutorConfig::new(3));
    for seed in 0..3u64 {
        let n = 4;
        let mut memory = SimMemory::new(n, seed);
        let sequential = memory.run_all(renaming_participants(n, n));
        let registers = Arc::new(SharedRegisters::new(2));
        let report = run_gated_fifo(&executor, &registers, 0, seed, renaming_participants(n, n));
        assert_eq!(report.progress.outcomes, sequential, "seed={seed}");
    }
}

#[test]
fn the_executor_is_deterministic_per_seed_and_any_worker_count() {
    // Same seed, different pool widths: the gated schedule admits one task
    // at a time, so the worker count must be invisible in the result.
    for workers in [1usize, 2, 6] {
        let executor = Executor::new(ExecutorConfig::new(workers));
        let registers = Arc::new(SharedRegisters::new(2));
        let first = run_gated_fifo(&executor, &registers, 0, 11, election_participants(6));
        let registers = Arc::new(SharedRegisters::new(2));
        let again = run_gated_fifo(&executor, &registers, 0, 11, election_participants(6));
        assert_eq!(
            first.progress.outcomes, again.progress.outcomes,
            "workers={workers}: repeatable"
        );
        assert_eq!(first.grants, again.grants, "workers={workers}");
        let mut memory = SimMemory::new(6, 11);
        assert_eq!(
            first.progress.outcomes,
            memory.run_all(election_participants(6)),
            "workers={workers}: and equal to the sequential adapter"
        );
    }
}

#[test]
fn async_instances_on_one_register_bank_do_not_interfere() {
    // The free-running analog of the concurrent non-interference test:
    // 16 namespaced elections share one executor and one register bank.
    let executor = Executor::new(ExecutorConfig::new(4));
    let registers = Arc::new(SharedRegisters::new(2));
    let tickets: Vec<_> = (0..16u64)
        .map(|namespace| {
            executor.submit(
                &registers,
                namespace,
                namespace,
                election_participants(3),
                &FaultPlan::default(),
                CancelToken::none(),
            )
        })
        .collect();
    for (namespace, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            ExecResult::Completed(report) => {
                assert_eq!(report.winners().len(), 1, "namespace {namespace}")
            }
            other => panic!("namespace {namespace}: unexpected {other:?}"),
        }
    }
    assert_eq!(registers.live_namespaces(), 16);
}

#[test]
fn concurrent_instances_on_one_register_bank_do_not_interfere() {
    // Many elections race on the same shared register bank under distinct
    // namespaces, in parallel; each must independently elect one winner.
    let registers = Arc::new(SharedRegisters::new(2));
    let results: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16u64)
            .map(|namespace| {
                let registers = Arc::clone(&registers);
                scope.spawn(move || {
                    run_concurrent(&registers, namespace, namespace, election_participants(3))
                        .winners()
                        .len()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        results.iter().all(|&w| w == 1),
        "winners per instance: {results:?}"
    );
    assert_eq!(registers.live_namespaces(), 16);
}
