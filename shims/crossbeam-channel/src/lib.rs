//! Offline shim for the subset of `crossbeam-channel` this workspace uses
//! (`unbounded`, `Sender::send`, `Receiver::recv`/`try_recv`), implemented
//! over `std::sync::mpsc`. The runtime crate only ever moves receivers into
//! their owning node thread, so the std channel's single-consumer restriction
//! is never observable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::mpsc;
use std::time::Duration;

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

/// The sending half of an unbounded channel.
#[derive(Debug)]
pub struct Sender<T>(mpsc::Sender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

impl<T> Sender<T> {
    /// Send a message, failing only when every receiver is gone.
    ///
    /// # Errors
    /// Returns [`SendError`] carrying the message back when the channel is
    /// disconnected.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.0.send(value)
    }
}

/// The receiving half of an unbounded channel.
#[derive(Debug)]
pub struct Receiver<T>(mpsc::Receiver<T>);

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is gone.
    ///
    /// # Errors
    /// Returns [`RecvError`] when the channel is disconnected and drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv()
    }

    /// Receive without blocking.
    ///
    /// # Errors
    /// Returns [`TryRecvError`] when the channel is empty or disconnected.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.0.try_recv()
    }

    /// Block until a message arrives, every sender is gone, or `timeout`
    /// elapses.
    ///
    /// # Errors
    /// Returns [`RecvTimeoutError::Timeout`] when no message arrived in time
    /// and [`RecvTimeoutError::Disconnected`] when the channel is
    /// disconnected and drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.0.recv_timeout(timeout)
    }

    /// Iterate over messages until the channel disconnects.
    pub fn iter(&self) -> mpsc::Iter<'_, T> {
        self.0.iter()
    }
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender(tx), Receiver(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.clone().send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        ));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), 7);
        drop(tx);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }

    #[test]
    fn disconnection_is_reported() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
