//! Offline shim for the subset of the `criterion` API this workspace's
//! benches use: `Criterion::benchmark_group`, `BenchmarkGroup::sample_size` /
//! `bench_with_input` / `finish`, `BenchmarkId::new`, `Bencher::iter` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Each benchmark is measured with a short calibration phase followed by
//! `sample_size` timed samples; the median ns/iteration is reported on stdout
//! and collected so `criterion_main!` can write a machine-readable
//! `BENCH_criterion_<bench>.json` next to the working directory. This is a
//! deliberately small stand-in — swap the workspace dependency for the
//! registry crate to get the full statistical machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function/parameter` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Iterations per second implied by the median.
    pub iters_per_sec: f64,
}

/// The benchmark harness root.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    /// Write every recorded measurement as JSON to `path`.
    pub fn write_json(&self, path: &std::path::Path) {
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (index, m) in self.results.iter().enumerate() {
            let comma = if index + 1 < self.results.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"iters_per_sec\": {:.2}}}{comma}",
                m.id.replace('"', "'"),
                m.median_ns,
                m.iters_per_sec
            );
        }
        out.push_str("  ]\n}\n");
        if let Err(error) = std::fs::write(path, out) {
            eprintln!("warning: could not write {}: {error}", path.display());
        }
    }
}

/// Identifier of one benchmark within a group: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Build an id from a function label and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}/{}", self.name, id.function, id.parameter);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_target: self.sample_size,
        };
        routine(&mut bencher, input);
        let mut per_iter: Vec<f64> = bencher.samples;
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median_ns = per_iter
            .get(per_iter.len() / 2)
            .copied()
            .unwrap_or(f64::NAN);
        let iters_per_sec = if median_ns > 0.0 {
            1.0e9 / median_ns
        } else {
            0.0
        };
        println!("bench {full_id:<48} {median_ns:>14.1} ns/iter ({iters_per_sec:>12.1} iter/s)");
        self.criterion.results.push(Measurement {
            id: full_id,
            median_ns,
            iters_per_sec,
        });
        self
    }

    /// End the group (measurements were already recorded eagerly).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_target: usize,
}

impl Bencher {
    /// Measure `routine`: calibrate a batch size that runs for at least a few
    /// milliseconds, then record `sample_size` timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: find how many iterations fill ~5 ms.
        let mut batch: u64 = 1;
        let batch_budget = Duration::from_millis(5);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_budget || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.sample_target {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

/// Define a function that runs a list of benchmark functions against one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Define `main` for a bench binary: run every group, then write the JSON
/// summary for this bench executable.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            let stem = std::env::current_exe()
                .ok()
                .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
                .map(|s| match s.rsplit_once('-') {
                    // Strip cargo's trailing metadata hash.
                    Some((base, hash)) if hash.len() == 16
                        && hash.bytes().all(|b| b.is_ascii_hexdigit()) => base.to_string(),
                    _ => s,
                })
                .unwrap_or_else(|| "bench".to_string());
            criterion.write_json(std::path::Path::new(&format!("BENCH_criterion_{stem}.json")));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
    }

    #[test]
    fn records_measurements() {
        let mut c = Criterion::default();
        trivial(&mut c);
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].id.starts_with("g/f/1"));
        assert!(c.measurements()[0].median_ns >= 0.0);
    }
}
