//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, deterministic implementation of the `rand 0.8` surface it
//! consumes: [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//! with `gen_bool` / `gen_range`. Swapping the workspace dependency back to
//! the registry crate requires no source changes elsewhere.
//!
//! Sampling is deterministic given the generator stream: `gen_range` uses a
//! 128-bit widening multiply (Lemire-style, without the rejection step — the
//! bias is < 2⁻⁴⁰ for every range in this workspace) and `gen_bool` uses the
//! top 53 bits as a uniform fraction in `[0, 1)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded to a full seed with splitmix64.
    /// Deterministic, but **not bit-compatible** with the registry crate's
    /// seeding: swapping the shim for the real `rand`/`rand_chacha` changes
    /// every seeded stream (and hence all recorded experiment numbers),
    /// without affecting any of the determinism or equivalence guarantees.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Integer types `gen_range` can sample.
pub trait UniformInt: Copy {
    /// Widen to `u64` (ranges in this workspace are non-negative).
    fn to_u64(self) -> u64;
    /// Narrow from `u64` (never overflows for in-range results).
    fn from_u64(value: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(value: u64) -> Self { value as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn widening_pick(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (self.start.to_u64(), self.end.to_u64());
        assert!(low < high, "cannot sample from an empty range");
        T::from_u64(low + widening_pick(rng, high - low))
    }
}

impl<T: UniformInt + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (self.start().to_u64(), self.end().to_u64());
        assert!(low <= high, "cannot sample from an empty range");
        let span = high - low;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(low + widening_pick(rng, span + 1))
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // Top 53 bits as a uniform fraction in [0, 1).
        let fraction = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        fraction < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = Counter(7);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
