//! Offline shim for the subset of `proptest` this workspace's property tests
//! use: the `proptest!` macro with `name in strategy` bindings, integer-range
//! and boolean strategies, `ProptestConfig { cases, .. }` and the
//! `prop_assert*` macros.
//!
//! Unlike the registry crate there is no shrinking: each test runs
//! `config.cases` deterministic cases whose inputs derive from a **logged
//! master seed** mixed with the test's name (FNV-1a), so failures reproduce
//! exactly across runs and machines *from CI output alone*: every case
//! prints its master seed and case index to captured stdout, which the test
//! harness replays on failure, and setting `PROPTEST_MASTER_SEED` to the
//! printed value re-derives the identical case sequence locally. Swap the
//! workspace dependency for the registry crate to get real shrinking and
//! persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The master seed every property test derives its cases from: the value of
/// the `PROPTEST_MASTER_SEED` environment variable, or 0.
///
/// The macro logs this seed with every case, so a CI failure line like
/// `proptest foo: case 17 of 24 (master seed 0 — …)` is enough to reproduce
/// the failing inputs anywhere.
pub fn master_seed() -> u64 {
    static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("PROPTEST_MASTER_SEED")
            .ok()
            .and_then(|value| value.trim().parse().ok())
            .unwrap_or(0)
    })
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for registry-crate compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The deterministic case generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded from the test's name.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// The generator the `proptest!` macro uses: the per-test name hash
    /// mixed with the logged master seed. With the default master seed (0)
    /// this is identical to [`TestRng::deterministic`], so recorded case
    /// sequences do not change unless a seed is explicitly injected.
    pub fn for_test(name: &str, master_seed: u64) -> Self {
        let mut rng = Self::deterministic(name);
        rng.state ^= master_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        rng
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value source for one `name in strategy` binding.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` or `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Assert inside a property (maps to `assert!`; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests. Supports the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0usize..10, flip in proptest::bool::ANY) {
///         prop_assert!(x < 10 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let master = $crate::master_seed();
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::TestRng::for_test(test_name, master);
            for _case in 0..config.cases {
                // Captured stdout: the harness replays it on failure, so the
                // last such line in CI output names the failing case and the
                // master seed needed to reproduce it.
                println!(
                    "proptest {}: case {} of {} (master seed {} — rerun with PROPTEST_MASTER_SEED={})",
                    test_name, _case, config.cases, master, master
                );
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::bool;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, seed in 0u64..100, flip in crate::bool::ANY) {
            prop_assert!((3..9).contains(&n));
            prop_assert!(seed < 100);
            prop_assert!(u8::from(flip) <= 1);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn master_seed_reseeds_every_test_stream() {
        // Master seed 0 preserves the historical per-name streams…
        let mut default = TestRng::for_test("x", 0);
        let mut named = TestRng::deterministic("x");
        assert_eq!(default.next_u64(), named.next_u64());
        // …while any other master seed derives a fresh deterministic one.
        let mut a = TestRng::for_test("x", 42);
        let mut b = TestRng::for_test("x", 42);
        let mut c = TestRng::for_test("x", 43);
        let first = a.next_u64();
        assert_eq!(first, b.next_u64());
        assert_ne!(first, c.next_u64());
        // The ambient master seed parses as a u64 (0 unless injected).
        let _ = crate::master_seed();
    }
}
