//! Offline shim for `rand_chacha`: a real ChaCha8 block cipher in counter
//! mode behind the [`ChaCha8Rng`] name.
//!
//! The workspace only needs a fast, high-quality, *seedable and
//! deterministic* generator; this implements the genuine ChaCha quarter-round
//! schedule with 8 double-rounds (the same core as the registry crate,
//! without claiming bit-compatibility of the seed expansion).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const WORDS: usize = 16;

/// A ChaCha stream cipher with 8 double-rounds, used as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, 64-bit
    /// stream id.
    state: [u32; WORDS],
    /// Current keystream block.
    block: [u32; WORDS],
    /// Next unread word of `block`; `WORDS` forces a refill.
    cursor: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= WORDS {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_word());
        let high = u64::from(self.next_word());
        high << 32 | low
    }

    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (word, chunk) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // counter and stream id start at zero.
        ChaCha8Rng {
            state,
            block: [0; WORDS],
            cursor: WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn stream_is_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64_000 bits total; a fair stream has ~32_000 ones.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let picks: Vec<usize> = (0..64).map(|_| rng.gen_range(0..10usize)).collect();
        assert!(picks.iter().all(|&p| p < 10));
        assert!(
            picks
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 3
        );
    }
}
