//! Offline shim for the subset of `serde` this workspace uses: the
//! `Serialize` / `Deserialize` *derive positions* on model types. Nothing in
//! the workspace serializes through serde yet (the bench JSON emitters write
//! their output by hand), so the traits are markers and the derives are
//! no-ops. Swapping the workspace dependency back to the registry crate
//! restores real serialization without source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
