//! Offline shim for `serde_derive`: the derive macros accept the same
//! positions as the real ones but expand to nothing. The workspace derives
//! `Serialize`/`Deserialize` on its model types for forward compatibility
//! (wire formats, snapshots) without currently serializing anything, so
//! an empty expansion is sufficient and keeps the build registry-free.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
