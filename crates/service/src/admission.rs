//! Bounded admission queues with pluggable overload policies.
//!
//! Each shard of the service owns one `AdmissionQueue`: a bounded FIFO
//! between `submit` callers and the shard's worker thread. What happens when
//! the queue is full is the [`OverloadPolicy`]:
//!
//! * [`OverloadPolicy::Shed`] — refuse immediately. The caller gets
//!   `SubmitError::Overloaded` and can retry with backoff; the queue never
//!   grows past its capacity and latency of admitted work stays bounded.
//! * [`OverloadPolicy::Block`] — apply backpressure: the submitting thread
//!   waits for space (optionally up to a timeout, after which the submission
//!   is refused like a shed). Queue depth stays bounded by slowing producers
//!   to the service's pace.
//! * [`OverloadPolicy::DropOldest`] — admit the new job by displacing the
//!   oldest *queued* (not yet started) one, whose ticket resolves to
//!   `Overloaded`. Freshest-first under pressure.
//!
//! The queue also tracks its high-water mark so overload benchmarks can
//! assert depth stayed ≤ capacity, and it distinguishes *closed* (service
//! shutting down) from *full* so callers can tell the two refusals apart.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a full admission queue does with a new submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Refuse immediately: `submit` returns `SubmitError::Overloaded`.
    Shed,
    /// Block the submitter until space frees up — for at most `timeout` when
    /// one is given, then refuse like [`OverloadPolicy::Shed`].
    Block {
        /// Longest a submitter may be held; `None` blocks indefinitely.
        timeout: Option<Duration>,
    },
    /// Admit the new job by dropping the oldest still-queued one (its ticket
    /// resolves to `SubmitError::Overloaded`).
    DropOldest,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy::Block { timeout: None }
    }
}

impl OverloadPolicy {
    /// A short label for reports and JSON documents.
    pub fn label(self) -> &'static str {
        match self {
            OverloadPolicy::Shed => "shed",
            OverloadPolicy::Block { .. } => "block",
            OverloadPolicy::DropOldest => "drop-oldest",
        }
    }
}

/// Receipt for an accepted push: what admission cost, for the metrics
/// layer. `depth` is measured under the queue lock immediately after the
/// push, so a recorder fed these receipts reproduces the queue's own
/// high-water mark exactly.
#[derive(Debug)]
pub(crate) struct Admitted<T> {
    /// The job displaced to make room (DropOldest only).
    pub(crate) displaced: Option<T>,
    /// Whether the submitter had to park for space first (Block only).
    pub(crate) blocked: bool,
    /// Queue depth right after this push.
    pub(crate) depth: usize,
}

/// Why a push was refused.
#[derive(Debug)]
pub(crate) enum AdmitError<T> {
    /// The queue was full (Shed, or Block that timed out); the job is handed
    /// back to the caller.
    Overloaded(T),
    /// The queue is closed (service shutting down).
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    queue: VecDeque<T>,
    open: bool,
    max_depth: usize,
    /// Submitters currently parked inside a blocking `push`. Maintained
    /// under the lock, so an observer that reads a non-zero count knows
    /// those submitters are genuinely waiting on `not_full` — the
    /// deterministic sync hook the tests use instead of sleeping.
    parked_pushers: usize,
}

/// A bounded MPSC queue between submitters and one shard worker.
#[derive(Debug)]
pub(crate) struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a job is pushed or the queue closes (worker waits).
    not_empty: Condvar,
    /// Signalled when a job is popped or the queue closes (Block waiters).
    not_full: Condvar,
    capacity: usize,
    policy: OverloadPolicy,
}

const LOCK: &str = "no queue user panics while holding the lock";

impl<T> AdmissionQueue<T> {
    pub(crate) fn new(capacity: usize, policy: OverloadPolicy) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                open: true,
                max_depth: 0,
                parked_pushers: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// Admit `item` under the queue's policy.
    ///
    /// `Ok(receipt)`: admitted — the [`Admitted`] receipt carries the
    /// post-push depth, whether the submitter blocked, and the job
    /// displaced to make room (DropOldest). `Err`: refused — full
    /// ([`AdmitError::Overloaded`]) or shutting down
    /// ([`AdmitError::Closed`]), with the item handed back.
    pub(crate) fn push(&self, item: T) -> Result<Admitted<T>, AdmitError<T>> {
        let mut inner = self.inner.lock().expect(LOCK);
        if !inner.open {
            return Err(AdmitError::Closed(item));
        }
        let mut blocked = false;
        if inner.queue.len() >= self.capacity {
            match self.policy {
                OverloadPolicy::Shed => return Err(AdmitError::Overloaded(item)),
                OverloadPolicy::DropOldest => {
                    let displaced = inner.queue.pop_front();
                    inner.queue.push_back(item);
                    let depth = inner.queue.len();
                    self.not_empty.notify_all();
                    return Ok(Admitted {
                        displaced,
                        blocked: false,
                        depth,
                    });
                }
                OverloadPolicy::Block { timeout } => {
                    blocked = true;
                    let deadline = timeout.map(|t| Instant::now() + t);
                    inner.parked_pushers += 1;
                    while inner.open && inner.queue.len() >= self.capacity {
                        inner = match deadline {
                            None => self.not_full.wait(inner).expect(LOCK),
                            Some(deadline) => {
                                let now = Instant::now();
                                if now >= deadline {
                                    inner.parked_pushers -= 1;
                                    return Err(AdmitError::Overloaded(item));
                                }
                                self.not_full
                                    .wait_timeout(inner, deadline - now)
                                    .expect(LOCK)
                                    .0
                            }
                        };
                    }
                    inner.parked_pushers -= 1;
                    if !inner.open {
                        return Err(AdmitError::Closed(item));
                    }
                }
            }
        }
        inner.queue.push_back(item);
        let depth = inner.queue.len();
        inner.max_depth = inner.max_depth.max(depth);
        self.not_empty.notify_all();
        Ok(Admitted {
            displaced: None,
            blocked,
            depth,
        })
    }

    /// Worker side: block for the next job; `None` once the queue is closed
    /// and empty.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect(LOCK);
        loop {
            if let Some(item) = inner.queue.pop_front() {
                self.not_full.notify_all();
                return Some(item);
            }
            if !inner.open {
                return None;
            }
            inner = self.not_empty.wait(inner).expect(LOCK);
        }
    }

    /// Close the queue and drain every not-yet-started job. Subsequent
    /// pushes fail with [`AdmitError::Closed`]; blocked pushers are woken
    /// and refused; the worker's next `pop` after the drain returns `None`.
    /// Idempotent (a second close returns an empty drain).
    pub(crate) fn close(&self) -> Vec<T> {
        let mut inner = self.inner.lock().expect(LOCK);
        inner.open = false;
        let drained = inner.queue.drain(..).collect();
        self.not_empty.notify_all();
        self.not_full.notify_all();
        drained
    }

    /// Current queue depth (metrics snapshots read this live).
    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().expect(LOCK).queue.len()
    }

    /// High-water mark of the queue depth since construction.
    pub(crate) fn max_depth(&self) -> usize {
        self.inner.lock().expect(LOCK).max_depth
    }

    /// Submitters currently parked inside a blocking [`push`](Self::push).
    ///
    /// The count is maintained under the queue lock: reading a non-zero
    /// value proves those submitters are waiting on the `not_full` condvar
    /// right now. Tests (and debugging probes) poll this instead of
    /// sleeping for "long enough", which is never long enough on a stalled
    /// CI box.
    #[cfg(test)]
    pub(crate) fn parked_pushers(&self) -> usize {
        self.inner.lock().expect(LOCK).parked_pushers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let queue = AdmissionQueue::new(4, OverloadPolicy::Shed);
        for i in 0..4 {
            let receipt = queue.push(i).unwrap();
            assert!(receipt.displaced.is_none());
            assert!(!receipt.blocked);
            assert_eq!(receipt.depth, i + 1, "depth measured after the push");
        }
        assert_eq!(queue.depth(), 4);
        assert_eq!(queue.max_depth(), 4);
        for i in 0..4 {
            assert_eq!(queue.pop(), Some(i));
        }
    }

    #[test]
    fn shed_refuses_when_full_and_hands_the_item_back() {
        let queue = AdmissionQueue::new(2, OverloadPolicy::Shed);
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        match queue.push(3) {
            Err(AdmitError::Overloaded(item)) => assert_eq!(item, 3),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(queue.max_depth(), 2, "depth never exceeds capacity");
    }

    #[test]
    fn drop_oldest_displaces_the_front() {
        let queue = AdmissionQueue::new(2, OverloadPolicy::DropOldest);
        queue.push(1).unwrap();
        queue.push(2).unwrap();
        let receipt = queue.push(3).unwrap();
        assert_eq!(receipt.displaced, Some(1), "oldest is displaced");
        assert_eq!(receipt.depth, 2, "displacement keeps depth at capacity");
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
    }

    #[test]
    fn block_with_timeout_refuses_eventually() {
        let queue = AdmissionQueue::new(
            1,
            OverloadPolicy::Block {
                timeout: Some(Duration::from_millis(5)),
            },
        );
        queue.push(1).unwrap();
        let started = Instant::now();
        assert!(matches!(queue.push(2), Err(AdmitError::Overloaded(2))));
        assert!(started.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn block_waits_for_a_pop() {
        let queue = Arc::new(AdmissionQueue::new(
            1,
            OverloadPolicy::Block { timeout: None },
        ));
        queue.push(1).unwrap();
        let popper = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                // Pop only once the submitter is provably parked in `push`,
                // so the receipt must report it blocked.
                while queue.parked_pushers() == 0 {
                    std::thread::yield_now();
                }
                queue.pop()
            })
        };
        // Blocks until the popper makes room.
        let receipt = queue.push(2).unwrap();
        assert!(receipt.blocked, "the submitter had to park for space");
        assert_eq!(popper.join().unwrap(), Some(1));
        assert_eq!(queue.pop(), Some(2));
    }

    #[test]
    fn close_drains_and_wakes_everyone() {
        let queue = Arc::new(AdmissionQueue::new(
            1,
            OverloadPolicy::Block { timeout: None },
        ));
        queue.push(1).unwrap();
        let blocked = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(2))
        };
        // Close only once the pusher is provably parked, so the close is
        // what wakes (and refuses) it.
        while queue.parked_pushers() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(queue.close(), vec![1]);
        assert!(matches!(
            blocked.join().unwrap(),
            Err(AdmitError::Closed(2))
        ));
        assert!(matches!(queue.push(3), Err(AdmitError::Closed(3))));
        assert_eq!(queue.pop(), None, "closed and empty");
        assert!(queue.close().is_empty(), "second close finds nothing");
    }
}
