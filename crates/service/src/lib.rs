//! A sharded front-end that serves many concurrent protocol instances.
//!
//! The repo's other crates run *one* election (or renaming) per execution;
//! this crate turns them into a **service**: callers submit instances —
//! `(key, system size, workload, seed)` — and the service multiplexes
//! thousands of them across a fixed pool of shard workers, each instance
//! executing on one of the pluggable [`backend`]s (deterministic simulator,
//! threaded message passing, the in-process concurrent shared-memory
//! backend — where all instances contend on one namespaced
//! [`fle_runtime::SharedRegisters`] bank — or the task-multiplexed async
//! backend, which runs every participant as a cooperative task on a small
//! process-wide [`fle_runtime::Executor`] pool, so thousands of in-flight
//! instances cost tasks rather than OS threads).
//!
//! Design:
//!
//! * **Sharding** — `instance key → shard` via a splitmix64 hash; each shard
//!   owns a bounded FIFO of submitted instances and one worker thread, so
//!   two instances on different shards run genuinely in parallel while a
//!   shard's own instances are serialized (per-key FIFO fairness).
//! * **Tickets** — [`ElectionService::submit`] is asynchronous: it enqueues
//!   and returns a [`Ticket`]; [`Ticket::wait`] blocks for that instance's
//!   [`InstanceResult`]. [`ElectionService::submit_wait`] is the synchronous
//!   convenience.
//! * **Admission control** — every shard queue is bounded
//!   ([`ServiceConfig::queue_capacity`]); a full queue applies the
//!   configured [`OverloadPolicy`]: shed (refuse with
//!   [`SubmitError::Overloaded`]), block the submitter (backpressure, with
//!   optional timeout), or drop the oldest queued job. Instances may carry a
//!   **deadline** ([`InstanceSpec::with_deadline`]), enforced both in-queue
//!   (expired jobs are skipped) and in-flight (a [`fle_model::CancelToken`]
//!   threaded through [`backend::InstanceBackend::run`]); either way the
//!   ticket resolves to [`SubmitError::DeadlineExceeded`].
//! * **Crash containment** — each instance runs under `catch_unwind`: a
//!   panicking instance (a protocol bug, or an injected
//!   [`fle_runtime::CrashMode::Panic`] fault) poisons only itself — its
//!   ticket resolves to [`SubmitError::InstanceFailed`], its status reports
//!   [`InstanceStatus::Failed`], its register namespace is retired — and the
//!   shard worker keeps draining its queue. Per-shard [`FailStats`] count
//!   the containments.
//! * **Fault injection** — [`ServiceConfig::with_fault_plan`] slides a
//!   [`fle_runtime::FaultyMemory`] under every instance of the *concurrent*
//!   backend: seeded deterministic delays, transient collect failures and
//!   crash-at-op-k, for robustness tests and overload benchmarks. (The sim
//!   and threaded backends ignore the plan: their memory is not the
//!   decorator-friendly register bank.)
//! * **Observability** — each shard carries an always-on
//!   [`fle_obs::ShardRecorder`] (disable with
//!   [`ServiceConfig::with_metrics`]): queue depth and high-water,
//!   admission-wait vs in-flight-run latency split, overload-policy
//!   outcomes, retirement lag, and fault counters surfaced from the
//!   backend. [`ElectionService::metrics_snapshot`] freezes them into a
//!   mergeable [`MetricsSnapshot`];
//!   [`ServiceStats::check_metrics`] cross-checks the per-shard sums
//!   against the aggregate counters.
//! * **Epoch-based retirement** — finished instances stay queryable via
//!   [`ElectionService::status`] for a bounded number of *epochs* (an epoch
//!   closes after [`ServiceConfig::epoch_size`] completions on that shard);
//!   once an instance's epoch falls out of the retention window, its record
//!   *and its registers in the concurrent bank* are purged, so a service
//!   that has processed a million instances holds state for only the recent
//!   window. Duplicate submission of a live (un-retired) key is rejected.
//!
//! # Example
//!
//! ```
//! use fle_service::{BackendKind, ElectionService, InstanceSpec, ServiceConfig};
//!
//! let service = ElectionService::new(ServiceConfig::new(2, BackendKind::Concurrent));
//! let tickets: Vec<_> = (0..16)
//!     .map(|key| {
//!         service
//!             .submit(InstanceSpec::election(key, 4))
//!             .expect("fresh keys are accepted")
//!     })
//!     .collect();
//! for ticket in tickets {
//!     let result = ticket.wait().expect("the service completes every instance");
//!     assert!(result.winner().is_some(), "exactly one winner per instance");
//! }
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 16);
//! stats.check_invariant().expect("no instance is lost or double-counted");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod backend;

pub use admission::OverloadPolicy;
pub use backend::{
    AsyncBackend, BackendKind, ConcurrentBackend, InstanceBackend, RunOutput, SimBackend,
    ThreadedBackend,
};
pub use fle_obs::{MetricsSnapshot, ShardSnapshot};

use admission::{AdmissionQueue, AdmitError};
use crossbeam_channel::{unbounded, Receiver, Sender};
use fle_model::{CancelToken, Outcome, ProcId};
use fle_obs::{FaultCounters, RunKind, ShardRecorder};
use fle_runtime::{FaultPlan, SharedRegisters};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of an [`ElectionService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards; each shard runs one worker thread.
    pub shards: usize,
    /// The execution backend instances run on.
    pub backend: BackendKind,
    /// Lock shards of the concurrent backend's register bank.
    pub register_shards: usize,
    /// Completions per shard that close an epoch.
    pub epoch_size: usize,
    /// Closed epochs a finished instance stays queryable before its record
    /// and registers are purged.
    pub retained_epochs: u64,
    /// Bound of each shard's admission queue (jobs queued, not running).
    pub queue_capacity: usize,
    /// What a full shard queue does with new submissions.
    pub overload: OverloadPolicy,
    /// Optional deterministic fault injection under every instance of the
    /// concurrent backend.
    pub fault_plan: Option<FaultPlan>,
    /// Whether each shard carries an always-on [`fle_obs::ShardRecorder`]
    /// (on by default; the overhead is a few relaxed atomics plus one
    /// uncontended mutex acquisition per instance).
    pub metrics: bool,
}

impl ServiceConfig {
    /// A service with `shards` workers on the given backend and default
    /// retirement settings (epochs of 64 completions, 2 epochs retained),
    /// queues of 1024 jobs with blocking backpressure, and no fault
    /// injection.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, backend: BackendKind) -> Self {
        assert!(shards > 0, "a service needs at least one shard");
        ServiceConfig {
            shards,
            backend,
            register_shards: (shards * 4).max(16),
            epoch_size: 64,
            retained_epochs: 2,
            queue_capacity: 1024,
            overload: OverloadPolicy::default(),
            fault_plan: None,
            metrics: true,
        }
    }

    /// Set the register-bank lock shard count.
    #[must_use]
    pub fn with_register_shards(mut self, register_shards: usize) -> Self {
        self.register_shards = register_shards.max(1);
        self
    }

    /// Set completions per epoch.
    #[must_use]
    pub fn with_epoch_size(mut self, epoch_size: usize) -> Self {
        self.epoch_size = epoch_size.max(1);
        self
    }

    /// Set how many closed epochs a finished instance stays queryable.
    #[must_use]
    pub fn with_retained_epochs(mut self, retained_epochs: u64) -> Self {
        self.retained_epochs = retained_epochs;
        self
    }

    /// Bound each shard's admission queue (0 is clamped to 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity.max(1);
        self
    }

    /// Choose what a full shard queue does with new submissions.
    #[must_use]
    pub fn with_overload_policy(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Inject deterministic faults under every concurrent-backend instance.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Turn the per-shard metrics recorders on or off (on by default).
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> Self {
        self.metrics = metrics;
        self
    }
}

/// The protocol family an instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The paper's leader election: exactly one participant wins.
    Election,
    /// The paper's tight renaming: participants end with distinct names in
    /// `1..=participants`.
    Renaming,
}

/// One instance submitted to the service.
#[derive(Debug, Clone, Copy)]
pub struct InstanceSpec {
    /// Caller-chosen identity; also the register namespace on the concurrent
    /// backend and the default seed.
    pub key: u64,
    /// System size (processors / replicas) of the instance.
    pub n: usize,
    /// How many of the `n` processors participate (`1..=n`).
    pub participants: usize,
    /// Seed for the instance's randomness.
    pub seed: u64,
    /// The protocol family to run.
    pub workload: Workload,
    /// Submit-to-completion budget. Expired in queue → skipped; expired in
    /// flight → cancelled. Either way the ticket resolves to
    /// [`SubmitError::DeadlineExceeded`]. `None` = no deadline.
    pub deadline: Option<Duration>,
}

impl InstanceSpec {
    /// A leader election among all `n` processors, seeded by the key.
    pub fn election(key: u64, n: usize) -> Self {
        InstanceSpec {
            key,
            n,
            participants: n,
            seed: key,
            workload: Workload::Election,
            deadline: None,
        }
    }

    /// A tight renaming among all `n` processors, seeded by the key.
    pub fn renaming(key: u64, n: usize) -> Self {
        InstanceSpec {
            workload: Workload::Renaming,
            ..InstanceSpec::election(key, n)
        }
    }

    /// Set the seed explicitly (the default is the key).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of participants (`k ≤ n`).
    #[must_use]
    pub fn with_participants(mut self, participants: usize) -> Self {
        self.participants = participants;
        self
    }

    /// Give the instance a submit-to-completion deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// The completed execution of one instance.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// The instance's key.
    pub key: u64,
    /// Outcome of every participant.
    pub outcomes: BTreeMap<ProcId, Outcome>,
    /// Submit-to-completion latency (queueing included).
    pub latency: Duration,
}

impl InstanceResult {
    /// The unique winner of an election instance, if exactly one exists.
    pub fn winner(&self) -> Option<ProcId> {
        let mut winners = self
            .outcomes
            .iter()
            .filter(|(_, o)| o.is_win())
            .map(|(p, _)| *p);
        match (winners.next(), winners.next()) {
            (Some(p), None) => Some(p),
            _ => None,
        }
    }

    /// The names assigned by a renaming instance.
    pub fn names(&self) -> BTreeMap<ProcId, usize> {
        self.outcomes
            .iter()
            .filter_map(|(p, o)| match o {
                Outcome::Name(u) => Some((*p, *u)),
                _ => None,
            })
            .collect()
    }
}

/// Why a submission was rejected, or why a ticket resolved without a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The key is already queued, running, or finished within the retention
    /// window.
    DuplicateKey(u64),
    /// The spec is malformed (zero system, participants out of range).
    InvalidSpec(String),
    /// The shard's queue is full and the overload policy refused the job
    /// (shed, block timeout, or — on a ticket — displaced by a newer job
    /// under [`OverloadPolicy::DropOldest`]).
    Overloaded,
    /// The instance's deadline passed before it finished (in queue or in
    /// flight).
    DeadlineExceeded(u64),
    /// The instance panicked; the failure was contained to this instance.
    InstanceFailed(u64),
    /// The service shut down before the instance ran.
    ServiceShutdown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::DuplicateKey(key) => write!(f, "instance {key} already exists"),
            SubmitError::InvalidSpec(reason) => write!(f, "invalid instance spec: {reason}"),
            SubmitError::Overloaded => write!(f, "the shard queue is full"),
            SubmitError::DeadlineExceeded(key) => {
                write!(f, "instance {key} missed its deadline")
            }
            SubmitError::InstanceFailed(key) => {
                write!(f, "instance {key} panicked (contained to this instance)")
            }
            SubmitError::ServiceShutdown => write!(f, "the service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What the service knows about a key right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Never submitted, or finished and already retired.
    Unknown,
    /// Waiting in its shard's queue.
    Queued,
    /// Currently executing on the shard worker.
    Running,
    /// Finished within the retention window.
    Done {
        /// The unique winner, for election workloads.
        winner: Option<ProcId>,
    },
    /// Panicked or was cancelled in flight; retained like a completion, then
    /// retired.
    Failed,
}

/// A claim on one submitted instance's result.
#[derive(Debug)]
pub struct Ticket {
    /// The instance's key.
    pub key: u64,
    rx: Receiver<Result<InstanceResult, SubmitError>>,
}

impl Ticket {
    /// Block until the instance resolves.
    ///
    /// # Errors
    /// [`SubmitError::ServiceShutdown`] when the service shut down with the
    /// instance still queued, [`SubmitError::DeadlineExceeded`] when its
    /// deadline passed first, [`SubmitError::InstanceFailed`] when it
    /// panicked, and [`SubmitError::Overloaded`] when a
    /// [`OverloadPolicy::DropOldest`] queue displaced it.
    pub fn wait(self) -> Result<InstanceResult, SubmitError> {
        match self.rx.recv() {
            Ok(resolution) => resolution,
            Err(_) => Err(SubmitError::ServiceShutdown),
        }
    }
}

/// Per-shard failure-containment counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailStats {
    /// Instance panics contained by the worker's `catch_unwind`.
    pub panics: u64,
    /// Instances cancelled in flight by their deadline.
    pub cancelled_in_flight: u64,
    /// Instances whose deadline had already passed when dequeued.
    pub expired_in_queue: u64,
}

impl FailStats {
    fn merge(&mut self, other: &FailStats) {
        self.panics += other.panics;
        self.cancelled_in_flight += other.cancelled_in_flight;
        self.expired_in_queue += other.expired_in_queue;
    }
}

/// Aggregate counters returned by [`ElectionService::shutdown`] (and
/// snapshotted by [`ElectionService::stats`]).
///
/// Every *admitted* submission ends in exactly one of four ways, which is
/// the conservation law [`ServiceStats::check_invariant`] asserts:
/// `submitted = completed + failed + shed + drained`. Refused submissions
/// (`rejected`) never enter the pipeline and are counted separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Submissions admitted to a shard queue.
    pub submitted: u64,
    /// Instances completed across all shards.
    pub completed: u64,
    /// Instances that panicked or were cancelled in flight.
    pub failed: u64,
    /// Admitted jobs that never ran: displaced by
    /// [`OverloadPolicy::DropOldest`] or expired in queue.
    pub shed: u64,
    /// Admitted jobs failed by shutdown before they started.
    pub drained: u64,
    /// Submissions refused at the door (`Overloaded` from a shed or a block
    /// timeout). Not part of `submitted`.
    pub rejected: u64,
    /// Finished instances whose records and registers were purged.
    pub retired: u64,
    /// Epochs closed across all shards.
    pub epochs_closed: u64,
    /// Namespaces still live in the concurrent register bank (0 unless the
    /// retention window still covers recent instances).
    pub live_register_namespaces: usize,
    /// Highest queue depth any shard reached (≤ queue capacity, always).
    pub max_queue_depth: usize,
    /// Failure-containment counters, merged over all shards.
    pub fail: FailStats,
}

impl ServiceStats {
    /// Check the conservation law `submitted = completed + failed + shed +
    /// drained`. Holds at every quiescent point (in particular after
    /// [`ElectionService::shutdown`]); a violation means the service lost or
    /// double-counted an instance.
    ///
    /// # Errors
    /// Returns a description of the imbalance.
    pub fn check_invariant(&self) -> Result<(), String> {
        let accounted = self.completed + self.failed + self.shed + self.drained;
        if self.submitted == accounted {
            Ok(())
        } else {
            Err(format!(
                "instance accounting imbalance: submitted {} ≠ completed {} + failed {} + \
                 shed {} + drained {} = {}",
                self.submitted, self.completed, self.failed, self.shed, self.drained, accounted
            ))
        }
    }

    /// Cross-check a [`MetricsSnapshot`] against these counters: the
    /// per-shard sums of the observability layer must equal the aggregate
    /// bookkeeping, and every started run must have exactly one wait and
    /// one run sample. Holds at quiescence (after
    /// [`ElectionService::shutdown_with_metrics`]); a mismatch means the
    /// recorders and the shard states disagree about what happened.
    ///
    /// # Errors
    /// Returns a description of every field that disagrees.
    pub fn check_metrics(&self, metrics: &MetricsSnapshot) -> Result<(), String> {
        let total = metrics.aggregate();
        let mut mismatches = Vec::new();
        let mut check = |label: &str, recorded: u64, stats: u64| {
            if recorded != stats {
                mismatches.push(format!("{label}: metrics {recorded} ≠ stats {stats}"));
            }
        };
        check("admitted", total.admitted, self.submitted);
        check("completed", total.completed, self.completed);
        check("failed", total.failed(), self.failed);
        check("shed", total.shed(), self.shed);
        check("drained", total.drained, self.drained);
        check("rejected", total.rejected(), self.rejected);
        check("retired", total.retired, self.retired);
        check("epochs_closed", total.epochs_closed, self.epochs_closed);
        check(
            "cancelled_in_flight",
            total.cancelled_in_flight,
            self.fail.cancelled_in_flight,
        );
        check("panics", total.panics, self.fail.panics);
        check(
            "expired_in_queue",
            total.expired_in_queue,
            self.fail.expired_in_queue,
        );
        check(
            "queue_high_water",
            total.queue_high_water as u64,
            self.max_queue_depth as u64,
        );
        // Every started run (completed, cancelled in flight, or panicked)
        // contributes exactly one wait and one run sample; expired-in-queue
        // jobs never start and are counted under `shed` instead.
        check(
            "wait samples",
            total.queue_wait_micros.count(),
            self.completed + self.failed,
        );
        check(
            "run samples",
            total.run_micros.count(),
            self.completed + self.failed,
        );
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches.join("; "))
        }
    }
}

/// The lifecycle phase of a tracked instance.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Queued,
    Running,
    Done { winner: Option<ProcId> },
    Failed,
}

/// Per-shard bookkeeping shared between `submit`, `status` and the worker.
#[derive(Debug, Default)]
struct ShardState {
    phases: HashMap<u64, Phase>,
    /// Finished instances in completion order: `(epoch, key, seq)`, where
    /// `seq` is the terminal sequence number at completion — retirement lag
    /// is `terminal_seq_at_purge - seq`.
    retire_queue: VecDeque<(u64, u64, u64)>,
    epoch: u64,
    completed_in_epoch: usize,
    /// Terminal events (completions + failures) seen on this shard, ever.
    terminal_seq: u64,
    submitted: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    drained: u64,
    rejected: u64,
    retired: u64,
    fail: FailStats,
}

struct Job {
    spec: InstanceSpec,
    submitted: Instant,
    deadline: Option<Instant>,
    reply: Sender<Result<InstanceResult, SubmitError>>,
}

/// The sharded multi-instance service. See the crate docs for the design.
pub struct ElectionService {
    config: ServiceConfig,
    queues: Vec<Arc<AdmissionQueue<Job>>>,
    workers: Vec<JoinHandle<()>>,
    states: Vec<Arc<Mutex<ShardState>>>,
    registers: Arc<SharedRegisters>,
    recorders: Vec<Option<Arc<ShardRecorder>>>,
}

impl ElectionService {
    /// Start the service: one worker thread per shard, all sharing one
    /// register bank (used by the concurrent backend).
    pub fn new(config: ServiceConfig) -> Self {
        let registers = Arc::new(SharedRegisters::new(config.register_shards));
        let mut queues = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut states = Vec::with_capacity(config.shards);
        let mut recorders = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let queue = Arc::new(AdmissionQueue::new(config.queue_capacity, config.overload));
            let state = Arc::new(Mutex::new(ShardState::default()));
            let recorder = config.metrics.then(|| Arc::new(ShardRecorder::new(shard)));
            let worker_queue = Arc::clone(&queue);
            let worker_state = Arc::clone(&state);
            let worker_registers = Arc::clone(&registers);
            let worker_config = config.clone();
            let worker_recorder = recorder.clone();
            let handle = std::thread::Builder::new()
                .name(format!("fle-service-shard-{shard}"))
                .spawn(move || {
                    shard_worker(
                        worker_queue,
                        worker_state,
                        worker_registers,
                        worker_config,
                        worker_recorder,
                    );
                })
                .expect("spawning a shard worker never fails on supported platforms");
            queues.push(queue);
            workers.push(handle);
            states.push(state);
            recorders.push(recorder);
        }
        ElectionService {
            config,
            queues,
            workers,
            states,
            registers,
            recorders,
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared register bank (the concurrent backend's state). Exposed so
    /// tests and benchmarks can assert isolation and retirement.
    pub fn registers(&self) -> &Arc<SharedRegisters> {
        &self.registers
    }

    fn shard_of(&self, key: u64) -> usize {
        // Reduce in u64 *before* narrowing: `hash as usize % len` would
        // keep only the low 32 bits of the hash on 32-bit targets, halving
        // the entropy the shard split sees.
        (fle_model::splitmix64(key) % self.queues.len() as u64) as usize
    }

    /// Enqueue an instance; returns a [`Ticket`] for its result.
    ///
    /// Under [`OverloadPolicy::Block`] this call applies backpressure: it
    /// parks the submitting thread until its shard has queue space (or the
    /// policy's timeout passes).
    ///
    /// # Errors
    /// [`SubmitError::InvalidSpec`] for malformed specs,
    /// [`SubmitError::DuplicateKey`] when the key is live or retained,
    /// [`SubmitError::Overloaded`] when the shard queue refused the job, and
    /// [`SubmitError::ServiceShutdown`] when the service is shutting down.
    pub fn submit(&self, spec: InstanceSpec) -> Result<Ticket, SubmitError> {
        if spec.n == 0 {
            return Err(SubmitError::InvalidSpec(
                "an instance needs at least one processor".to_string(),
            ));
        }
        if spec.participants == 0 || spec.participants > spec.n {
            return Err(SubmitError::InvalidSpec(format!(
                "participants must lie in 1..={}, got {}",
                spec.n, spec.participants
            )));
        }
        let shard = self.shard_of(spec.key);
        {
            // Reserve the key and count the admission attempt before the
            // queue sees the job, so a racing duplicate is refused even
            // while this submission is still blocked on backpressure.
            let mut state = lock(&self.states[shard]);
            if state.phases.contains_key(&spec.key) {
                return Err(SubmitError::DuplicateKey(spec.key));
            }
            state.phases.insert(spec.key, Phase::Queued);
            state.submitted += 1;
        }
        let submitted = Instant::now();
        let (reply, rx) = unbounded();
        let job = Job {
            spec,
            submitted,
            deadline: spec.deadline.map(|d| submitted + d),
            reply,
        };
        match self.queues[shard].push(job) {
            Ok(receipt) => {
                if let Some(recorder) = &self.recorders[shard] {
                    recorder.record_admitted(receipt.depth, receipt.blocked);
                }
                if let Some(displaced) = receipt.displaced {
                    // DropOldest: the displaced job was admitted, so it ends
                    // as shed — its ticket resolves to Overloaded.
                    {
                        let mut state = lock(&self.states[shard]);
                        state.phases.remove(&displaced.spec.key);
                        state.shed += 1;
                    }
                    if let Some(recorder) = &self.recorders[shard] {
                        recorder.record_displaced();
                    }
                    let _ = displaced.reply.send(Err(SubmitError::Overloaded));
                }
                Ok(Ticket { key: spec.key, rx })
            }
            Err(refusal) => {
                let (error, key) = match &refusal {
                    AdmitError::Overloaded(job) => (SubmitError::Overloaded, job.spec.key),
                    AdmitError::Closed(job) => (SubmitError::ServiceShutdown, job.spec.key),
                };
                let mut state = lock(&self.states[shard]);
                state.phases.remove(&key);
                // The job never entered the pipeline: undo the admission
                // count and book the refusal separately.
                state.submitted -= 1;
                if matches!(error, SubmitError::Overloaded) {
                    state.rejected += 1;
                    if let Some(recorder) = &self.recorders[shard] {
                        // Only Shed refuses at the door instantly; an
                        // Overloaded refusal under Block means its timeout
                        // expired (DropOldest never refuses).
                        match self.config.overload {
                            OverloadPolicy::Shed => recorder.record_rejected_shed(),
                            _ => recorder.record_rejected_block_timeout(),
                        }
                    }
                }
                Err(error)
            }
        }
    }

    /// Submit and block for the result.
    ///
    /// # Errors
    /// Propagates the errors of [`ElectionService::submit`] and
    /// [`Ticket::wait`].
    pub fn submit_wait(&self, spec: InstanceSpec) -> Result<InstanceResult, SubmitError> {
        self.submit(spec)?.wait()
    }

    /// What the service currently knows about `key`. Finished instances
    /// answer [`InstanceStatus::Done`] (or [`InstanceStatus::Failed`]) until
    /// their epoch is retired, then [`InstanceStatus::Unknown`].
    pub fn status(&self, key: u64) -> InstanceStatus {
        let state = lock(&self.states[self.shard_of(key)]);
        match state.phases.get(&key) {
            None => InstanceStatus::Unknown,
            Some(Phase::Queued) => InstanceStatus::Queued,
            Some(Phase::Running) => InstanceStatus::Running,
            Some(Phase::Done { winner }) => InstanceStatus::Done { winner: *winner },
            Some(Phase::Failed) => InstanceStatus::Failed,
        }
    }

    /// A snapshot of the aggregate counters. Exact at quiescence (nothing
    /// queued or running); transiently, an admitted-but-unfinished instance
    /// is counted in `submitted` only.
    pub fn stats(&self) -> ServiceStats {
        let mut stats = ServiceStats {
            live_register_namespaces: self.registers.live_namespaces(),
            ..ServiceStats::default()
        };
        for state in &self.states {
            let state = lock(state);
            stats.submitted += state.submitted;
            stats.completed += state.completed;
            stats.failed += state.failed;
            stats.shed += state.shed;
            stats.drained += state.drained;
            stats.rejected += state.rejected;
            stats.retired += state.retired;
            stats.epochs_closed += state.epoch;
            stats.fail.merge(&state.fail);
        }
        for queue in &self.queues {
            stats.max_queue_depth = stats.max_queue_depth.max(queue.max_depth());
        }
        stats
    }

    /// Freeze every shard's recorder into a mergeable [`MetricsSnapshot`]
    /// (live queue depths included), or `None` when metrics are disabled.
    /// Counters are exact at quiescence; taken mid-flight they are a
    /// consistent-enough view for progress reports.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let per_shard = self
            .recorders
            .iter()
            .zip(&self.queues)
            .map(|(recorder, queue)| {
                recorder
                    .as_ref()
                    .map(|recorder| recorder.snapshot(queue.depth()))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(MetricsSnapshot { per_shard })
    }

    /// Stop the service: in-flight instances finish, queued-but-unstarted
    /// jobs are failed promptly (their tickets resolve to
    /// [`SubmitError::ServiceShutdown`] and count as `drained`), workers are
    /// joined, and the final counters are returned.
    pub fn shutdown(mut self) -> ServiceStats {
        self.close_and_join();
        self.stats()
    }

    /// [`ElectionService::shutdown`], also returning the final
    /// [`MetricsSnapshot`] (taken after the drain, so shutdown-drained jobs
    /// are included; `None` when metrics are disabled).
    pub fn shutdown_with_metrics(mut self) -> (ServiceStats, Option<MetricsSnapshot>) {
        self.close_and_join();
        (self.stats(), self.metrics_snapshot())
    }

    /// Close every queue (failing unstarted jobs) and join the workers.
    /// Idempotent: the second call finds closed queues and no workers.
    fn close_and_join(&mut self) {
        for (shard, queue) in self.queues.iter().enumerate() {
            let drained = queue.close();
            if drained.is_empty() {
                continue;
            }
            {
                let mut state = lock(&self.states[shard]);
                for job in &drained {
                    state.phases.remove(&job.spec.key);
                    state.drained += 1;
                }
            }
            if let Some(recorder) = &self.recorders[shard] {
                recorder.record_drained(drained.len() as u64);
            }
            for job in drained {
                let _ = job.reply.send(Err(SubmitError::ServiceShutdown));
            }
        }
        for worker in std::mem::take(&mut self.workers) {
            worker
                .join()
                .expect("shard workers contain instance panics and never die");
        }
    }
}

impl Drop for ElectionService {
    /// Dropping the service without [`ElectionService::shutdown`] still
    /// fails queued jobs promptly and joins the workers (in-flight work
    /// finishes first).
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn lock(state: &Arc<Mutex<ShardState>>) -> std::sync::MutexGuard<'_, ShardState> {
    state
        .lock()
        .expect("shard bookkeeping never panics while locked")
}

/// Record a terminal event (`phase` entry stays queryable until retirement)
/// and advance the epoch machinery.
fn record_terminal(
    state: &mut ShardState,
    config: &ServiceConfig,
    registers: &SharedRegisters,
    recorder: Option<&ShardRecorder>,
    key: u64,
    phase: Phase,
) {
    let epoch = state.epoch;
    state.terminal_seq += 1;
    let seq = state.terminal_seq;
    state.phases.insert(key, phase);
    state.retire_queue.push_back((epoch, key, seq));
    state.completed_in_epoch += 1;
    if state.completed_in_epoch >= config.epoch_size {
        state.epoch += 1;
        state.completed_in_epoch = 0;
        if let Some(recorder) = recorder {
            recorder.record_epoch_closed();
        }
        // Everything that finished more than `retained_epochs` closed epochs
        // ago leaves the status table and the register bank.
        while let Some(&(done_epoch, old_key, done_seq)) = state.retire_queue.front() {
            if done_epoch + config.retained_epochs > state.epoch {
                break;
            }
            state.retire_queue.pop_front();
            state.phases.remove(&old_key);
            registers.retire(old_key);
            state.retired += 1;
            if let Some(recorder) = recorder {
                // Retirement lag: terminal events that happened on this
                // shard between the instance finishing and its purge.
                recorder.record_retirement(state.terminal_seq - done_seq);
            }
        }
    }
}

/// One shard's worker loop: execute jobs FIFO under deadline and panic
/// containment, record completions, close epochs and purge retired
/// instances (records + registers).
fn shard_worker(
    queue: Arc<AdmissionQueue<Job>>,
    state: Arc<Mutex<ShardState>>,
    registers: Arc<SharedRegisters>,
    config: ServiceConfig,
    recorder: Option<Arc<ShardRecorder>>,
) {
    let backend = config.backend.build(&registers, config.fault_plan.as_ref());
    while let Some(job) = queue.pop() {
        let key = job.spec.key;
        let dequeued = Instant::now();
        let wait_micros = (dequeued - job.submitted).as_micros() as u64;

        // Skip jobs whose deadline passed while they queued.
        if job.deadline.is_some_and(|deadline| dequeued >= deadline) {
            {
                let mut state = lock(&state);
                state.phases.remove(&key);
                state.shed += 1;
                state.fail.expired_in_queue += 1;
            }
            if let Some(recorder) = &recorder {
                recorder.record_expired_in_queue();
            }
            let _ = job.reply.send(Err(SubmitError::DeadlineExceeded(key)));
            continue;
        }

        lock(&state).phases.insert(key, Phase::Running);
        let cancel = match job.deadline {
            Some(deadline) => CancelToken::new().with_deadline(deadline),
            None => CancelToken::none(),
        };
        // Contain instance panics (protocol bugs, injected crashes): the
        // panic poisons only this instance; the worker keeps draining.
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| backend.run(&job.spec, &cancel)));
        let run_micros = dequeued.elapsed().as_micros() as u64;
        let observe = |kind: RunKind| {
            if let Some(recorder) = &recorder {
                recorder.record_run(wait_micros, run_micros, kind);
            }
        };
        match run {
            Ok(Some(output)) => {
                let result = InstanceResult {
                    key,
                    outcomes: output.outcomes,
                    latency: job.submitted.elapsed(),
                };
                let winner = result.winner();
                observe(RunKind::Completed);
                if let Some(recorder) = &recorder {
                    let faults = output.faults;
                    recorder.record_faults(&FaultCounters {
                        ops: faults.ops,
                        delays: faults.delays,
                        delay_micros: faults.delay_micros,
                        collect_failures: faults.collect_failures,
                        crashes: faults.crashes,
                    });
                }
                // Record completion *before* releasing the ticket, so a
                // caller that has seen its result also sees `Done` in
                // `status` (until retired).
                {
                    let mut state = lock(&state);
                    state.completed += 1;
                    record_terminal(
                        &mut state,
                        &config,
                        &registers,
                        recorder.as_deref(),
                        key,
                        Phase::Done { winner },
                    );
                }
                let _ = job.reply.send(Ok(result));
            }
            Ok(None) => {
                // The deadline tripped mid-run; the namespace may hold a
                // partial execution's registers — retire it now.
                registers.retire(key);
                observe(RunKind::CancelledInFlight);
                {
                    let mut state = lock(&state);
                    state.failed += 1;
                    state.fail.cancelled_in_flight += 1;
                    record_terminal(
                        &mut state,
                        &config,
                        &registers,
                        recorder.as_deref(),
                        key,
                        Phase::Failed,
                    );
                }
                let _ = job.reply.send(Err(SubmitError::DeadlineExceeded(key)));
            }
            Err(_panic) => {
                registers.retire(key);
                observe(RunKind::Panicked);
                {
                    let mut state = lock(&state);
                    state.failed += 1;
                    state.fail.panics += 1;
                    record_terminal(
                        &mut state,
                        &config,
                        &registers,
                        recorder.as_deref(),
                        key,
                        Phase::Failed,
                    );
                }
                let _ = job.reply.send(Err(SubmitError::InstanceFailed(key)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_runtime::CrashSpec;

    /// A fault plan that slows every concurrent instance down to tens of
    /// milliseconds — long enough that work submitted behind it is
    /// deterministically still queued when the test acts.
    fn slow_plan() -> FaultPlan {
        FaultPlan::new(11).with_delays(1000, 4_000)
    }

    /// Park until the shard worker has popped `key` and marked it running.
    ///
    /// Replaces the fixed `sleep(5ms)` these tests used to lean on: a sleep
    /// is a race (a stalled CI worker can take longer than any constant),
    /// while the status poll observes the exact transition the test needs
    /// and returns as soon as it happens.
    fn wait_until_running(service: &ElectionService, key: u64) {
        while service.status(key) != InstanceStatus::Running {
            std::thread::yield_now();
        }
    }

    #[test]
    fn submit_validates_specs() {
        let service = ElectionService::new(ServiceConfig::new(1, BackendKind::Sim));
        assert!(matches!(
            service.submit(InstanceSpec::election(0, 0)),
            Err(SubmitError::InvalidSpec(_))
        ));
        assert!(matches!(
            service.submit(InstanceSpec::election(0, 4).with_participants(5)),
            Err(SubmitError::InvalidSpec(_))
        ));
        service.shutdown();
    }

    #[test]
    fn duplicate_keys_are_rejected_while_live() {
        let service = ElectionService::new(ServiceConfig::new(1, BackendKind::Sim));
        let ticket = service.submit(InstanceSpec::election(7, 4)).unwrap();
        assert!(matches!(
            service.submit(InstanceSpec::election(7, 4)),
            Err(SubmitError::DuplicateKey(7))
        ));
        ticket.wait().unwrap();
        // Still within the retention window: a resubmit stays rejected.
        assert!(matches!(
            service.submit(InstanceSpec::election(7, 4)),
            Err(SubmitError::DuplicateKey(7))
        ));
        service.shutdown();
    }

    #[test]
    fn statuses_progress_to_done_and_then_retire() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent)
            .with_epoch_size(2)
            .with_retained_epochs(1);
        let service = ElectionService::new(config);
        assert_eq!(service.status(0), InstanceStatus::Unknown);

        let first = service.submit_wait(InstanceSpec::election(0, 3)).unwrap();
        assert!(matches!(
            service.status(0),
            InstanceStatus::Done { winner: Some(_) }
        ));
        assert_eq!(
            service.status(0),
            InstanceStatus::Done {
                winner: first.winner()
            }
        );

        // Three more completions close two epochs of size 2; instance 0's
        // epoch falls out of the 1-epoch retention window and is purged —
        // record and registers both.
        for key in 1..=3 {
            service.submit_wait(InstanceSpec::election(key, 3)).unwrap();
        }
        assert_eq!(service.status(0), InstanceStatus::Unknown);
        assert!(
            service
                .registers()
                .snapshot(0, fle_model::InstanceId::Contended)
                .is_empty(),
            "retired namespaces leave no registers behind"
        );
        // A retired key may be reused.
        service.submit_wait(InstanceSpec::election(0, 3)).unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 5);
        assert!(stats.retired >= 2);
        assert!(stats.epochs_closed >= 2);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn a_storm_of_concurrent_instances_each_elects_one_winner() {
        let service = ElectionService::new(ServiceConfig::new(4, BackendKind::Concurrent));
        let tickets: Vec<Ticket> = (0..200)
            .map(|key| service.submit(InstanceSpec::election(key, 4)).unwrap())
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for ticket in tickets {
            let result = ticket.wait().unwrap();
            assert!(seen.insert(result.key), "no duplicate results");
            assert_eq!(result.outcomes.len(), 4);
            assert!(result.winner().is_some(), "instance {}", result.key);
        }
        assert_eq!(seen.len(), 200, "no lost results");
        let stats = service.shutdown();
        assert_eq!(stats.completed, 200);
        assert_eq!(stats.submitted, 200);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn a_storm_of_async_instances_each_elects_one_winner() {
        // Same storm as the concurrent test, but instances run as
        // cooperative tasks on the process-wide executor: the service's
        // shard workers submit and wait, the executor multiplexes every
        // participant over its own small pool.
        let service = ElectionService::new(ServiceConfig::new(4, BackendKind::Async));
        let tickets: Vec<Ticket> = (0..200)
            .map(|key| service.submit(InstanceSpec::election(key, 4)).unwrap())
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for ticket in tickets {
            let result = ticket.wait().unwrap();
            assert!(seen.insert(result.key), "no duplicate results");
            assert_eq!(result.outcomes.len(), 4);
            assert!(result.winner().is_some(), "instance {}", result.key);
        }
        assert_eq!(seen.len(), 200, "no lost results");
        let stats = service.shutdown();
        assert_eq!(stats.completed, 200);
        assert_eq!(stats.submitted, 200);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn the_async_backend_contains_a_panicking_instance() {
        // A crash-at-op plan scoped to one key: that instance's executor
        // task panics, the panic is re-raised on the shard worker, and the
        // service's containment turns it into InstanceFailed — all other
        // keys complete.
        let plan =
            FaultPlan::new(5).with_crash(CrashSpec::panic_proc(ProcId(0), 2).only_namespace(3));
        let config = ServiceConfig::new(2, BackendKind::Async).with_fault_plan(plan);
        let service = ElectionService::new(config);
        let tickets: Vec<Ticket> = (0..8)
            .map(|key| service.submit(InstanceSpec::election(key, 4)).unwrap())
            .collect();
        for (key, ticket) in tickets.into_iter().enumerate() {
            if key == 3 {
                assert_eq!(ticket.wait().unwrap_err(), SubmitError::InstanceFailed(3));
                assert_eq!(service.status(3), InstanceStatus::Failed);
            } else {
                assert!(ticket.wait().is_ok(), "key {key}");
            }
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 7);
        assert_eq!(stats.failed, 1);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn async_deadlines_cancel_in_flight_instances() {
        // The deadline trips while the instance's tasks are live on the
        // executor: each task observes the tripped token at its next poll,
        // drains, and the ticket resolves DeadlineExceeded.
        let config = ServiceConfig::new(1, BackendKind::Async).with_fault_plan(slow_plan());
        let service = ElectionService::new(config);
        let doomed = service
            .submit(InstanceSpec::election(0, 4).with_deadline(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), SubmitError::DeadlineExceeded(0));
        assert_eq!(service.status(0), InstanceStatus::Failed);
        let fresh = service.submit_wait(InstanceSpec::election(1, 4)).unwrap();
        assert!(fresh.winner().is_some(), "the shard keeps serving");
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.fail.cancelled_in_flight, 1);
        assert_eq!(stats.completed, 1);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn renaming_instances_return_distinct_tight_names() {
        let service = ElectionService::new(ServiceConfig::new(2, BackendKind::Concurrent));
        for key in 0..8 {
            let result = service.submit_wait(InstanceSpec::renaming(key, 4)).unwrap();
            let names: std::collections::BTreeSet<usize> =
                result.names().values().copied().collect();
            assert_eq!(names.len(), 4);
            assert!(names.iter().all(|&u| (1..=4).contains(&u)));
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_finishes_in_flight_work_but_fails_queued_tickets_promptly() {
        // One shard; the fault plan makes the first instance take tens of
        // milliseconds, so the two behind it are still queued at shutdown.
        let config = ServiceConfig::new(1, BackendKind::Concurrent).with_fault_plan(slow_plan());
        let service = ElectionService::new(config);
        let first = service.submit(InstanceSpec::election(0, 4)).unwrap();
        let queued: Vec<Ticket> = (1..3)
            .map(|key| service.submit(InstanceSpec::election(key, 4)).unwrap())
            .collect();
        wait_until_running(&service, 0);
        let stats = service.shutdown();
        assert!(
            first.wait().is_ok(),
            "in-flight work is finished, not dropped"
        );
        for ticket in queued {
            assert_eq!(
                ticket.wait().unwrap_err(),
                SubmitError::ServiceShutdown,
                "queued-but-unstarted tickets resolve promptly"
            );
        }
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.drained, 2);
        assert_eq!(stats.submitted, 3);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn shed_policy_refuses_when_the_queue_is_full() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent)
            .with_fault_plan(slow_plan())
            .with_queue_capacity(1)
            .with_overload_policy(OverloadPolicy::Shed);
        let service = ElectionService::new(config);
        let running = service.submit(InstanceSpec::election(0, 4)).unwrap();
        wait_until_running(&service, 0);
        let queued = service.submit(InstanceSpec::election(1, 4)).unwrap();
        assert_eq!(
            service.submit(InstanceSpec::election(2, 4)).unwrap_err(),
            SubmitError::Overloaded
        );
        // The refused key never entered the pipeline and may be resubmitted
        // once there is room.
        assert_eq!(service.status(2), InstanceStatus::Unknown);
        assert!(running.wait().is_ok());
        assert!(queued.wait().is_ok());
        let (stats, metrics) = service.shutdown_with_metrics();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.submitted, 2);
        assert!(stats.max_queue_depth <= 1);
        stats.check_invariant().unwrap();
        let metrics = metrics.expect("metrics are on by default");
        stats.check_metrics(&metrics).unwrap();
        assert_eq!(metrics.aggregate().rejected_shed, 1, "shed at the door");
    }

    #[test]
    fn block_policy_times_out_into_overloaded() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent)
            .with_fault_plan(slow_plan())
            .with_queue_capacity(1)
            .with_overload_policy(OverloadPolicy::Block {
                timeout: Some(Duration::from_millis(5)),
            });
        let service = ElectionService::new(config);
        let running = service.submit(InstanceSpec::election(0, 4)).unwrap();
        wait_until_running(&service, 0);
        let queued = service.submit(InstanceSpec::election(1, 4)).unwrap();
        let started = Instant::now();
        assert_eq!(
            service.submit(InstanceSpec::election(2, 4)).unwrap_err(),
            SubmitError::Overloaded
        );
        assert!(
            started.elapsed() >= Duration::from_millis(5),
            "backpressure"
        );
        assert!(running.wait().is_ok());
        assert!(queued.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.rejected, 1);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn drop_oldest_displaces_the_queued_job() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent)
            .with_fault_plan(slow_plan())
            .with_queue_capacity(1)
            .with_overload_policy(OverloadPolicy::DropOldest);
        let service = ElectionService::new(config);
        let running = service.submit(InstanceSpec::election(0, 4)).unwrap();
        wait_until_running(&service, 0);
        let displaced = service.submit(InstanceSpec::election(1, 4)).unwrap();
        let fresh = service.submit(InstanceSpec::election(2, 4)).unwrap();
        assert_eq!(
            displaced.wait().unwrap_err(),
            SubmitError::Overloaded,
            "the displaced ticket resolves immediately"
        );
        assert!(running.wait().is_ok());
        assert!(fresh.wait().is_ok(), "the freshest job runs");
        let (stats, metrics) = service.shutdown_with_metrics();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.submitted, 3);
        stats.check_invariant().unwrap();
        let metrics = metrics.expect("metrics are on by default");
        stats.check_metrics(&metrics).unwrap();
        assert_eq!(
            metrics.aggregate().displaced,
            1,
            "drop-oldest displaced one"
        );
    }

    #[test]
    fn deadlines_expire_in_queue() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent).with_fault_plan(slow_plan());
        let service = ElectionService::new(config);
        let running = service.submit(InstanceSpec::election(0, 4)).unwrap();
        // Queued behind tens of milliseconds of work with a 1 ms budget.
        let doomed = service
            .submit(InstanceSpec::election(1, 4).with_deadline(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), SubmitError::DeadlineExceeded(1));
        assert!(running.wait().is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.fail.expired_in_queue, 1);
        assert_eq!(stats.shed, 1);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn deadlines_cancel_in_flight_and_retire_the_namespace() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent).with_fault_plan(slow_plan());
        let service = ElectionService::new(config);
        let doomed = service
            .submit(InstanceSpec::election(0, 4).with_deadline(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), SubmitError::DeadlineExceeded(0));
        assert_eq!(service.status(0), InstanceStatus::Failed);
        assert_eq!(
            service.registers().live_namespaces(),
            0,
            "a cancelled instance's partial registers are retired"
        );
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.fail.cancelled_in_flight, 1);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn a_panicking_instance_is_contained_to_itself() {
        // Poison exactly one key: processor 0 panics at its second operation
        // of instance 13, and only there.
        let plan =
            FaultPlan::new(5).with_crash(CrashSpec::panic_proc(ProcId(0), 2).only_namespace(13));
        let config = ServiceConfig::new(1, BackendKind::Concurrent).with_fault_plan(plan);
        let service = ElectionService::new(config);

        let poisoned = service.submit(InstanceSpec::election(13, 4)).unwrap();
        assert_eq!(
            poisoned.wait().unwrap_err(),
            SubmitError::InstanceFailed(13)
        );
        assert_eq!(service.status(13), InstanceStatus::Failed);
        assert_eq!(
            service.registers().live_namespaces(),
            0,
            "the panicked instance's namespace is retired"
        );

        // The worker survived: subsequent instances on the same shard
        // complete normally.
        for key in 0..5 {
            let result = service.submit_wait(InstanceSpec::election(key, 4)).unwrap();
            assert!(result.winner().is_some(), "instance {key}");
        }
        let stats = service.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.fail.panics, 1);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.submitted, 6);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn racing_submitters_on_one_key_admit_exactly_one() {
        for kind in [
            BackendKind::Sim,
            BackendKind::Threaded,
            BackendKind::Concurrent,
            BackendKind::Async,
        ] {
            let service = Arc::new(ElectionService::new(ServiceConfig::new(2, kind)));
            let barrier = Arc::new(std::sync::Barrier::new(8));
            let racers: Vec<_> = (0..8)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        service.submit(InstanceSpec::election(99, 4))
                    })
                })
                .collect();
            let mut tickets = Vec::new();
            let mut duplicates = 0;
            for racer in racers {
                match racer.join().unwrap() {
                    Ok(ticket) => tickets.push(ticket),
                    Err(SubmitError::DuplicateKey(99)) => duplicates += 1,
                    Err(other) => panic!("{kind}: unexpected error {other}"),
                }
            }
            assert_eq!(tickets.len(), 1, "{kind}: exactly one admission");
            assert_eq!(duplicates, 7, "{kind}: the other seven see DuplicateKey");
            assert!(tickets.pop().unwrap().wait().is_ok(), "{kind}");
            let service = Arc::into_inner(service).expect("all racers joined");
            let stats = service.shutdown();
            assert_eq!(stats.submitted, 1, "{kind}");
            stats.check_invariant().unwrap();
        }
    }

    #[test]
    fn sequential_keys_spread_evenly_across_shards() {
        // Regression for the shard-routing truncation bug: the hash must be
        // reduced modulo the shard count in u64, not after an `as usize`
        // narrowing. 10k sequential keys over 8 shards must stay within 2×
        // of the mean occupancy (splitmix64 is much better than that; 2× is
        // the alarm threshold, not the expectation).
        let service = ElectionService::new(ServiceConfig::new(8, BackendKind::Sim));
        let mut occupancy = [0u64; 8];
        for key in 0..10_000u64 {
            occupancy[service.shard_of(key)] += 1;
        }
        let mean = 10_000.0 / 8.0;
        for (shard, &count) in occupancy.iter().enumerate() {
            assert!(
                (count as f64) <= 2.0 * mean && (count as f64) >= mean / 2.0,
                "shard {shard} holds {count} of 10000 keys (mean {mean})"
            );
        }

        // The same balance must show up in the per-shard metrics: run a
        // small storm and read each shard's admitted count from its
        // recorder.
        let tickets: Vec<Ticket> = (0..2000)
            .map(|key| service.submit(InstanceSpec::election(key, 2)).unwrap())
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let (stats, metrics) = service.shutdown_with_metrics();
        let metrics = metrics.expect("metrics are on by default");
        stats.check_metrics(&metrics).unwrap();
        let mean = 2000.0 / 8.0;
        for shard in &metrics.per_shard {
            assert!(
                (shard.admitted as f64) <= 2.0 * mean && (shard.admitted as f64) >= mean / 2.0,
                "shard {} admitted {} of 2000 (mean {mean})",
                shard.shard,
                shard.admitted
            );
        }
    }

    #[test]
    fn an_already_expired_deadline_resolves_without_running() {
        // Regression for the cancel-stride contract: a deadline that has
        // already passed at submission must resolve DeadlineExceeded
        // without the instance ever executing.
        let service = ElectionService::new(ServiceConfig::new(1, BackendKind::Sim));
        let doomed = service
            .submit(InstanceSpec::election(0, 8).with_deadline(Duration::ZERO))
            .unwrap();
        assert_eq!(doomed.wait().unwrap_err(), SubmitError::DeadlineExceeded(0));
        let (stats, metrics) = service.shutdown_with_metrics();
        assert_eq!(stats.completed, 0, "the expired instance never ran");
        assert_eq!(stats.fail.expired_in_queue, 1);
        assert_eq!(stats.shed, 1);
        stats.check_invariant().unwrap();
        stats.check_metrics(&metrics.unwrap()).unwrap();
    }

    #[test]
    fn metrics_snapshot_agrees_with_stats_after_a_storm() {
        let config = ServiceConfig::new(4, BackendKind::Concurrent)
            .with_epoch_size(16)
            .with_retained_epochs(1);
        let service = ElectionService::new(config);
        let tickets: Vec<Ticket> = (0..300)
            .map(|key| service.submit(InstanceSpec::election(key, 4)).unwrap())
            .collect();
        for ticket in tickets {
            ticket.wait().unwrap();
        }
        let (stats, metrics) = service.shutdown_with_metrics();
        let metrics = metrics.expect("metrics are on by default");
        stats.check_invariant().unwrap();
        stats.check_metrics(&metrics).unwrap();
        let total = metrics.aggregate();
        assert_eq!(total.completed, 300);
        assert_eq!(total.queue_wait_micros.count(), 300);
        assert_eq!(total.run_micros.count(), 300);
        assert!(total.retired > 0, "epochs of 16 retire early instances");
        assert_eq!(
            total.retirement_lag.count(),
            total.retired,
            "every purge records its lag"
        );
        assert!(
            total.retirement_lag.max() >= 15,
            "a purged epoch's oldest instance waited a full epoch of terminals"
        );
    }

    #[test]
    fn metrics_can_be_disabled() {
        let service =
            ElectionService::new(ServiceConfig::new(1, BackendKind::Sim).with_metrics(false));
        service.submit_wait(InstanceSpec::election(0, 4)).unwrap();
        assert!(service.metrics_snapshot().is_none());
        let (stats, metrics) = service.shutdown_with_metrics();
        assert!(metrics.is_none(), "disabled metrics yield no snapshot");
        assert_eq!(stats.completed, 1);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn fault_activity_surfaces_in_the_metrics() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent)
            .with_fault_plan(FaultPlan::new(9).with_delays(500, 100));
        let service = ElectionService::new(config);
        for key in 0..8 {
            service.submit_wait(InstanceSpec::election(key, 4)).unwrap();
        }
        let (stats, metrics) = service.shutdown_with_metrics();
        let metrics = metrics.expect("metrics are on by default");
        stats.check_metrics(&metrics).unwrap();
        let total = metrics.aggregate();
        assert!(
            total.faults.ops > 0,
            "the backend's fault counters reach the shard recorder"
        );
        assert!(total.faults.delays > 0, "the delay plan fired at 50%");
    }

    #[test]
    fn dropping_the_service_fails_queued_tickets() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent).with_fault_plan(slow_plan());
        let service = ElectionService::new(config);
        let first = service.submit(InstanceSpec::election(0, 4)).unwrap();
        let queued = service.submit(InstanceSpec::election(1, 4)).unwrap();
        wait_until_running(&service, 0);
        drop(service);
        assert!(first.wait().is_ok());
        assert_eq!(queued.wait().unwrap_err(), SubmitError::ServiceShutdown);
    }
}
