//! A sharded front-end that serves many concurrent protocol instances.
//!
//! The repo's other crates run *one* election (or renaming) per execution;
//! this crate turns them into a **service**: callers submit instances —
//! `(key, system size, workload, seed)` — and the service multiplexes
//! thousands of them across a fixed pool of shard workers, each instance
//! executing on one of the pluggable [`backend`]s (deterministic simulator,
//! threaded message passing, or the in-process concurrent shared-memory
//! backend, where all instances contend on one namespaced
//! [`fle_runtime::SharedRegisters`] bank).
//!
//! Design:
//!
//! * **Sharding** — `instance key → shard` via a splitmix64 hash; each shard
//!   owns a FIFO of submitted instances and one worker thread, so two
//!   instances on different shards run genuinely in parallel while a shard's
//!   own instances are serialized (per-key FIFO fairness).
//! * **Tickets** — [`ElectionService::submit`] is asynchronous: it enqueues
//!   and returns a [`Ticket`]; [`Ticket::wait`] blocks for that instance's
//!   [`InstanceResult`]. [`ElectionService::submit_wait`] is the synchronous
//!   convenience.
//! * **Epoch-based retirement** — finished instances stay queryable via
//!   [`ElectionService::status`] for a bounded number of *epochs* (an epoch
//!   closes after [`ServiceConfig::epoch_size`] completions on that shard);
//!   once an instance's epoch falls out of the retention window, its record
//!   *and its registers in the concurrent bank* are purged, so a service
//!   that has processed a million instances holds state for only the recent
//!   window. Duplicate submission of a live (un-retired) key is rejected.
//!
//! # Example
//!
//! ```
//! use fle_service::{BackendKind, ElectionService, InstanceSpec, ServiceConfig};
//!
//! let service = ElectionService::new(ServiceConfig::new(2, BackendKind::Concurrent));
//! let tickets: Vec<_> = (0..16)
//!     .map(|key| {
//!         service
//!             .submit(InstanceSpec::election(key, 4))
//!             .expect("fresh keys are accepted")
//!     })
//!     .collect();
//! for ticket in tickets {
//!     let result = ticket.wait().expect("the service completes every instance");
//!     assert!(result.winner().is_some(), "exactly one winner per instance");
//! }
//! let stats = service.shutdown();
//! assert_eq!(stats.completed, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;

pub use backend::{BackendKind, ConcurrentBackend, InstanceBackend, SimBackend, ThreadedBackend};

use crossbeam_channel::{unbounded, Receiver, Sender};
use fle_model::{Outcome, ProcId};
use fle_runtime::SharedRegisters;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of an [`ElectionService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards; each shard runs one worker thread.
    pub shards: usize,
    /// The execution backend instances run on.
    pub backend: BackendKind,
    /// Lock shards of the concurrent backend's register bank.
    pub register_shards: usize,
    /// Completions per shard that close an epoch.
    pub epoch_size: usize,
    /// Closed epochs a finished instance stays queryable before its record
    /// and registers are purged.
    pub retained_epochs: u64,
}

impl ServiceConfig {
    /// A service with `shards` workers on the given backend and default
    /// retirement settings (epochs of 64 completions, 2 epochs retained).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, backend: BackendKind) -> Self {
        assert!(shards > 0, "a service needs at least one shard");
        ServiceConfig {
            shards,
            backend,
            register_shards: (shards * 4).max(16),
            epoch_size: 64,
            retained_epochs: 2,
        }
    }

    /// Set the register-bank lock shard count.
    #[must_use]
    pub fn with_register_shards(mut self, register_shards: usize) -> Self {
        self.register_shards = register_shards.max(1);
        self
    }

    /// Set completions per epoch.
    #[must_use]
    pub fn with_epoch_size(mut self, epoch_size: usize) -> Self {
        self.epoch_size = epoch_size.max(1);
        self
    }

    /// Set how many closed epochs a finished instance stays queryable.
    #[must_use]
    pub fn with_retained_epochs(mut self, retained_epochs: u64) -> Self {
        self.retained_epochs = retained_epochs;
        self
    }
}

/// The protocol family an instance runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// The paper's leader election: exactly one participant wins.
    Election,
    /// The paper's tight renaming: participants end with distinct names in
    /// `1..=participants`.
    Renaming,
}

/// One instance submitted to the service.
#[derive(Debug, Clone, Copy)]
pub struct InstanceSpec {
    /// Caller-chosen identity; also the register namespace on the concurrent
    /// backend and the default seed.
    pub key: u64,
    /// System size (processors / replicas) of the instance.
    pub n: usize,
    /// How many of the `n` processors participate (`1..=n`).
    pub participants: usize,
    /// Seed for the instance's randomness.
    pub seed: u64,
    /// The protocol family to run.
    pub workload: Workload,
}

impl InstanceSpec {
    /// A leader election among all `n` processors, seeded by the key.
    pub fn election(key: u64, n: usize) -> Self {
        InstanceSpec {
            key,
            n,
            participants: n,
            seed: key,
            workload: Workload::Election,
        }
    }

    /// A tight renaming among all `n` processors, seeded by the key.
    pub fn renaming(key: u64, n: usize) -> Self {
        InstanceSpec {
            workload: Workload::Renaming,
            ..InstanceSpec::election(key, n)
        }
    }

    /// Set the seed explicitly (the default is the key).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of participants (`k ≤ n`).
    #[must_use]
    pub fn with_participants(mut self, participants: usize) -> Self {
        self.participants = participants;
        self
    }
}

/// The completed execution of one instance.
#[derive(Debug, Clone)]
pub struct InstanceResult {
    /// The instance's key.
    pub key: u64,
    /// Outcome of every participant.
    pub outcomes: BTreeMap<ProcId, Outcome>,
    /// Submit-to-completion latency (queueing included).
    pub latency: Duration,
}

impl InstanceResult {
    /// The unique winner of an election instance, if exactly one exists.
    pub fn winner(&self) -> Option<ProcId> {
        let mut winners = self
            .outcomes
            .iter()
            .filter(|(_, o)| o.is_win())
            .map(|(p, _)| *p);
        match (winners.next(), winners.next()) {
            (Some(p), None) => Some(p),
            _ => None,
        }
    }

    /// The names assigned by a renaming instance.
    pub fn names(&self) -> BTreeMap<ProcId, usize> {
        self.outcomes
            .iter()
            .filter_map(|(p, o)| match o {
                Outcome::Name(u) => Some((*p, *u)),
                _ => None,
            })
            .collect()
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The key is already queued, running, or finished within the retention
    /// window.
    Duplicate(u64),
    /// The spec is malformed (zero system, participants out of range).
    InvalidSpec(String),
    /// The service has been shut down.
    Stopped,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Duplicate(key) => write!(f, "instance {key} already exists"),
            SubmitError::InvalidSpec(reason) => write!(f, "invalid instance spec: {reason}"),
            SubmitError::Stopped => write!(f, "the service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What the service knows about a key right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Never submitted, or finished and already retired.
    Unknown,
    /// Waiting in its shard's queue.
    Queued,
    /// Currently executing on the shard worker.
    Running,
    /// Finished within the retention window.
    Done {
        /// The unique winner, for election workloads.
        winner: Option<ProcId>,
    },
}

/// A claim on one submitted instance's result.
#[derive(Debug)]
pub struct Ticket {
    /// The instance's key.
    pub key: u64,
    rx: Receiver<InstanceResult>,
}

impl Ticket {
    /// Block until the instance completes.
    ///
    /// # Errors
    /// Returns [`SubmitError::Stopped`] if the service shut down before the
    /// instance ran.
    pub fn wait(self) -> Result<InstanceResult, SubmitError> {
        self.rx.recv().map_err(|_| SubmitError::Stopped)
    }
}

/// Aggregate counters returned by [`ElectionService::shutdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Instances completed across all shards.
    pub completed: u64,
    /// Finished instances whose records and registers were purged.
    pub retired: u64,
    /// Epochs closed across all shards.
    pub epochs_closed: u64,
    /// Namespaces still live in the concurrent register bank (0 unless the
    /// retention window still covers recent instances).
    pub live_register_namespaces: usize,
}

/// The lifecycle phase of a tracked instance.
#[derive(Debug, Clone, Copy)]
enum Phase {
    Queued,
    Running,
    Done { winner: Option<ProcId> },
}

/// Per-shard bookkeeping shared between `submit`, `status` and the worker.
#[derive(Debug, Default)]
struct ShardState {
    phases: HashMap<u64, Phase>,
    /// Finished instances in completion order, tagged with their epoch.
    retire_queue: VecDeque<(u64, u64)>,
    epoch: u64,
    completed_in_epoch: usize,
    completed: u64,
    retired: u64,
}

struct Job {
    spec: InstanceSpec,
    submitted: Instant,
    reply: Sender<InstanceResult>,
}

/// The sharded multi-instance service. See the crate docs for the design.
pub struct ElectionService {
    config: ServiceConfig,
    senders: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    states: Vec<Arc<Mutex<ShardState>>>,
    registers: Arc<SharedRegisters>,
}

impl ElectionService {
    /// Start the service: one worker thread per shard, all sharing one
    /// register bank (used by the concurrent backend).
    pub fn new(config: ServiceConfig) -> Self {
        let registers = Arc::new(SharedRegisters::new(config.register_shards));
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut states = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = unbounded::<Job>();
            let state = Arc::new(Mutex::new(ShardState::default()));
            let worker_state = Arc::clone(&state);
            let worker_registers = Arc::clone(&registers);
            let worker_config = config.clone();
            let handle = std::thread::Builder::new()
                .name(format!("fle-service-shard-{shard}"))
                .spawn(move || {
                    shard_worker(rx, worker_state, worker_registers, worker_config);
                })
                .expect("spawning a shard worker never fails on supported platforms");
            senders.push(tx);
            workers.push(handle);
            states.push(state);
        }
        ElectionService {
            config,
            senders,
            workers,
            states,
            registers,
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared register bank (the concurrent backend's state). Exposed so
    /// tests and benchmarks can assert isolation and retirement.
    pub fn registers(&self) -> &Arc<SharedRegisters> {
        &self.registers
    }

    fn shard_of(&self, key: u64) -> usize {
        (fle_model::splitmix64(key) as usize) % self.senders.len()
    }

    /// Enqueue an instance; returns a [`Ticket`] for its result.
    ///
    /// # Errors
    /// [`SubmitError::InvalidSpec`] for malformed specs,
    /// [`SubmitError::Duplicate`] when the key is live or retained, and
    /// [`SubmitError::Stopped`] when the service is shutting down.
    pub fn submit(&self, spec: InstanceSpec) -> Result<Ticket, SubmitError> {
        if spec.n == 0 {
            return Err(SubmitError::InvalidSpec(
                "an instance needs at least one processor".to_string(),
            ));
        }
        if spec.participants == 0 || spec.participants > spec.n {
            return Err(SubmitError::InvalidSpec(format!(
                "participants must lie in 1..={}, got {}",
                spec.n, spec.participants
            )));
        }
        let shard = self.shard_of(spec.key);
        {
            let mut state = lock(&self.states[shard]);
            if state.phases.contains_key(&spec.key) {
                return Err(SubmitError::Duplicate(spec.key));
            }
            state.phases.insert(spec.key, Phase::Queued);
        }
        let (reply, rx) = unbounded();
        let job = Job {
            spec,
            submitted: Instant::now(),
            reply,
        };
        if self.senders[shard].send(job).is_err() {
            lock(&self.states[shard]).phases.remove(&spec.key);
            return Err(SubmitError::Stopped);
        }
        Ok(Ticket { key: spec.key, rx })
    }

    /// Submit and block for the result.
    ///
    /// # Errors
    /// Propagates the errors of [`ElectionService::submit`] and
    /// [`Ticket::wait`].
    pub fn submit_wait(&self, spec: InstanceSpec) -> Result<InstanceResult, SubmitError> {
        self.submit(spec)?.wait()
    }

    /// What the service currently knows about `key`. Finished instances
    /// answer [`InstanceStatus::Done`] until their epoch is retired, then
    /// [`InstanceStatus::Unknown`].
    pub fn status(&self, key: u64) -> InstanceStatus {
        let state = lock(&self.states[self.shard_of(key)]);
        match state.phases.get(&key) {
            None => InstanceStatus::Unknown,
            Some(Phase::Queued) => InstanceStatus::Queued,
            Some(Phase::Running) => InstanceStatus::Running,
            Some(Phase::Done { winner }) => InstanceStatus::Done { winner: *winner },
        }
    }

    /// Drain the queues, stop every worker and return aggregate counters.
    /// Instances already queued are still executed.
    pub fn shutdown(self) -> ServiceStats {
        drop(self.senders);
        for worker in self.workers {
            worker
                .join()
                .expect("shard workers propagate panics to shutdown");
        }
        let mut stats = ServiceStats {
            live_register_namespaces: self.registers.live_namespaces(),
            ..ServiceStats::default()
        };
        for state in &self.states {
            let state = lock(state);
            stats.completed += state.completed;
            stats.retired += state.retired;
            stats.epochs_closed += state.epoch;
        }
        stats
    }
}

fn lock(state: &Arc<Mutex<ShardState>>) -> std::sync::MutexGuard<'_, ShardState> {
    state
        .lock()
        .expect("shard bookkeeping never panics while locked")
}

/// One shard's worker loop: execute jobs FIFO, record completions, close
/// epochs and purge retired instances (records + registers).
fn shard_worker(
    rx: Receiver<Job>,
    state: Arc<Mutex<ShardState>>,
    registers: Arc<SharedRegisters>,
    config: ServiceConfig,
) {
    let backend = config.backend.build(&registers);
    while let Ok(job) = rx.recv() {
        let key = job.spec.key;
        lock(&state).phases.insert(key, Phase::Running);
        let outcomes = backend.run_instance(&job.spec);
        let result = InstanceResult {
            key,
            outcomes,
            latency: job.submitted.elapsed(),
        };
        let winner = result.winner();
        // Record completion *before* releasing the ticket, so a caller that
        // has seen its result also sees `Done` in `status` (until retired).
        {
            let mut state = lock(&state);
            let epoch = state.epoch;
            state.phases.insert(key, Phase::Done { winner });
            state.retire_queue.push_back((epoch, key));
            state.completed += 1;
            state.completed_in_epoch += 1;
            if state.completed_in_epoch >= config.epoch_size {
                state.epoch += 1;
                state.completed_in_epoch = 0;
                // Everything that finished more than `retained_epochs`
                // closed epochs ago leaves the status table and the
                // register bank.
                while let Some(&(done_epoch, old_key)) = state.retire_queue.front() {
                    if done_epoch + config.retained_epochs > state.epoch {
                        break;
                    }
                    state.retire_queue.pop_front();
                    state.phases.remove(&old_key);
                    registers.retire(old_key);
                    state.retired += 1;
                }
            }
        }
        // The ticket may have been dropped; ignore a dead receiver.
        let _ = job.reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_validates_specs() {
        let service = ElectionService::new(ServiceConfig::new(1, BackendKind::Sim));
        assert!(matches!(
            service.submit(InstanceSpec::election(0, 0)),
            Err(SubmitError::InvalidSpec(_))
        ));
        assert!(matches!(
            service.submit(InstanceSpec::election(0, 4).with_participants(5)),
            Err(SubmitError::InvalidSpec(_))
        ));
        service.shutdown();
    }

    #[test]
    fn duplicate_keys_are_rejected_while_live() {
        let service = ElectionService::new(ServiceConfig::new(1, BackendKind::Sim));
        let ticket = service.submit(InstanceSpec::election(7, 4)).unwrap();
        assert!(matches!(
            service.submit(InstanceSpec::election(7, 4)),
            Err(SubmitError::Duplicate(7))
        ));
        ticket.wait().unwrap();
        // Still within the retention window: a resubmit stays rejected.
        assert!(matches!(
            service.submit(InstanceSpec::election(7, 4)),
            Err(SubmitError::Duplicate(7))
        ));
        service.shutdown();
    }

    #[test]
    fn statuses_progress_to_done_and_then_retire() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent)
            .with_epoch_size(2)
            .with_retained_epochs(1);
        let service = ElectionService::new(config);
        assert_eq!(service.status(0), InstanceStatus::Unknown);

        let first = service.submit_wait(InstanceSpec::election(0, 3)).unwrap();
        assert!(matches!(
            service.status(0),
            InstanceStatus::Done { winner: Some(_) }
        ));
        assert_eq!(
            service.status(0),
            InstanceStatus::Done {
                winner: first.winner()
            }
        );

        // Three more completions close two epochs of size 2; instance 0's
        // epoch falls out of the 1-epoch retention window and is purged —
        // record and registers both.
        for key in 1..=3 {
            service.submit_wait(InstanceSpec::election(key, 3)).unwrap();
        }
        assert_eq!(service.status(0), InstanceStatus::Unknown);
        assert!(
            service
                .registers()
                .snapshot(0, fle_model::InstanceId::Contended)
                .is_empty(),
            "retired namespaces leave no registers behind"
        );
        // A retired key may be reused.
        assert!(service.submit(InstanceSpec::election(0, 3)).is_ok());
        let stats = service.shutdown();
        assert_eq!(stats.completed, 5);
        assert!(stats.retired >= 2);
        assert!(stats.epochs_closed >= 2);
    }

    #[test]
    fn a_storm_of_concurrent_instances_each_elects_one_winner() {
        let service = ElectionService::new(ServiceConfig::new(4, BackendKind::Concurrent));
        let tickets: Vec<Ticket> = (0..200)
            .map(|key| service.submit(InstanceSpec::election(key, 4)).unwrap())
            .collect();
        let mut seen = std::collections::BTreeSet::new();
        for ticket in tickets {
            let result = ticket.wait().unwrap();
            assert!(seen.insert(result.key), "no duplicate results");
            assert_eq!(result.outcomes.len(), 4);
            assert!(result.winner().is_some(), "instance {}", result.key);
        }
        assert_eq!(seen.len(), 200, "no lost results");
        let stats = service.shutdown();
        assert_eq!(stats.completed, 200);
    }

    #[test]
    fn renaming_instances_return_distinct_tight_names() {
        let service = ElectionService::new(ServiceConfig::new(2, BackendKind::Concurrent));
        for key in 0..8 {
            let result = service.submit_wait(InstanceSpec::renaming(key, 4)).unwrap();
            let names: std::collections::BTreeSet<usize> =
                result.names().values().copied().collect();
            assert_eq!(names.len(), 4);
            assert!(names.iter().all(|&u| (1..=4).contains(&u)));
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_instances() {
        let service = ElectionService::new(ServiceConfig::new(2, BackendKind::Sim));
        let tickets: Vec<Ticket> = (0..32)
            .map(|key| service.submit(InstanceSpec::election(key, 4)).unwrap())
            .collect();
        let stats = service.shutdown();
        assert_eq!(stats.completed, 32, "queued work is finished, not dropped");
        for ticket in tickets {
            assert!(
                ticket.wait().is_ok(),
                "results stay claimable after shutdown"
            );
        }
    }
}
