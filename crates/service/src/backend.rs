//! The pluggable execution backends an instance can run on.
//!
//! A backend takes an [`InstanceSpec`] and runs one complete protocol
//! instance — every participant to its outcome — under a cooperative
//! [`CancelToken`] (the service's in-flight deadline enforcement). The four
//! implementations cover the repo's four execution substrates:
//!
//! * [`SimBackend`] — the deterministic discrete-event simulator: each
//!   instance is a fresh [`fle_sim::Simulator`] run under a seeded fair
//!   adversary, reproducible bit-for-bit from `(spec.seed, spec.n)`.
//! * [`ThreadedBackend`] — the message-passing runtime: one OS thread per
//!   processor and quorum `communicate` traffic over channels.
//! * [`ConcurrentBackend`] — the in-process shared-memory backend: every
//!   participant is a thread hammering one namespaced
//!   [`fle_runtime::SharedRegisters`] bank, so thousands of instances share
//!   (and contend on) the same sharded registers. With a
//!   [`FaultPlan`] attached ([`BackendKind::build`]'s `faults` argument) the
//!   bank is wrapped in a [`fle_runtime::FaultyMemory`] per participant:
//!   seeded delays, transient collect failures, and crash injection.
//! * [`AsyncBackend`] — the task-multiplexed cooperative executor: each
//!   participant is a resumable [`fle_model::DriveMachine`] task on a small
//!   process-wide [`fle_runtime::Executor`] worker pool, so thousands of
//!   in-flight instances cost tasks, not OS threads. Register access,
//!   coin seeding, and fault decoration are identical to the concurrent
//!   backend; only the unit of concurrency changes.
//!
//! Fault plans apply **only** to the concurrent and async backends: the
//! sim's memory is the event queue itself (the adversary already plays the
//! faults) and the threaded backend's memory is its node runners, neither
//! of which the decorator can wrap. The other backends silently ignore the
//! plan.
//!
//! Isolation: the sim and threaded backends isolate instances by
//! construction (each run owns its replicas); the concurrent backend
//! namespaces every register access by `spec.key`.

use crate::{InstanceSpec, Workload};
use fle_model::{CancelToken, Outcome, ProcId, Protocol};
use fle_runtime::{
    run_concurrent_cancellable, run_concurrent_faulty, ExecResult, Executor, FaultPlan, FaultStats,
    RuntimeConfig, SharedRegisters, ThreadedRuntime,
};
use fle_sim::{RandomAdversary, SimConfig, Simulator};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Everything one completed run produced: the participants' outcomes plus
/// the fault-injection counters accumulated along the way (zero for
/// backends without fault injection). The service's observability layer
/// merges the fault counters into the owning shard's recorder — before
/// this struct existed, the concurrent backend measured them and threw
/// them away.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutput {
    /// Outcome of every participant.
    pub outcomes: BTreeMap<ProcId, Outcome>,
    /// Faults injected during the run.
    pub faults: FaultStats,
}

impl RunOutput {
    /// A run that saw no fault injection.
    pub fn clean(outcomes: BTreeMap<ProcId, Outcome>) -> Self {
        RunOutput {
            outcomes,
            faults: FaultStats::default(),
        }
    }
}

/// Which execution backend a service runs its instances on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Deterministic discrete-event simulation ([`SimBackend`]).
    Sim,
    /// Real-thread message passing ([`ThreadedBackend`]).
    Threaded,
    /// In-process concurrent shared registers ([`ConcurrentBackend`]).
    Concurrent,
    /// Task-multiplexed cooperative executor ([`AsyncBackend`]).
    Async,
}

impl BackendKind {
    /// A short label for reports and JSON documents.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Threaded => "threaded",
            BackendKind::Concurrent => "concurrent",
            BackendKind::Async => "async",
        }
    }

    /// Build the backend, attaching the service's shared register bank and
    /// optional fault plan (both used only by [`BackendKind::Concurrent`]
    /// and [`BackendKind::Async`]).
    pub fn build(
        self,
        registers: &Arc<SharedRegisters>,
        faults: Option<&FaultPlan>,
    ) -> Box<dyn InstanceBackend> {
        match self {
            BackendKind::Sim => Box::new(SimBackend),
            BackendKind::Threaded => Box::new(ThreadedBackend),
            BackendKind::Concurrent => Box::new(ConcurrentBackend {
                registers: Arc::clone(registers),
                faults: faults.copied(),
            }),
            BackendKind::Async => Box::new(AsyncBackend {
                registers: Arc::clone(registers),
                faults: faults.copied(),
            }),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An execution substrate that can run one protocol instance to completion.
pub trait InstanceBackend: Send + Sync {
    /// A short label for reports.
    fn name(&self) -> &'static str;

    /// Run every participant of `spec` to its outcome, or return `None` when
    /// `cancel` trips first (the instance missed its deadline mid-run; the
    /// service retires its namespace).
    fn run(&self, spec: &InstanceSpec, cancel: &CancelToken) -> Option<RunOutput>;
}

/// The protocol state machines of an instance, one per participant.
pub(crate) fn protocols(spec: &InstanceSpec) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
    match spec.workload {
        Workload::Election => fle_runtime::election_participants(spec.participants),
        Workload::Renaming => {
            fle_runtime::renaming_participants(spec.participants, spec.participants)
        }
    }
}

/// Deterministic simulator backend: fresh [`Simulator`] + seeded fair
/// adversary per instance.
#[derive(Debug, Default)]
pub struct SimBackend;

/// How many simulator events run between cancellation polls.
///
/// The stride contract: the token is polled **before event 0** — a deadline
/// that has already expired at submission time (or a pre-tripped token)
/// cancels the run without executing a single simulator event — and again
/// before every subsequent `SIM_CANCEL_STRIDE`-th event. A deadline that
/// trips mid-run therefore overshoots by at most `SIM_CANCEL_STRIDE - 1`
/// events before the backend notices. Widening the stride cheapens the
/// common (uncancelled) path; the `Instant::now()` behind a deadline poll
/// is the expensive part, and 64 events comfortably amortize it.
pub const SIM_CANCEL_STRIDE: u64 = 64;

impl InstanceBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, spec: &InstanceSpec, cancel: &CancelToken) -> Option<RunOutput> {
        let mut sim = Simulator::new(SimConfig::new(spec.n).with_seed(spec.seed));
        for (proc, protocol) in protocols(spec) {
            sim.add_participant(proc, protocol);
        }
        let mut adversary = RandomAdversary::with_seed(spec.seed.rotate_left(17));
        let poll = cancel.is_cancellable();
        // `events == 0` is a multiple of the stride, so the first poll
        // happens before any event runs — see SIM_CANCEL_STRIDE's contract.
        let mut events = 0u64;
        loop {
            if poll && events.is_multiple_of(SIM_CANCEL_STRIDE) && cancel.is_cancelled() {
                return None;
            }
            let progressed = sim
                .step_once(&mut adversary)
                .expect("a fairly scheduled instance terminates");
            if !progressed {
                return Some(RunOutput::clean(sim.finish().outcomes));
            }
            events += 1;
        }
    }
}

/// Message-passing backend: one [`ThreadedRuntime`] per instance.
#[derive(Debug, Default)]
pub struct ThreadedBackend;

impl InstanceBackend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, spec: &InstanceSpec, cancel: &CancelToken) -> Option<RunOutput> {
        let config = RuntimeConfig::new(spec.n)
            .with_seed(spec.seed)
            .with_cancel(cancel.clone());
        let report = ThreadedRuntime::new(config)
            .run(protocols(spec))
            .expect("a fault-free threaded instance terminates");
        // The coordinator stops waiting when the token trips; whatever
        // outcomes the report holds are then partial — discard them.
        if cancel.is_cancelled() {
            None
        } else {
            Some(RunOutput::clean(report.outcomes))
        }
    }
}

/// In-process concurrent backend: participants are threads over one shared,
/// namespaced register bank, optionally behind a fault-injection decorator.
#[derive(Debug)]
pub struct ConcurrentBackend {
    pub(crate) registers: Arc<SharedRegisters>,
    pub(crate) faults: Option<FaultPlan>,
}

impl InstanceBackend for ConcurrentBackend {
    fn name(&self) -> &'static str {
        "concurrent"
    }

    fn run(&self, spec: &InstanceSpec, cancel: &CancelToken) -> Option<RunOutput> {
        match self.faults {
            Some(plan) if !plan.is_noop() => run_concurrent_faulty(
                &self.registers,
                spec.key,
                spec.seed,
                protocols(spec),
                &plan,
                cancel,
            )
            .map(|(report, faults)| RunOutput {
                outcomes: report.outcomes,
                faults,
            }),
            _ => run_concurrent_cancellable(
                &self.registers,
                spec.key,
                spec.seed,
                protocols(spec),
                cancel,
            )
            .map(|report| RunOutput::clean(report.outcomes)),
        }
    }
}

/// The process-wide task executor behind every [`AsyncBackend`].
///
/// [`BackendKind::build`] runs once per shard worker, but the whole point
/// of the async backend is that instances from every shard multiplex over
/// one small worker pool — so the pool is a lazily-started process global,
/// not a per-shard resource. It is never shut down: workers are few
/// (bounded by [`fle_runtime::ExecutorConfig::default`]), park when idle,
/// and die with the process.
fn shared_executor() -> &'static Executor {
    static EXECUTOR: OnceLock<Executor> = OnceLock::new();
    EXECUTOR.get_or_init(Executor::with_default_config)
}

/// Task-multiplexed backend: participants are cooperative
/// [`fle_model::DriveMachine`] tasks on the process-wide [`Executor`],
/// sharing the same namespaced register bank (and the same coin seeding,
/// so outcomes match the concurrent backend instance-for-instance) while
/// consuming zero dedicated OS threads per instance.
#[derive(Debug)]
pub struct AsyncBackend {
    pub(crate) registers: Arc<SharedRegisters>,
    pub(crate) faults: Option<FaultPlan>,
}

impl InstanceBackend for AsyncBackend {
    fn name(&self) -> &'static str {
        "async"
    }

    fn run(&self, spec: &InstanceSpec, cancel: &CancelToken) -> Option<RunOutput> {
        let plan = self.faults.unwrap_or_default();
        let ticket = shared_executor().submit(
            &self.registers,
            spec.key,
            spec.seed,
            protocols(spec),
            &plan,
            cancel.clone(),
        );
        match ticket.wait() {
            ExecResult::Completed(report) => Some(RunOutput {
                outcomes: report.outcomes,
                faults: report.faults,
            }),
            ExecResult::Cancelled => None,
            // Re-raise on the calling shard worker so the service's panic
            // containment (and its per-shard fail accounting) sees the same
            // unwind a thread-per-participant backend would produce.
            ExecResult::Panicked(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_backend_elects_exactly_one_winner() {
        let registers = Arc::new(SharedRegisters::new(2));
        for (slot, kind) in [
            BackendKind::Sim,
            BackendKind::Threaded,
            BackendKind::Concurrent,
            BackendKind::Async,
        ]
        .into_iter()
        .enumerate()
        {
            // One namespace per backend: the service retires a key's
            // registers after each run, the test bank does not.
            let backend = kind.build(&registers, None);
            let spec = InstanceSpec::election(42 + slot as u64 * 100, 4).with_seed(7);
            let output = backend.run(&spec, &CancelToken::none()).unwrap();
            assert_eq!(output.outcomes.len(), 4, "{kind}");
            let winners = output.outcomes.values().filter(|o| o.is_win()).count();
            assert_eq!(winners, 1, "{kind}");
            assert_eq!(
                output.faults,
                FaultStats::default(),
                "{kind}: no plan, no faults"
            );
        }
    }

    #[test]
    fn every_backend_renames_uniquely() {
        let registers = Arc::new(SharedRegisters::new(2));
        for (slot, kind) in [
            BackendKind::Sim,
            BackendKind::Threaded,
            BackendKind::Concurrent,
            BackendKind::Async,
        ]
        .into_iter()
        .enumerate()
        {
            let backend = kind.build(&registers, None);
            let spec = InstanceSpec::renaming(43 + slot as u64 * 100, 4).with_seed(3);
            let output = backend.run(&spec, &CancelToken::none()).unwrap();
            let names: std::collections::BTreeSet<usize> = output
                .outcomes
                .values()
                .filter_map(|o| match o {
                    Outcome::Name(u) => Some(*u),
                    _ => None,
                })
                .collect();
            assert_eq!(names.len(), 4, "{kind}: names must be distinct");
            assert!(names.iter().all(|&u| (1..=4).contains(&u)), "{kind}");
        }
    }

    #[test]
    fn sim_backend_is_reproducible() {
        let registers = Arc::new(SharedRegisters::new(1));
        let backend = BackendKind::Sim.build(&registers, None);
        let spec = InstanceSpec::election(1, 6).with_seed(99);
        let none = CancelToken::none();
        assert_eq!(backend.run(&spec, &none), backend.run(&spec, &none));
    }

    #[test]
    fn sim_backend_polls_the_token_before_event_zero() {
        // Regression: an already-expired deadline must cancel the run
        // without executing a single simulator event — the stride poll
        // happens at events == 0, not first at events == SIM_CANCEL_STRIDE.
        let registers = Arc::new(SharedRegisters::new(1));
        let backend = BackendKind::Sim.build(&registers, None);
        let expired = CancelToken::new().with_deadline(std::time::Instant::now());
        assert!(
            expired.is_cancelled(),
            "the deadline is already in the past"
        );
        let spec = InstanceSpec::election(46, 64).with_seed(5);
        assert!(
            backend.run(&spec, &expired).is_none(),
            "a pre-expired deadline never runs"
        );
    }

    #[test]
    fn every_backend_honors_a_pre_tripped_cancel_token() {
        let registers = Arc::new(SharedRegisters::new(2));
        let cancel = CancelToken::new();
        cancel.cancel();
        for kind in [
            BackendKind::Sim,
            BackendKind::Threaded,
            BackendKind::Concurrent,
            BackendKind::Async,
        ] {
            let backend = kind.build(&registers, None);
            let spec = InstanceSpec::election(44, 4);
            assert!(
                backend.run(&spec, &cancel).is_none(),
                "{kind}: a cancelled run returns no outcomes"
            );
        }
    }

    #[test]
    fn the_async_backend_matches_the_concurrent_backend_outcome_for_outcome() {
        // Same bank shape, same key, same seed: the executor's tasks use the
        // identical coin-seeding convention as the thread-per-participant
        // runner, so the two backends agree on every participant's outcome.
        for seed in 0..4u64 {
            let concurrent_bank = Arc::new(SharedRegisters::new(2));
            let concurrent = BackendKind::Concurrent.build(&concurrent_bank, None);
            let async_bank = Arc::new(SharedRegisters::new(2));
            let asynchronous = BackendKind::Async.build(&async_bank, None);
            let spec = InstanceSpec::election(7, 4).with_seed(seed);
            let none = CancelToken::none();
            assert_eq!(
                concurrent.run(&spec, &none),
                asynchronous.run(&spec, &none),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn a_faulty_async_backend_still_elects_a_winner() {
        let registers = Arc::new(SharedRegisters::new(2));
        let plan = FaultPlan::new(3)
            .with_delays(200, 50)
            .with_collect_failures(200, 2);
        let backend = BackendKind::Async.build(&registers, Some(&plan));
        let spec = InstanceSpec::election(47, 4);
        let output = backend.run(&spec, &CancelToken::none()).unwrap();
        let winners = output.outcomes.values().filter(|o| o.is_win()).count();
        assert_eq!(winners, 1, "delays and transient failures are masked");
        assert!(
            output.faults.ops > 0,
            "the decorator's counters surface through RunOutput"
        );
    }

    #[test]
    fn a_faulty_concurrent_backend_still_elects_a_winner() {
        let registers = Arc::new(SharedRegisters::new(2));
        let plan = FaultPlan::new(3)
            .with_delays(200, 50)
            .with_collect_failures(200, 2);
        let backend = BackendKind::Concurrent.build(&registers, Some(&plan));
        let spec = InstanceSpec::election(45, 4);
        let output = backend.run(&spec, &CancelToken::none()).unwrap();
        let winners = output.outcomes.values().filter(|o| o.is_win()).count();
        assert_eq!(winners, 1, "delays and transient failures are masked");
        assert!(
            output.faults.ops > 0,
            "the fault decorator's counters surface through RunOutput"
        );
    }
}
