//! Determinism regression tests: a partitioned run is a pure function of
//! `(seed, n, partitions)` — the number of worker threads driving the
//! partitions must never be observable in any report field.

use fle_core::LeaderElection;
use fle_model::{PartitionMap, ProcId};
use fle_sim::{
    partition_adversary_seed, CrashPlan, CrashingAdversary, ParallelSimulator, RandomAdversary,
    RoundCrashPlan, SimConfig,
};

fn run_canonical(
    n: usize,
    seed: u64,
    partitions: usize,
    workers: usize,
) -> fle_sim::ExecutionReport {
    let config = SimConfig::new(n)
        .with_seed(seed)
        .with_partitions(partitions)
        .with_trace();
    let mut sim = ParallelSimulator::new(config).with_workers(workers);
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    let plan = RoundCrashPlan::new(vec![(0, ProcId(2)), (3, ProcId(n - 1))]);
    sim.run_canonical(&plan).expect("canonical run failed")
}

fn run_adversarial(
    n: usize,
    seed: u64,
    partitions: usize,
    workers: usize,
) -> fle_sim::ExecutionReport {
    let config = SimConfig::new(n)
        .with_seed(seed)
        .with_partitions(partitions)
        .with_trace();
    let mut sim = ParallelSimulator::new(config).with_workers(workers);
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    // Each partition's adversary schedules randomly and crashes one of its
    // own processors early (partition adversaries may only crash locally).
    let map = PartitionMap::new(n, partitions);
    sim.run_adversarial(|part, seed| {
        let victim = ProcId(map.range_of(part).start);
        Box::new(CrashingAdversary::new(
            RandomAdversary::with_seed(seed),
            CrashPlan::none().and_then(4, victim),
        ))
    })
    .expect("adversarial run failed")
}

fn assert_byte_identical(a: &fle_sim::ExecutionReport, b: &fle_sim::ExecutionReport, label: &str) {
    assert_eq!(a.outcomes, b.outcomes, "{label}: outcomes");
    assert_eq!(a.intervals, b.intervals, "{label}: intervals");
    assert_eq!(a.crashed, b.crashed, "{label}: crashes");
    assert_eq!(a.events_executed, b.events_executed, "{label}: events");
    assert_eq!(a.trace.digest(), b.trace.digest(), "{label}: trace digest");
    assert_eq!(
        a.metrics.total_messages(),
        b.metrics.total_messages(),
        "{label}: messages"
    );
    assert_eq!(
        a.metrics.max_communicate_calls(),
        b.metrics.max_communicate_calls(),
        "{label}: communicate calls"
    );
}

#[test]
fn canonical_runs_are_worker_count_independent() {
    for (n, partitions) in [(32usize, 4usize), (64, 7)] {
        let reference = run_canonical(n, 11, partitions, 1);
        for workers in [2usize, 3, 5, 16] {
            let candidate = run_canonical(n, 11, partitions, workers);
            assert_byte_identical(
                &reference,
                &candidate,
                &format!("canonical n={n} p={partitions} workers={workers}"),
            );
        }
    }
}

#[test]
fn adversarial_runs_are_worker_count_independent() {
    for (n, partitions) in [(32usize, 4usize), (48, 3)] {
        let reference = run_adversarial(n, 23, partitions, 1);
        assert!(
            !reference.crashed.is_empty(),
            "sanity: the random adversaries should spend some crash budget"
        );
        for workers in [2usize, 4, 16] {
            let candidate = run_adversarial(n, 23, partitions, workers);
            assert_byte_identical(
                &reference,
                &candidate,
                &format!("adversarial n={n} p={partitions} workers={workers}"),
            );
        }
    }
}

#[test]
fn repeated_runs_are_bitwise_reproducible() {
    // Same (seed, n, partitions) twice in the same process — catches any
    // leak of global state (arena pools, statics) into results.
    let a = run_adversarial(32, 5, 4, 2);
    let b = run_adversarial(32, 5, 4, 2);
    assert_byte_identical(&a, &b, "repeat adversarial");
    let c = run_canonical(32, 5, 4, 2);
    let d = run_canonical(32, 5, 4, 2);
    assert_byte_identical(&c, &d, "repeat canonical");
}

#[test]
fn partition_adversary_seeds_are_distinct_per_partition() {
    let mut seeds: Vec<u64> = (0..64).map(|p| partition_adversary_seed(9, p)).collect();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 64, "per-partition seeds must not collide");
    assert_ne!(
        partition_adversary_seed(9, 0),
        partition_adversary_seed(10, 0),
        "seeds must depend on the configuration seed"
    );
}
