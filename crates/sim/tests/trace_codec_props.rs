//! Property tests for the [`DecisionTrace`] compact text codec: the corpus
//! of the coverage-guided explorer persists traces through this codec, so
//! `parse ∘ format = id` must hold for *arbitrary* traces — empty ones,
//! max-index decisions, long mixed schedules — not just the handful of
//! hand-written examples in the unit tests.

use fle_model::ProcId;
use fle_sim::{Decision, DecisionTrace};
use proptest::prelude::*;

/// Derive a pseudo-random decision list from a seed (splitmix64), mixing
/// schedule and crash decisions over a wide index range.
fn decisions_from(seed: u64, len: usize, span: u64) -> Vec<Decision> {
    let mut state = seed;
    let mut step = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..len)
        .map(|_| {
            let value = (step() % span.max(1)) as usize;
            if step() % 4 == 0 {
                Decision::Crash(ProcId(value))
            } else {
                Decision::Schedule(value)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        .. ProptestConfig::default()
    })]

    /// `parse ∘ format = id` for arbitrary traces, including the empty one
    /// (len 0 is a generated case) and indices spanning the full range the
    /// generator covers.
    #[test]
    fn compact_codec_round_trips(
        seed in 0u64..100_000,
        len in 0usize..200,
        span in 1u64..1_000_000,
    ) {
        let trace = DecisionTrace::from_decisions(decisions_from(seed, len, span));
        let text = trace.to_compact_string();
        let reparsed = DecisionTrace::parse(&text)
            .expect("formatted traces always parse");
        prop_assert_eq!(&reparsed, &trace);
        // Formatting is canonical: a second round trip emits identical text.
        prop_assert_eq!(reparsed.to_compact_string(), text);
        // Token count matches decision count (no token is lost or merged).
        prop_assert_eq!(
            text.split_whitespace().count(),
            trace.len(),
            "one token per decision"
        );
    }

    /// Truncation and splicing (the mutation-engine edit hooks) preserve the
    /// codec: any edited trace still round-trips.
    #[test]
    fn edited_traces_still_round_trip(
        seed in 0u64..50_000,
        len in 0usize..80,
        cut in 0usize..100,
    ) {
        let a = DecisionTrace::from_decisions(decisions_from(seed, len, 64));
        let b = DecisionTrace::from_decisions(decisions_from(seed ^ 0xabcd, len, 64));
        for edited in [a.truncated(cut), a.spliced(cut, &b, cut / 2)] {
            let text = edited.to_compact_string();
            prop_assert_eq!(DecisionTrace::parse(&text).unwrap(), edited);
        }
    }
}

/// Max-index decisions survive the codec: `usize::MAX` formats and reparses
/// exactly (the property generator cannot reach it, so pin it explicitly).
#[test]
fn max_index_decisions_round_trip() {
    let trace = DecisionTrace::from_decisions(vec![
        Decision::Schedule(usize::MAX),
        Decision::Crash(ProcId(usize::MAX)),
        Decision::Schedule(0),
    ]);
    let text = trace.to_compact_string();
    assert_eq!(text, format!("s{} c{} s0", usize::MAX, usize::MAX));
    assert_eq!(DecisionTrace::parse(&text).unwrap(), trace);
}
