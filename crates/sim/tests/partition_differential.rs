//! Differential tests: the partitioned [`ParallelSimulator`] must reproduce
//! the sequential [`Simulator`] *exactly* when the latter is driven by the
//! [`SuperRoundAdversary`] — same outcomes, same intervals, same metrics,
//! same crash list, same event count, same trace digest — for every
//! partition count.

use fle_core::LeaderElection;
use fle_model::ProcId;
use fle_sim::{
    ParallelSimulator, RoundCrashPlan, SimConfig, Simulator, SuperRoundAdversary, TraceEvent,
};

fn config(n: usize, seed: u64) -> SimConfig {
    // partitions >= 1 also switches the sequential engine to the shared
    // per-processor coin streams; the value itself is irrelevant to it.
    SimConfig::new(n)
        .with_seed(seed)
        .with_partitions(1)
        .with_trace()
}

/// Run the sequential reference under the super-round schedule.
fn sequential_reference(
    n: usize,
    seed: u64,
    contenders: usize,
    plan: &RoundCrashPlan,
) -> fle_sim::ExecutionReport {
    let mut sim = Simulator::new(config(n, seed));
    for i in 0..contenders {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    sim.run(&mut SuperRoundAdversary::new(plan))
        .expect("sequential reference run failed")
}

/// Run the partitioned engine in canonical mode.
fn partitioned(
    n: usize,
    seed: u64,
    contenders: usize,
    partitions: usize,
    plan: &RoundCrashPlan,
) -> fle_sim::ExecutionReport {
    let mut sim = ParallelSimulator::new(config(n, seed).with_partitions(partitions));
    for i in 0..contenders {
        sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
    }
    sim.run_canonical(plan).expect("partitioned run failed")
}

fn assert_reports_identical(
    n: usize,
    reference: &fle_sim::ExecutionReport,
    candidate: &fle_sim::ExecutionReport,
    label: &str,
) {
    assert_eq!(reference.outcomes, candidate.outcomes, "{label}: outcomes");
    assert_eq!(
        reference.intervals, candidate.intervals,
        "{label}: intervals"
    );
    assert_eq!(reference.crashed, candidate.crashed, "{label}: crash list");
    assert_eq!(
        reference.events_executed, candidate.events_executed,
        "{label}: event count"
    );
    assert_eq!(
        reference.trace.digest(),
        candidate.trace.digest(),
        "{label}: trace digest\nreference: {:?}\ncandidate: {:?}",
        reference.trace.events().iter().take(40).collect::<Vec<_>>(),
        candidate.trace.events().iter().take(40).collect::<Vec<_>>(),
    );
    // Per-processor metrics, not just the totals.
    for i in 0..n {
        assert_eq!(
            reference
                .metrics
                .proc(ProcId(i))
                .copied()
                .unwrap_or_default(),
            candidate
                .metrics
                .proc(ProcId(i))
                .copied()
                .unwrap_or_default(),
            "{label}: metrics of p{i}"
        );
    }
}

fn partition_counts(n: usize) -> Vec<usize> {
    let cpus = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);
    let mut counts = vec![2, 3, cpus.clamp(1, n)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

#[test]
fn crash_free_elections_match_the_sequential_reference() {
    // n = 256 runs one seed only: a full-participation n = 256 election is
    // the slow case in debug builds and one seed already exercises every
    // partition boundary.
    for (n, seeds) in [
        (16usize, &[1u64, 42, 0xFEED][..]),
        (64, &[1, 42, 0xFEED][..]),
        (256, &[42][..]),
    ] {
        for &seed in seeds {
            let plan = RoundCrashPlan::none();
            let reference = sequential_reference(n, seed, n, &plan);
            assert_eq!(
                reference.winners().len(),
                1,
                "sanity: the election elects exactly one leader"
            );
            for p in partition_counts(n) {
                let candidate = partitioned(n, seed, n, p, &plan);
                assert_reports_identical(
                    n,
                    &reference,
                    &candidate,
                    &format!("n={n} seed={seed} partitions={p}"),
                );
            }
        }
    }
}

#[test]
fn crash_heavy_elections_match_the_sequential_reference() {
    for n in [16usize, 64] {
        for seed in [7u64, 1234] {
            // Crash nearly the full budget, spread over the early rounds and
            // across the whole processor range (so every partition loses
            // someone).
            let budget = n.div_ceil(2) - 1;
            let victims = budget - 1;
            let entries: Vec<(u64, ProcId)> = (0..victims)
                .map(|k| {
                    let round = (k % 5) as u64;
                    // Stride through the id space; victims stay distinct
                    // because victims < n/2 and the stride is 2.
                    let victim = ProcId((k * 2 + 1) % n);
                    (round, victim)
                })
                .collect();
            let plan = RoundCrashPlan::new(entries);
            let reference = sequential_reference(n, seed, n, &plan);
            assert!(reference.winners().len() <= 1, "sanity: at most one winner");
            assert_eq!(
                reference.crashed.len(),
                victims,
                "sanity: all crashes applied"
            );
            for p in partition_counts(n) {
                let candidate = partitioned(n, seed, n, p, &plan);
                assert_reports_identical(
                    n,
                    &reference,
                    &candidate,
                    &format!("crash-heavy n={n} seed={seed} partitions={p}"),
                );
            }
        }
    }
}

#[test]
fn partial_participation_matches_the_sequential_reference() {
    // k-of-n contention — the shape the parallel benchmarks use.
    let (n, k) = (256usize, 24usize);
    for seed in [3u64, 99] {
        let plan = RoundCrashPlan::new(vec![(0, ProcId(1)), (2, ProcId(7))]);
        let reference = sequential_reference(n, seed, k, &plan);
        for p in partition_counts(n) {
            let candidate = partitioned(n, seed, k, p, &plan);
            assert_reports_identical(
                n,
                &reference,
                &candidate,
                &format!("k-of-n n={n} k={k} seed={seed} partitions={p}"),
            );
        }
    }
}

#[test]
fn partitioned_reports_are_partition_count_invariant() {
    // Directly compare partition counts against each other on a size where
    // every count from 1 to 8 divides the work differently.
    let (n, seed) = (64usize, 0xC0FFEE_u64);
    let plan = RoundCrashPlan::new(vec![(1, ProcId(5)), (1, ProcId(40))]);
    let reference = partitioned(n, seed, n, 1, &plan);
    for p in [2usize, 3, 5, 8, 64] {
        let candidate = partitioned(n, seed, n, p, &plan);
        assert_reports_identical(n, &reference, &candidate, &format!("p={p} vs p=1"));
    }
}

#[test]
fn super_round_adversary_decides_deliveries_before_new_sends() {
    // Spot-check the canonical schedule shape on a tiny system: the trace
    // must consist of alternating blocks — deliveries in ascending id order,
    // then steps in ascending processor order — with crashes only at round
    // boundaries.
    let plan = RoundCrashPlan::none();
    let report = sequential_reference(8, 5, 8, &plan);
    let events = report.trace.events();
    assert!(!events.is_empty());
    let mut last_delivery_id: Option<u64> = None;
    for window in events.windows(2) {
        if let [TraceEvent::Deliver { id: a, .. }, TraceEvent::Deliver { id: b, .. }] = window {
            // Within one round's delivery block ids ascend; a new round may
            // restart lower only after a step block in between.
            if a.0 > b.0 {
                panic!("delivery ids regressed within a block: {a:?} then {b:?}");
            }
        }
        last_delivery_id = match window[1] {
            TraceEvent::Deliver { id, .. } => Some(id.0),
            _ => None,
        };
    }
    let _ = last_delivery_id;
    assert_eq!(report.winners().len(), 1);
}
