//! Execution traces, used for determinism tests and debugging, and
//! adversary *decision* traces, used by the schedule-exploration subsystem
//! (`fle_explore`) to replay, serialize and minimize counterexamples.
//!
//! # Seed derivation
//!
//! Everything random in a simulation descends from the single configuration
//! seed `s` = [`crate::SimConfig::seed`] by pure functions, so a trace (and
//! every report field) is reproducible from `(s, n, partitions, schedule)`
//! alone:
//!
//! * **Legacy global stream** (`config.partitions == 0`): the sequential
//!   [`crate::Simulator`] draws every coin from one `ChaCha8` stream seeded
//!   with `s`, in execution order. Byte-compatible with all pre-partitioning
//!   baselines, but inherently schedule- and engine-dependent.
//! * **Per-processor streams** (`config.partitions >= 1`, and always in the
//!   partitioned [`crate::ParallelSimulator`]): processor `p`'s `k`-th coin
//!   word is [`crate::coin_word`]`(s, p, k)` =
//!   `splitmix64(splitmix64(s ^ splitmix64(p + 1)) ^ k)`. The stream depends
//!   only on `(s, p)` — not on the partition count, the worker-thread count,
//!   or any other processor's activity — so the sequential and partitioned
//!   engines flip identical coins for identical protocols, which is what
//!   makes the differential tests possible. Booleans come from
//!   [`crate::coin_bool`] (top 53 bits as a uniform float, compared against
//!   the bias); `Choose` picks `word % len`.
//! * **Partition adversaries** (adversarial mode): partition `i`'s adversary
//!   is seeded with [`crate::partition_adversary_seed`]`(s, i)` =
//!   `splitmix64(s ^ splitmix64(0xAD5E_0000_0000_0000 | i))`. Fixed
//!   `(s, n, partitions)` therefore fixes the whole adversarial execution;
//!   different partition counts are simply different (but still
//!   deterministic) adversaries.

use crate::message::MessageId;
use crate::observation::Decision;
use fle_model::{Outcome, ProcId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One executed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A computation step of `proc` was executed.
    Step {
        /// The stepping processor.
        proc: ProcId,
    },
    /// Message `id` from `from` was delivered to `to`.
    Deliver {
        /// Delivered message.
        id: MessageId,
        /// Sender.
        from: ProcId,
        /// Recipient.
        to: ProcId,
    },
    /// The adversary crashed `proc`.
    Crash {
        /// The crashed processor.
        proc: ProcId,
    },
    /// `proc` returned from its protocol.
    Return {
        /// The returning processor.
        proc: ProcId,
        /// Its outcome.
        outcome: Outcome,
    },
    /// `proc` flipped a coin with the given outcome.
    Coin {
        /// The flipping processor.
        proc: ProcId,
        /// The flip outcome.
        value: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Step { proc } => write!(f, "step {proc}"),
            TraceEvent::Deliver { id, from, to } => write!(f, "deliver {id} {from}→{to}"),
            TraceEvent::Crash { proc } => write!(f, "crash {proc}"),
            TraceEvent::Return { proc, outcome } => write!(f, "return {proc} {outcome}"),
            TraceEvent::Coin { proc, value } => write!(f, "coin {proc} {}", u8::from(*value)),
        }
    }
}

/// An ordered record of executed events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    recording: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn recording() -> Self {
        Trace {
            events: Vec::new(),
            recording: true,
        }
    }

    /// A trace that discards events (but still maintains the digest).
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            recording: false,
        }
    }

    /// Record an event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.recording {
            self.events.push(event);
        }
    }

    /// The recorded events (empty if recording is disabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A stable digest of the recorded events (FNV-1a over the display
    /// forms). Two executions with the same digest and lengths are, for all
    /// practical purposes, identical.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &self.events {
            for byte in event.to_string().bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// An ordered record of adversary decisions — the *input* side of an
/// execution, where [`Trace`] records the *output* side.
///
/// Because the simulator is deterministic given its seed, a decision trace
/// fully determines an execution: replaying the same decisions (via
/// [`crate::ReplayAdversary`]) against a simulator built with the same
/// [`crate::SimConfig`] reproduces the run event for event. The explorer
/// records one of these for every violating schedule it finds and
/// delta-debugs it down to a minimal counterexample.
///
/// The trace serializes to a compact human-readable form (`s<index>` for
/// `Schedule(index)`, `c<proc>` for `Crash(proc)`, space-separated) so a
/// counterexample can travel through CI logs and bug reports and be replayed
/// from the text alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionTrace {
    decisions: Vec<Decision>,
}

impl DecisionTrace {
    /// An empty decision trace.
    pub fn new() -> Self {
        DecisionTrace::default()
    }

    /// Wrap an explicit decision sequence.
    pub fn from_decisions(decisions: Vec<Decision>) -> Self {
        DecisionTrace { decisions }
    }

    /// Record one decision.
    pub fn push(&mut self, decision: Decision) {
        self.decisions.push(decision);
    }

    /// The recorded decisions, in the order they were made.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Number of recorded decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether no decisions were recorded.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The prefix of the first `len` decisions (the whole trace when `len`
    /// is not smaller). This is the *truncate-to-consumed* edit: replaying a
    /// trace longer than the run consumes executes exactly the consumed
    /// prefix, so `trace.truncated(consumed)` is behaviourally identical to
    /// `trace` against the same scenario and seed — the shrinker and the
    /// corpus both store the truncation instead of the dead tail.
    #[must_use]
    pub fn truncated(&self, len: usize) -> Self {
        DecisionTrace {
            decisions: self.decisions[..len.min(self.decisions.len())].to_vec(),
        }
    }

    /// Splice: the first `prefix` decisions of `self` followed by the
    /// decisions of `tail` starting at `tail_from` (both clamped to the
    /// respective lengths). The mutation engine of the coverage-guided
    /// explorer builds crossover schedules this way; the result is always a
    /// *valid* schedule because [`crate::ReplayAdversary`] clamps edited
    /// indices and completes deterministically once a trace is exhausted.
    #[must_use]
    pub fn spliced(&self, prefix: usize, tail: &DecisionTrace, tail_from: usize) -> Self {
        let prefix = prefix.min(self.decisions.len());
        let tail_from = tail_from.min(tail.decisions.len());
        let mut decisions = Vec::with_capacity(prefix + tail.decisions.len() - tail_from);
        decisions.extend_from_slice(&self.decisions[..prefix]);
        decisions.extend_from_slice(&tail.decisions[tail_from..]);
        DecisionTrace { decisions }
    }

    /// The compact text form: `s<index>` / `c<proc>` tokens separated by
    /// single spaces (empty string for an empty trace). Inverse of
    /// [`DecisionTrace::parse`].
    pub fn to_compact_string(&self) -> String {
        let mut out = String::with_capacity(self.decisions.len() * 4);
        for (i, decision) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match decision {
                Decision::Schedule(index) => {
                    out.push('s');
                    out.push_str(&index.to_string());
                }
                Decision::Crash(proc) => {
                    out.push('c');
                    out.push_str(&proc.index().to_string());
                }
            }
        }
        out
    }

    /// Parse the compact text form produced by
    /// [`DecisionTrace::to_compact_string`].
    ///
    /// # Errors
    /// Returns a description of the first malformed token.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut decisions = Vec::new();
        for token in text.split_whitespace() {
            let mut chars = token.chars();
            let kind = chars
                .next()
                .expect("split_whitespace yields non-empty tokens");
            let value: usize = chars
                .as_str()
                .parse()
                .map_err(|_| format!("malformed decision token {token:?}"))?;
            match kind {
                's' => decisions.push(Decision::Schedule(value)),
                'c' => decisions.push(Decision::Crash(ProcId(value))),
                _ => return Err(format!("unknown decision kind in token {token:?}")),
            }
        }
        Ok(DecisionTrace { decisions })
    }
}

impl fmt::Display for DecisionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_compact_string())
    }
}

impl FromIterator<Decision> for DecisionTrace {
    fn from_iter<T: IntoIterator<Item = Decision>>(iter: T) -> Self {
        DecisionTrace {
            decisions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceEvent::Step { proc: ProcId(0) });
        assert!(t.is_empty());
    }

    #[test]
    fn digest_distinguishes_traces() {
        let mut a = Trace::recording();
        a.push(TraceEvent::Step { proc: ProcId(0) });
        a.push(TraceEvent::Coin {
            proc: ProcId(0),
            value: true,
        });

        let mut b = Trace::recording();
        b.push(TraceEvent::Step { proc: ProcId(0) });
        b.push(TraceEvent::Coin {
            proc: ProcId(0),
            value: false,
        });

        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn identical_traces_share_digests() {
        let build = || {
            let mut t = Trace::recording();
            t.push(TraceEvent::Deliver {
                id: MessageId(3),
                from: ProcId(1),
                to: ProcId(2),
            });
            t.push(TraceEvent::Return {
                proc: ProcId(1),
                outcome: Outcome::Win,
            });
            t
        };
        assert_eq!(build().digest(), build().digest());
    }

    #[test]
    fn decision_trace_round_trips_through_compact_text() {
        let trace: DecisionTrace = [
            Decision::Schedule(0),
            Decision::Crash(ProcId(7)),
            Decision::Schedule(41),
            Decision::Schedule(3),
        ]
        .into_iter()
        .collect();
        let text = trace.to_compact_string();
        assert_eq!(text, "s0 c7 s41 s3");
        assert_eq!(DecisionTrace::parse(&text).unwrap(), trace);
        assert_eq!(trace.len(), 4);
        assert_eq!(trace.to_string(), text);
    }

    #[test]
    fn empty_decision_trace_round_trips() {
        let empty = DecisionTrace::new();
        assert!(empty.is_empty());
        assert_eq!(empty.to_compact_string(), "");
        assert_eq!(DecisionTrace::parse("").unwrap(), empty);
        assert_eq!(DecisionTrace::parse("  \n ").unwrap(), empty);
    }

    #[test]
    fn malformed_decision_tokens_are_rejected() {
        assert!(DecisionTrace::parse("s1 x2").is_err());
        assert!(DecisionTrace::parse("s").is_err());
        assert!(DecisionTrace::parse("cabc").is_err());
    }

    #[test]
    fn truncated_clamps_and_copies() {
        let trace: DecisionTrace = [
            Decision::Schedule(1),
            Decision::Crash(ProcId(0)),
            Decision::Schedule(2),
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.truncated(2).decisions(), &trace.decisions()[..2]);
        assert_eq!(trace.truncated(99), trace, "over-long truncation is id");
        assert!(trace.truncated(0).is_empty());
    }

    #[test]
    fn spliced_concatenates_with_clamped_cut_points() {
        let a: DecisionTrace = [Decision::Schedule(0), Decision::Schedule(1)]
            .into_iter()
            .collect();
        let b: DecisionTrace = [Decision::Crash(ProcId(2)), Decision::Schedule(3)]
            .into_iter()
            .collect();
        let spliced = a.spliced(1, &b, 1);
        assert_eq!(
            spliced.decisions(),
            &[Decision::Schedule(0), Decision::Schedule(3)]
        );
        // Out-of-range cut points clamp instead of panicking.
        assert_eq!(a.spliced(99, &b, 99), a);
        assert_eq!(a.spliced(0, &b, 0), b);
    }
}
