//! Execution traces, used for determinism tests and debugging.

use crate::message::MessageId;
use fle_model::{Outcome, ProcId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One executed event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A computation step of `proc` was executed.
    Step {
        /// The stepping processor.
        proc: ProcId,
    },
    /// Message `id` from `from` was delivered to `to`.
    Deliver {
        /// Delivered message.
        id: MessageId,
        /// Sender.
        from: ProcId,
        /// Recipient.
        to: ProcId,
    },
    /// The adversary crashed `proc`.
    Crash {
        /// The crashed processor.
        proc: ProcId,
    },
    /// `proc` returned from its protocol.
    Return {
        /// The returning processor.
        proc: ProcId,
        /// Its outcome.
        outcome: Outcome,
    },
    /// `proc` flipped a coin with the given outcome.
    Coin {
        /// The flipping processor.
        proc: ProcId,
        /// The flip outcome.
        value: bool,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Step { proc } => write!(f, "step {proc}"),
            TraceEvent::Deliver { id, from, to } => write!(f, "deliver {id} {from}→{to}"),
            TraceEvent::Crash { proc } => write!(f, "crash {proc}"),
            TraceEvent::Return { proc, outcome } => write!(f, "return {proc} {outcome}"),
            TraceEvent::Coin { proc, value } => write!(f, "coin {proc} {}", u8::from(*value)),
        }
    }
}

/// An ordered record of executed events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    recording: bool,
}

impl Trace {
    /// A trace that records events.
    pub fn recording() -> Self {
        Trace {
            events: Vec::new(),
            recording: true,
        }
    }

    /// A trace that discards events (but still maintains the digest).
    pub fn disabled() -> Self {
        Trace {
            events: Vec::new(),
            recording: false,
        }
    }

    /// Record an event.
    pub fn push(&mut self, event: TraceEvent) {
        if self.recording {
            self.events.push(event);
        }
    }

    /// The recorded events (empty if recording is disabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A stable digest of the recorded events (FNV-1a over the display
    /// forms). Two executions with the same digest and lengths are, for all
    /// practical purposes, identical.
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for event in &self.events {
            for byte in event.to_string().bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0xff;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.push(TraceEvent::Step { proc: ProcId(0) });
        assert!(t.is_empty());
    }

    #[test]
    fn digest_distinguishes_traces() {
        let mut a = Trace::recording();
        a.push(TraceEvent::Step { proc: ProcId(0) });
        a.push(TraceEvent::Coin {
            proc: ProcId(0),
            value: true,
        });

        let mut b = Trace::recording();
        b.push(TraceEvent::Step { proc: ProcId(0) });
        b.push(TraceEvent::Coin {
            proc: ProcId(0),
            value: false,
        });

        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn identical_traces_share_digests() {
        let build = || {
            let mut t = Trace::recording();
            t.push(TraceEvent::Deliver {
                id: MessageId(3),
                from: ProcId(1),
                to: ProcId(2),
            });
            t.push(TraceEvent::Return {
                proc: ProcId(1),
                outcome: Outcome::Win,
            });
            t
        };
        assert_eq!(build().digest(), build().digest());
    }
}
