//! The result of one simulated execution.

use crate::trace::Trace;
use fle_model::{ExecutionMetrics, Outcome, ProcId};
use std::collections::BTreeMap;

/// Everything the simulator reports about one execution.
#[derive(Debug, Clone, Default)]
pub struct ExecutionReport {
    /// Outcome of every participant that returned.
    pub outcomes: BTreeMap<ProcId, Outcome>,
    /// Invocation/return intervals (in event counts) per participant, used by
    /// the linearizability checkers.
    pub intervals: BTreeMap<ProcId, (u64, Option<u64>)>,
    /// Complexity counters.
    pub metrics: ExecutionMetrics,
    /// Processors crashed by the adversary.
    pub crashed: Vec<ProcId>,
    /// Total number of events executed.
    pub events_executed: u64,
    /// The execution trace (empty unless recording was enabled).
    pub trace: Trace,
}

impl ExecutionReport {
    /// Outcome of processor `p`, if it returned.
    pub fn outcome(&self, p: ProcId) -> Option<Outcome> {
        self.outcomes.get(&p).copied()
    }

    /// Participants that returned the given outcome.
    pub fn with_outcome(&self, outcome: Outcome) -> Vec<ProcId> {
        self.outcomes
            .iter()
            .filter(|(_, o)| **o == outcome)
            .map(|(p, _)| *p)
            .collect()
    }

    /// The winners of a leader election (should be at most one).
    pub fn winners(&self) -> Vec<ProcId> {
        self.with_outcome(Outcome::Win)
    }

    /// The survivors of a sifting phase.
    pub fn survivors(&self) -> Vec<ProcId> {
        self.with_outcome(Outcome::Survive)
    }

    /// The names returned by a renaming execution, keyed by processor.
    pub fn names(&self) -> BTreeMap<ProcId, usize> {
        self.outcomes
            .iter()
            .filter_map(|(p, o)| match o {
                Outcome::Name(u) => Some((*p, *u)),
                _ => None,
            })
            .collect()
    }

    /// Total messages sent (the paper's message complexity).
    pub fn total_messages(&self) -> u64 {
        self.metrics.total_messages()
    }

    /// Maximum communicate calls by a single processor (the paper's time
    /// complexity, Claim 2.1).
    pub fn max_communicate_calls(&self) -> u64 {
        self.metrics.max_communicate_calls()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let mut report = ExecutionReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Win);
        report.outcomes.insert(ProcId(1), Outcome::Lose);
        report.outcomes.insert(ProcId(2), Outcome::Name(3));

        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
        assert_eq!(report.outcome(ProcId(9)), None);
        assert_eq!(report.winners(), vec![ProcId(0)]);
        assert_eq!(report.with_outcome(Outcome::Lose), vec![ProcId(1)]);
        assert_eq!(report.names().get(&ProcId(2)), Some(&3));
        assert!(report.survivors().is_empty());
    }
}
