//! Deterministic discrete-event simulator of the asynchronous message-passing
//! model used by the paper.
//!
//! The simulator reproduces the system model of Section 2 of
//! *How to Elect a Leader Faster than a Tournament* (Alistarh, Gelashvili,
//! Vladu; PODC 2015):
//!
//! * `n` processors connected by independent point-to-point channels with
//!   arbitrary (adversary-controlled) delays,
//! * the `communicate(propagate / collect)` quorum primitive of ABND95 —
//!   every processor acts as a replica and answers requests even when it does
//!   not participate in the algorithm or has already returned,
//! * a **strong adaptive adversary** that observes local state (including
//!   coin flips), schedules every computation step and message delivery, and
//!   may crash up to `t ≤ ⌈n/2⌉ − 1` processors,
//! * complexity accounting: total messages sent (message complexity) and the
//!   maximum number of `communicate` calls by any processor (time complexity,
//!   Claim 2.1 of the paper).
//!
//! Algorithms are supplied as [`fle_model::Protocol`] state machines; the
//! simulator is completely deterministic given a seed and a deterministic
//! [`Adversary`], which the test-suite relies on.
//!
//! # Example
//!
//! ```
//! use fle_model::{Action, LocalStateView, Outcome, Protocol, Response};
//! use fle_sim::{RandomAdversary, SimConfig, Simulator};
//!
//! /// A protocol that immediately returns WIN.
//! struct TrivialWinner;
//!
//! impl Protocol for TrivialWinner {
//!     fn step(&mut self, _response: Response) -> Action {
//!         Action::Return(Outcome::Win)
//!     }
//!     fn adversary_view(&self) -> LocalStateView {
//!         LocalStateView::new("trivial", "running")
//!     }
//! }
//!
//! # fn main() -> Result<(), fle_sim::SimError> {
//! let config = SimConfig::new(4);
//! let mut sim = Simulator::new(config);
//! sim.add_participant(fle_model::ProcId(0), Box::new(TrivialWinner));
//! let report = sim.run(&mut RandomAdversary::with_seed(7))?;
//! assert_eq!(report.outcome(fle_model::ProcId(0)), Some(Outcome::Win));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod arena;
pub mod engine;
pub mod error;
pub mod event_set;
pub mod memory;
pub mod message;
pub mod observation;
pub mod partition;
pub mod process;
pub mod replica;
pub mod report;
pub mod trace;

pub use adversary::{
    Adversary, CoinAwareAdversary, CrashPlan, CrashingAdversary, ObliviousAdversary,
    RandomAdversary, RecordingAdversary, ReplayAdversary, SequentialAdversary,
};
pub use arena::{pool_stats, ArenaPoolStats, SimArena};
pub use engine::{SimConfig, Simulator};
pub use error::SimError;
pub use event_set::{IndexedBitSet, OrderedMsgSet};
pub use memory::{SimMemory, SimMemoryHandle};
pub use message::{InFlightMessage, MessageId, MessageSlab};
pub use observation::{
    Decision, EnabledEvent, EnabledEvents, ProcessObservation, ProcessPhase, SystemObservation,
};
pub use partition::{
    coin_bool, coin_word, partition_adversary_seed, ParallelSimulator, RoundCrashPlan,
    SuperRoundAdversary,
};
pub use report::ExecutionReport;
pub use trace::{DecisionTrace, Trace, TraceEvent};
