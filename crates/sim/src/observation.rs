//! What adversaries see and what they may decide.

use crate::event_set::{IndexedBitSet, OrderedMsgSet};
use crate::message::{MessageId, MessageSlab};
use fle_model::{LocalStateView, ProcId};

/// The lifecycle phase of a processor as visible to the adversary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessPhase {
    /// The node does not run a protocol (pure replica).
    Idle,
    /// Participant that has not yet been scheduled for its first step.
    NotStarted,
    /// Participant waiting for the adversary to schedule a computation step.
    StepReady,
    /// Participant waiting for quorum replies to an outstanding communicate
    /// call.
    AwaitingQuorum,
    /// Participant that has returned.
    Finished,
    /// Crashed by the adversary.
    Crashed,
}

/// The adversary's per-processor observation: lifecycle phase plus the local
/// state the strong adversary is allowed to inspect (coin flips, round, ...).
#[derive(Debug, Clone)]
pub struct ProcessObservation {
    /// The processor this observation describes.
    pub proc: ProcId,
    /// Lifecycle phase.
    pub phase: ProcessPhase,
    /// Inspectable protocol state; `None` for idle replicas.
    pub local_state: Option<LocalStateView>,
}

/// A schedulable event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnabledEvent {
    /// Schedule a computation step of the given processor.
    Step(ProcId),
    /// Deliver the given in-flight message.
    Deliver {
        /// The message to deliver.
        id: MessageId,
        /// Its sender.
        from: ProcId,
        /// Its recipient.
        to: ProcId,
        /// Whether the message is a request (`propagate`/`collect`) as
        /// opposed to a reply.
        is_request: bool,
    },
}

impl EnabledEvent {
    /// The processor whose progress this event primarily advances: the
    /// stepping processor for a step, the *recipient* for a reply delivery
    /// (the caller waiting for the quorum) and the *sender* for a request
    /// delivery (the caller whose broadcast is being serviced).
    pub fn advances(&self) -> ProcId {
        match self {
            EnabledEvent::Step(p) => *p,
            EnabledEvent::Deliver {
                from,
                to,
                is_request,
                ..
            } => {
                if *is_request {
                    *from
                } else {
                    *to
                }
            }
        }
    }
}

/// The enabled events offered to the adversary, in the stable order
/// *steps by ascending processor id, then deliveries by ascending message
/// id*.
///
/// This is an indexed **view** over the engine's incrementally maintained
/// event indexes rather than a freshly allocated `Vec`: [`EnabledEvents::len`]
/// and [`EnabledEvents::get`] are O(1)/O(log) regardless of system size, so
/// an adversary that picks by index (like [`crate::RandomAdversary`]) costs
/// the engine no per-event scan at all. Adversaries that want to inspect
/// every option iterate with [`EnabledEvents::iter`], which is linear in the
/// number of *enabled* events only.
#[derive(Debug)]
pub struct EnabledEvents<'a> {
    inner: EnabledInner<'a>,
}

#[derive(Debug)]
enum EnabledInner<'a> {
    /// A plain slice: used by unit tests and by the engine's naive
    /// (rebuild-per-event) reference mode.
    Slice(&'a [EnabledEvent]),
    /// Zero-copy view over the engine's live indexes.
    Live {
        steps: &'a IndexedBitSet,
        messages: &'a OrderedMsgSet,
        slab: &'a MessageSlab,
    },
}

impl<'a> EnabledEvents<'a> {
    /// Wrap an explicit event list (tests, reference mode).
    pub fn from_slice(events: &'a [EnabledEvent]) -> Self {
        EnabledEvents {
            inner: EnabledInner::Slice(events),
        }
    }

    /// Wrap the engine's live indexes.
    pub(crate) fn live(
        steps: &'a IndexedBitSet,
        messages: &'a OrderedMsgSet,
        slab: &'a MessageSlab,
    ) -> Self {
        EnabledEvents {
            inner: EnabledInner::Live {
                steps,
                messages,
                slab,
            },
        }
    }

    /// Number of enabled events.
    pub fn len(&self) -> usize {
        match &self.inner {
            EnabledInner::Slice(events) => events.len(),
            EnabledInner::Live {
                steps, messages, ..
            } => steps.len() + messages.len(),
        }
    }

    /// Whether no event is enabled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The event at `index` in the stable order, if in bounds.
    pub fn get(&self, index: usize) -> Option<EnabledEvent> {
        match &self.inner {
            EnabledInner::Slice(events) => events.get(index).copied(),
            EnabledInner::Live {
                steps,
                messages,
                slab,
            } => {
                if index < steps.len() {
                    return Some(EnabledEvent::Step(ProcId(steps.select(index)?)));
                }
                let (_, slot) = messages.select(index - steps.len())?;
                let message = slab
                    .get(slot)
                    .expect("enabled message indexes a live slab slot");
                Some(message.to_event())
            }
        }
    }

    /// Iterate over the enabled events in the stable order.
    pub fn iter(&self) -> impl Iterator<Item = EnabledEvent> + '_ {
        let (slice, live) = match &self.inner {
            EnabledInner::Slice(events) => (Some(events.iter().copied()), None),
            EnabledInner::Live {
                steps,
                messages,
                slab,
            } => {
                let step_events = steps.iter().map(|index| EnabledEvent::Step(ProcId(index)));
                let deliveries = messages.iter().map(move |(_, slot)| {
                    slab.get(slot)
                        .expect("enabled message indexes a live slab slot")
                        .to_event()
                });
                (None, Some(step_events.chain(deliveries)))
            }
        };
        slice
            .into_iter()
            .flatten()
            .chain(live.into_iter().flatten())
    }

    /// Materialize the view (diagnostics and differential tests).
    pub fn to_vec(&self) -> Vec<EnabledEvent> {
        self.iter().collect()
    }
}

/// Everything the adversary may look at when making a scheduling decision.
#[derive(Debug, Clone)]
pub struct SystemObservation {
    /// Total number of processors in the system.
    pub n: usize,
    /// Number of events executed so far.
    pub events_executed: u64,
    /// Remaining crash budget.
    pub crash_budget_left: usize,
    /// Per-processor observations, indexed by processor id.
    pub processes: Vec<ProcessObservation>,
}

impl SystemObservation {
    /// The observation for processor `p`.
    pub fn process(&self, p: ProcId) -> &ProcessObservation {
        &self.processes[p.index()]
    }

    /// The most recent coin flip of `p`, if the strong adversary can see one.
    pub fn coin_of(&self, p: ProcId) -> Option<bool> {
        self.process(p).local_state.as_ref().and_then(|s| s.coin)
    }

    /// Processors that are live participants (started or not, but not
    /// finished and not crashed).
    pub fn live_participants(&self) -> Vec<ProcId> {
        self.processes
            .iter()
            .filter(|o| {
                matches!(
                    o.phase,
                    ProcessPhase::NotStarted
                        | ProcessPhase::StepReady
                        | ProcessPhase::AwaitingQuorum
                )
            })
            .map(|o| o.proc)
            .collect()
    }
}

/// An adversary's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Execute the event at this index of the enabled-event list.
    Schedule(usize),
    /// Crash the given processor (consumes one unit of crash budget); the
    /// engine will ask again for a scheduling decision afterwards.
    Crash(ProcId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_picks_the_waiting_party() {
        let step = EnabledEvent::Step(ProcId(4));
        assert_eq!(step.advances(), ProcId(4));

        let request = EnabledEvent::Deliver {
            id: MessageId(0),
            from: ProcId(1),
            to: ProcId(2),
            is_request: true,
        };
        assert_eq!(
            request.advances(),
            ProcId(1),
            "requests advance their sender"
        );

        let reply = EnabledEvent::Deliver {
            id: MessageId(1),
            from: ProcId(2),
            to: ProcId(1),
            is_request: false,
        };
        assert_eq!(
            reply.advances(),
            ProcId(1),
            "replies advance their recipient"
        );
    }

    #[test]
    fn observation_lookups() {
        let obs = SystemObservation {
            n: 2,
            events_executed: 0,
            crash_budget_left: 0,
            processes: vec![
                ProcessObservation {
                    proc: ProcId(0),
                    phase: ProcessPhase::StepReady,
                    local_state: Some(
                        fle_model::LocalStateView::new("x", "y").with_coin(Some(true)),
                    ),
                },
                ProcessObservation {
                    proc: ProcId(1),
                    phase: ProcessPhase::Idle,
                    local_state: None,
                },
            ],
        };
        assert_eq!(obs.coin_of(ProcId(0)), Some(true));
        assert_eq!(obs.coin_of(ProcId(1)), None);
        assert_eq!(obs.live_participants(), vec![ProcId(0)]);
    }
}
