//! The deterministic [`SharedMemory`] adapter over [`ReplicaStore`]s.
//!
//! The discrete-event [`crate::Simulator`] implements the shared-memory
//! contract in inverted, adversary-scheduled form; this module is its
//! synchronous face: `n` replica stores in one struct, `propagate` applied
//! to every replica immediately (the quorum that answered is all of them),
//! `collect` returning the copy-on-write views of the first quorum of
//! replicas, and coin flips drawn from a per-processor seeded stream. Every
//! call completes deterministically and in program order, which corresponds
//! to the failure-free sequential schedule of the simulator.
//!
//! This is the backend of choice for unit-testing protocols against
//! [`fle_model::drive`] and for differential tests across backends: the same
//! register representation ([`ReplicaStore`] / [`fle_model::View`]) as the
//! simulator and the threaded runtime, none of the scheduling.

use fle_model::{
    CollectedViews, InstanceId, Key, Outcome, ProcId, Protocol, ReplicaStore, SharedMemory, Value,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// A bank of `n` replica stores with deterministic sequential semantics.
#[derive(Debug)]
pub struct SimMemory {
    replicas: Vec<ReplicaStore>,
    seed: u64,
}

impl SimMemory {
    /// A memory with `n` replicas (all registers `⊥`) and the given seed for
    /// the per-processor coin-flip streams.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a system needs at least one replica");
        SimMemory {
            replicas: (0..n).map(|_| ReplicaStore::new()).collect(),
            seed,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Quorum size (`⌊n/2⌋ + 1`).
    pub fn quorum(&self) -> usize {
        self.replicas.len() / 2 + 1
    }

    /// The [`SharedMemory`] handle of processor `me`. Handles borrow the
    /// memory mutably, so protocols run one at a time — the sequential
    /// schedule.
    pub fn handle(&mut self, me: ProcId) -> SimMemoryHandle<'_> {
        let rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(me.index() as u64 * 0x9e37));
        SimMemoryHandle {
            memory: self,
            me,
            rng,
        }
    }

    /// Drive every `(processor, protocol)` pair to completion in order
    /// against this memory — the sequential failure-free schedule — and
    /// return the outcomes.
    pub fn run_all(
        &mut self,
        participants: Vec<(ProcId, Box<dyn Protocol + Send>)>,
    ) -> BTreeMap<ProcId, Outcome> {
        participants
            .into_iter()
            .map(|(proc, mut protocol)| {
                let outcome = fle_model::drive(protocol.as_mut(), self.handle(proc));
                (proc, outcome)
            })
            .collect()
    }
}

/// One processor's handle onto a [`SimMemory`].
#[derive(Debug)]
pub struct SimMemoryHandle<'a> {
    memory: &'a mut SimMemory,
    me: ProcId,
    rng: ChaCha8Rng,
}

impl SimMemoryHandle<'_> {
    /// The processor this handle belongs to.
    pub fn proc(&self) -> ProcId {
        self.me
    }
}

impl SharedMemory for SimMemoryHandle<'_> {
    fn propagate(&mut self, entries: Vec<(Key, Value)>) {
        // Every replica absorbs the write before the call returns: the
        // acknowledging quorum is the whole system.
        for replica in &mut self.memory.replicas {
            replica.apply_all(&entries);
        }
    }

    fn collect(&mut self, instance: InstanceId) -> CollectedViews {
        // The first ⌊n/2⌋ + 1 replicas answer. Propagation reaches every
        // replica, so any quorum (this one included) reflects all writes
        // acknowledged so far.
        let quorum = self.memory.quorum();
        CollectedViews::from_shared(
            self.memory.replicas[..quorum]
                .iter()
                .enumerate()
                .map(|(index, replica)| (ProcId(index), replica.view_arc(instance)))
                .collect(),
        )
    }

    fn flip(&mut self, prob_one: f64) -> bool {
        self.rng.gen_bool(prob_one.clamp(0.0, 1.0))
    }

    fn choose(&mut self, choices: &[u64]) -> u64 {
        if choices.is_empty() {
            0
        } else {
            choices[self.rng.gen_range(0..choices.len())]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::{ElectionContext, Slot};

    #[test]
    fn propagated_writes_are_visible_to_every_collector() {
        let mut memory = SimMemory::new(5, 0);
        let instance = InstanceId::door(ElectionContext::Standalone);
        memory
            .handle(ProcId(2))
            .propagate(vec![(Key::global(instance), Value::Flag(true))]);
        let views = memory.handle(ProcId(4)).collect(instance);
        assert_eq!(views.len(), memory.quorum());
        assert!(views
            .responses()
            .iter()
            .all(|(_, view)| { view.get(&Slot::Global).and_then(Value::as_flag) == Some(true) }));
    }

    #[test]
    fn sequential_runs_are_deterministic() {
        let outcomes = |seed| {
            let mut memory = SimMemory::new(4, seed);
            let participants = (0..4)
                .map(|i| {
                    (
                        ProcId(i),
                        Box::new(fle_core_stub::Coin) as Box<dyn fle_model::Protocol + Send>,
                    )
                })
                .collect();
            memory.run_all(participants)
        };
        assert_eq!(outcomes(3), outcomes(3));
        // Flip streams are per-processor, so outcomes differ across seeds
        // for at least one of a handful of seeds.
        assert!((0..8u64).any(|seed| outcomes(seed) != outcomes(seed + 8)));
    }

    #[test]
    fn choose_is_uniform_over_the_given_choices() {
        let mut memory = SimMemory::new(1, 7);
        let mut handle = memory.handle(ProcId(0));
        assert_eq!(handle.choose(&[]), 0);
        for _ in 0..32 {
            let picked = handle.choose(&[11, 22, 33]);
            assert!([11, 22, 33].contains(&picked));
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_are_rejected() {
        let _ = SimMemory::new(0, 0);
    }

    /// A minimal coin-returning protocol, local to the tests so `fle-sim`
    /// does not depend on `fle-core`.
    mod fle_core_stub {
        use fle_model::{Action, LocalStateView, Outcome, Protocol, Response};

        pub struct Coin;

        impl Protocol for Coin {
            fn step(&mut self, response: Response) -> Action {
                match response {
                    Response::Start => Action::Flip { prob_one: 0.5 },
                    Response::Coin(true) => Action::Return(Outcome::Survive),
                    _ => Action::Return(Outcome::Die),
                }
            }

            fn adversary_view(&self) -> LocalStateView {
                LocalStateView::new("coin", "flipping")
            }
        }
    }
}
