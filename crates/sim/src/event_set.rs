//! Incrementally maintained enabled-event indexes.
//!
//! The engine used to rebuild a `Vec<EnabledEvent>` before every event by
//! scanning all `n` processes plus every in-flight message — O(events × (n +
//! messages)) over a run. These two structures maintain the same information
//! incrementally so each event costs O(log) index maintenance instead:
//!
//! * [`IndexedBitSet`] — the step-enabled processors, an order-statistics
//!   bitset (Fenwick tree) over the fixed universe `0..n`: insert, remove and
//!   select-the-k-th-smallest are all O(log n).
//! * [`OrderedMsgSet`] — the deliverable messages ordered by [`MessageId`].
//!   Message ids are allocated monotonically, so the set is an append-only
//!   sorted vector with tombstoned removals, a Fenwick tree over positions
//!   for O(log) rank/select, and amortized O(1) compaction that keeps
//!   iteration linear in the number of live entries.
//!
//! Both expose the *stable order* the adversary API relies on (processors
//! ascending, then message ids ascending), so `Decision::Schedule(index)`
//! retains its exact seed semantics.

use crate::message::MessageId;

/// An order-statistics set over the fixed universe `0..n`.
#[derive(Debug, Clone)]
pub struct IndexedBitSet {
    bits: Vec<bool>,
    /// 1-based Fenwick tree of membership counts.
    tree: Vec<u32>,
    len: usize,
}

impl IndexedBitSet {
    /// An empty set over `0..n`.
    pub fn new(n: usize) -> Self {
        IndexedBitSet {
            bits: vec![false; n],
            tree: vec![0; n + 1],
            len: 0,
        }
    }

    /// The universe size the set was built over.
    pub fn universe(&self) -> usize {
        self.bits.len()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `index` is a member.
    pub fn contains(&self, index: usize) -> bool {
        self.bits.get(index).copied().unwrap_or(false)
    }

    fn tree_add(&mut self, index: usize, delta: i64) {
        let mut position = index + 1;
        while position < self.tree.len() {
            self.tree[position] = (i64::from(self.tree[position]) + delta) as u32;
            position += position & position.wrapping_neg();
        }
    }

    /// Insert `index`; returns whether it was newly added.
    pub fn insert(&mut self, index: usize) -> bool {
        if self.bits[index] {
            return false;
        }
        self.bits[index] = true;
        self.len += 1;
        self.tree_add(index, 1);
        true
    }

    /// Remove `index`; returns whether it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        if !self.bits[index] {
            return false;
        }
        self.bits[index] = false;
        self.len -= 1;
        self.tree_add(index, -1);
        true
    }

    /// Set membership of `index` to `member`.
    pub fn set(&mut self, index: usize, member: bool) {
        if member {
            self.insert(index);
        } else {
            self.remove(index);
        }
    }

    /// The k-th smallest member (0-based), in O(log n).
    pub fn select(&self, k: usize) -> Option<usize> {
        if k >= self.len {
            return None;
        }
        let n = self.bits.len();
        let mut remaining = (k + 1) as u32;
        let mut position = 0usize;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = position + step;
            if next <= n && self.tree[next] < remaining {
                remaining -= self.tree[next];
                position = next;
            }
            step >>= 1;
        }
        Some(position)
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(index, &bit)| bit.then_some(index))
    }

    /// Empty the set and re-size it to universe `n`, keeping allocations
    /// when the universe already fits (trial reuse via [`crate::SimArena`]).
    pub fn reset(&mut self, n: usize) {
        if self.bits.len() == n {
            self.bits.fill(false);
            self.tree.fill(0);
            self.len = 0;
        } else {
            *self = IndexedBitSet::new(n);
        }
    }
}

impl Default for IndexedBitSet {
    fn default() -> Self {
        IndexedBitSet::new(0)
    }
}

/// Sentinel for "slot not present" in [`OrderedMsgSet::entry_of_slot`].
const ABSENT: u32 = u32::MAX;

/// The deliverable in-flight messages, ordered by ascending [`MessageId`].
///
/// Maps each member to its slab slot so the engine can resolve an adversary's
/// `Schedule(index)` decision into a slab access without any id lookup.
#[derive(Debug, Clone, Default)]
pub struct OrderedMsgSet {
    /// `(message id, slab slot)`, sorted by id. Appends are monotone in id;
    /// removals tombstone via `alive`.
    entries: Vec<(u64, u32)>,
    alive: Vec<bool>,
    /// 1-based Fenwick tree over `entries` positions counting live entries.
    tree: Vec<u32>,
    /// Slab slot → position in `entries` (`ABSENT` when not a member).
    entry_of_slot: Vec<u32>,
    live: usize,
}

impl OrderedMsgSet {
    /// An empty set.
    pub fn new() -> Self {
        OrderedMsgSet::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether slab slot `slot` is a member.
    pub fn contains_slot(&self, slot: u32) -> bool {
        self.entry_of_slot
            .get(slot as usize)
            .is_some_and(|&position| position != ABSENT)
    }

    fn tree_add(&mut self, position: usize, delta: i64) {
        let mut index = position + 1;
        while index < self.tree.len() {
            self.tree[index] = (i64::from(self.tree[index]) + delta) as u32;
            index += index & index.wrapping_neg();
        }
    }

    fn prefix(&self, count: usize) -> u32 {
        let mut index = count;
        let mut sum = 0;
        while index > 0 {
            sum += self.tree[index];
            index -= index & index.wrapping_neg();
        }
        sum
    }

    /// Insert a message; `id` must exceed every id ever inserted.
    pub fn insert(&mut self, id: MessageId, slot: u32) {
        debug_assert!(
            self.entries.last().is_none_or(|&(last, _)| last < id.0),
            "message ids must be inserted in increasing order"
        );
        if self.tree.is_empty() {
            // 1-based Fenwick tree: index 0 is an unused placeholder.
            self.tree.push(0);
        }
        let position = self.entries.len();
        self.entries.push((id.0, slot));
        self.alive.push(true);
        // Extend the Fenwick tree by one position: the new node covers
        // (position + 1 - lowbit, position + 1], whose live count is
        // prefix(position) - prefix(position + 1 - lowbit) plus this entry.
        let index = position + 1;
        let lowbit = index & index.wrapping_neg();
        let covered = self.prefix(position) - self.prefix(index - lowbit);
        self.tree.push(covered + 1);
        let slot = slot as usize;
        if slot >= self.entry_of_slot.len() {
            self.entry_of_slot.resize(slot + 1, ABSENT);
        }
        debug_assert_eq!(self.entry_of_slot[slot], ABSENT, "slot already enabled");
        self.entry_of_slot[slot] = position as u32;
        self.live += 1;
    }

    /// Remove the message occupying slab slot `slot`; returns whether it was
    /// a member.
    pub fn remove_slot(&mut self, slot: u32) -> bool {
        let Some(&position) = self.entry_of_slot.get(slot as usize) else {
            return false;
        };
        if position == ABSENT {
            return false;
        }
        self.entry_of_slot[slot as usize] = ABSENT;
        self.alive[position as usize] = false;
        self.tree_add(position as usize, -1);
        self.live -= 1;
        self.maybe_compact();
        true
    }

    /// The k-th smallest member by id (0-based), in O(log len).
    pub fn select(&self, k: usize) -> Option<(MessageId, u32)> {
        if k >= self.live {
            return None;
        }
        let n = self.entries.len();
        let mut remaining = (k + 1) as u32;
        let mut position = 0usize;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = position + step;
            if next <= n && self.tree[next] < remaining {
                remaining -= self.tree[next];
                position = next;
            }
            step >>= 1;
        }
        let (id, slot) = self.entries[position];
        Some((MessageId(id), slot))
    }

    /// Iterate over members in ascending id order. Linear in the number of
    /// live entries (amortized, thanks to compaction).
    pub fn iter(&self) -> impl Iterator<Item = (MessageId, u32)> + '_ {
        self.entries
            .iter()
            .zip(self.alive.iter())
            .filter_map(|(&(id, slot), &alive)| alive.then_some((MessageId(id), slot)))
    }

    /// Empty the set while keeping its allocations, for trial reuse through
    /// [`crate::SimArena`]. Afterwards it is indistinguishable from a fresh
    /// set (ids restart from anything, slots map on demand).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.alive.clear();
        self.tree.clear();
        self.entry_of_slot.clear();
        self.live = 0;
    }

    /// Drop tombstones once they outnumber live entries, keeping iteration
    /// and memory linear in the live count. Amortized O(1) per removal.
    fn maybe_compact(&mut self) {
        if self.entries.len() < 64 || self.live * 2 >= self.entries.len() {
            return;
        }
        let mut write = 0usize;
        for read in 0..self.entries.len() {
            if self.alive[read] {
                self.entries[write] = self.entries[read];
                self.entry_of_slot[self.entries[write].1 as usize] = write as u32;
                write += 1;
            }
        }
        self.entries.truncate(write);
        self.alive.clear();
        self.alive.resize(write, true);
        // Rebuild the Fenwick tree over the compacted, all-live entries.
        self.tree.clear();
        self.tree.resize(write + 1, 0);
        for position in 0..write {
            let mut index = position + 1;
            while index <= write {
                self.tree[index] += 1;
                index += index & index.wrapping_neg();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_select_matches_sorted_members() {
        let mut set = IndexedBitSet::new(40);
        for index in [3usize, 7, 8, 21, 39, 0] {
            assert!(set.insert(index));
        }
        assert!(!set.insert(7), "duplicate insert is a no-op");
        let members: Vec<usize> = set.iter().collect();
        assert_eq!(members, vec![0, 3, 7, 8, 21, 39]);
        for (k, &expected) in members.iter().enumerate() {
            assert_eq!(set.select(k), Some(expected));
        }
        assert_eq!(set.select(members.len()), None);

        assert!(set.remove(8));
        assert!(!set.remove(8));
        assert_eq!(set.select(2), Some(7));
        assert_eq!(set.select(3), Some(21));
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn bitset_set_is_idempotent() {
        let mut set = IndexedBitSet::new(4);
        set.set(2, true);
        set.set(2, true);
        assert_eq!(set.len(), 1);
        set.set(2, false);
        set.set(2, false);
        assert!(set.is_empty());
    }

    #[test]
    fn msgset_select_and_iter_stay_id_ordered() {
        let mut set = OrderedMsgSet::new();
        for (id, slot) in [(0u64, 5u32), (1, 3), (2, 9), (5, 0), (9, 1)] {
            set.insert(MessageId(id), slot);
        }
        assert!(set.remove_slot(9));
        assert!(!set.remove_slot(9));
        assert!(!set.contains_slot(9));
        assert!(set.contains_slot(3));
        let members: Vec<(MessageId, u32)> = set.iter().collect();
        assert_eq!(
            members,
            vec![
                (MessageId(0), 5),
                (MessageId(1), 3),
                (MessageId(5), 0),
                (MessageId(9), 1)
            ]
        );
        for (k, &expected) in members.iter().enumerate() {
            assert_eq!(set.select(k), Some(expected));
        }
        assert_eq!(set.select(4), None);
    }

    #[test]
    fn msgset_compaction_preserves_contents() {
        let mut set = OrderedMsgSet::new();
        for id in 0..200u64 {
            set.insert(MessageId(id), id as u32);
        }
        // Remove most entries to trigger compaction, slots reused afterwards.
        for slot in 0..180u32 {
            assert!(set.remove_slot(slot));
        }
        assert_eq!(set.len(), 20);
        let members: Vec<(MessageId, u32)> = set.iter().collect();
        assert_eq!(members.len(), 20);
        assert_eq!(members[0], (MessageId(180), 180));
        for (k, &expected) in members.iter().enumerate() {
            assert_eq!(set.select(k), Some(expected));
        }
        // Reuse a freed slot with a fresh (larger) id.
        set.insert(MessageId(500), 0);
        assert!(set.contains_slot(0));
        assert_eq!(set.select(20), Some((MessageId(500), 0)));
    }

    #[test]
    fn msgset_random_workout_matches_reference() {
        // Deterministic pseudo-random interleaving of inserts and removals,
        // cross-checked against a sorted reference vector.
        let mut set = OrderedMsgSet::new();
        let mut reference: Vec<(u64, u32)> = Vec::new();
        let mut next_id = 0u64;
        let mut free_slots: Vec<u32> = (0..64).collect();
        let mut state = 0x1234_5678_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let coin = rng() % 3;
            if coin < 2 && !free_slots.is_empty() {
                let slot = free_slots.pop().unwrap();
                set.insert(MessageId(next_id), slot);
                reference.push((next_id, slot));
                next_id += 1;
            } else if !reference.is_empty() {
                let victim = (rng() % reference.len() as u64) as usize;
                let (_, slot) = reference.remove(victim);
                assert!(set.remove_slot(slot));
                free_slots.push(slot);
            }
            assert_eq!(set.len(), reference.len());
            if !reference.is_empty() {
                let k = (rng() % reference.len() as u64) as usize;
                let (id, slot) = reference[k];
                assert_eq!(set.select(k), Some((MessageId(id), slot)));
            }
        }
        let collected: Vec<(u64, u32)> = set.iter().map(|(id, slot)| (id.0, slot)).collect();
        assert_eq!(collected, reference);
    }
}
