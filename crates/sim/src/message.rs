//! In-flight messages and their identifiers.

use fle_model::{ProcId, WireMessage};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a message travelling through the network.
///
/// Identifiers are assigned in send order and never reused, so they double as
/// a deterministic tiebreaker for adversaries.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message that has been sent but not yet delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlightMessage {
    /// The message identifier.
    pub id: MessageId,
    /// Sender.
    pub from: ProcId,
    /// Recipient.
    pub to: ProcId,
    /// Payload.
    pub payload: WireMessage,
    /// Event count at which the message was sent (for adversaries that want
    /// FIFO-ish or age-based policies).
    pub sent_at: u64,
}

impl InFlightMessage {
    /// Whether the payload is a request (propagate or collect).
    pub fn is_request(&self) -> bool {
        self.payload.is_request()
    }

    /// Whether the payload is a reply (ack or collect reply).
    pub fn is_reply(&self) -> bool {
        self.payload.is_reply()
    }

    /// The adversary-visible delivery event for this message. Single source
    /// of truth for which message fields adversaries may see.
    pub fn to_event(&self) -> crate::observation::EnabledEvent {
        crate::observation::EnabledEvent::Deliver {
            id: self.id,
            from: self.from,
            to: self.to,
            is_request: self.is_request(),
        }
    }
}

impl fmt::Display for InFlightMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}→{} {}", self.id, self.from, self.to, self.payload)
    }
}

/// The in-flight message store: a slab with a free-list.
///
/// Replaces the engine's former `BTreeMap<MessageId, InFlightMessage>`:
/// insertion reuses freed slots (so memory stays proportional to the peak
/// number of concurrently in-flight messages), and every access is a direct
/// array index instead of a tree walk. Slot indices are engine-internal; the
/// stable, adversary-visible identifier remains the [`MessageId`].
#[derive(Debug, Default)]
pub struct MessageSlab {
    slots: Vec<Option<InFlightMessage>>,
    free: Vec<u32>,
    live: usize,
}

impl MessageSlab {
    /// An empty slab.
    pub fn new() -> Self {
        MessageSlab::default()
    }

    /// Number of stored messages.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the slab stores no messages.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots ever allocated (live + free).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store a message, reusing a freed slot when one exists.
    pub fn insert(&mut self, message: InFlightMessage) -> u32 {
        self.live += 1;
        let slot = if let Some(slot) = self.free.pop() {
            debug_assert!(self.slots[slot as usize].is_none());
            self.slots[slot as usize] = Some(message);
            slot
        } else {
            self.slots.push(Some(message));
            (self.slots.len() - 1) as u32
        };
        self.debug_check_invariants();
        slot
    }

    /// Remove and return the message in `slot`, freeing the slot.
    pub fn remove(&mut self, slot: u32) -> Option<InFlightMessage> {
        let message = self.slots.get_mut(slot as usize)?.take()?;
        self.free.push(slot);
        self.live -= 1;
        self.debug_check_invariants();
        Some(message)
    }

    /// Empty the slab while keeping its allocations, for trial reuse through
    /// [`crate::SimArena`]. Afterwards the slab behaves exactly like a fresh
    /// one: slot 0 is handed out first and the free list is empty.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
    }

    /// The structural invariant (`live + free = allocated`), checked after
    /// every mutation in debug builds only. Deliberately O(1) and
    /// allocation-free — no scan, no collecting ids into a scratch vector —
    /// so it can neither slow the hot path nor distort allocation-sensitive
    /// measurements; the per-slot conditions are asserted at the touch site.
    #[inline]
    fn debug_check_invariants(&self) {
        debug_assert_eq!(
            self.live + self.free.len(),
            self.slots.len(),
            "every slot is either occupied or on the free list"
        );
    }

    /// The message in `slot`, if the slot is occupied.
    pub fn get(&self, slot: u32) -> Option<&InFlightMessage> {
        self.slots.get(slot as usize)?.as_ref()
    }

    /// Iterate over `(slot, message)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &InFlightMessage)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, entry)| Some((slot as u32, entry.as_ref()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn message(id: u64) -> InFlightMessage {
        InFlightMessage {
            id: MessageId(id),
            from: ProcId(0),
            to: ProcId(1),
            payload: WireMessage::Ack { seq: id },
            sent_at: 0,
        }
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut slab = MessageSlab::new();
        let a = slab.insert(message(0));
        let b = slab.insert(message(1));
        assert_ne!(a, b);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.remove(a).unwrap().id, MessageId(0));
        assert_eq!(slab.remove(a), None, "double remove is a no-op");
        let c = slab.insert(message(2));
        assert_eq!(c, a, "the freed slot is reused");
        assert_eq!(slab.capacity(), 2);
        assert_eq!(slab.get(b).unwrap().id, MessageId(1));
        let ids: Vec<u64> = slab.iter().map(|(_, m)| m.id.0).collect();
        assert_eq!(ids, vec![2, 1], "iteration is in slot order");
    }

    #[test]
    fn classification_follows_payload() {
        let msg = InFlightMessage {
            id: MessageId(1),
            from: ProcId(0),
            to: ProcId(1),
            payload: WireMessage::Ack { seq: 3 },
            sent_at: 0,
        };
        assert!(msg.is_reply());
        assert!(!msg.is_request());
        assert!(msg.to_string().contains("p0→p1"));
    }

    #[test]
    fn message_ids_order_by_send_order() {
        assert!(MessageId(1) < MessageId(2));
        assert_eq!(MessageId(5).to_string(), "m5");
    }
}
