//! In-flight messages and their identifiers.

use fle_model::{ProcId, WireMessage};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a message travelling through the network.
///
/// Identifiers are assigned in send order and never reused, so they double as
/// a deterministic tiebreaker for adversaries.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message that has been sent but not yet delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct InFlightMessage {
    /// The message identifier.
    pub id: MessageId,
    /// Sender.
    pub from: ProcId,
    /// Recipient.
    pub to: ProcId,
    /// Payload.
    pub payload: WireMessage,
    /// Event count at which the message was sent (for adversaries that want
    /// FIFO-ish or age-based policies).
    pub sent_at: u64,
}

impl InFlightMessage {
    /// Whether the payload is a request (propagate or collect).
    pub fn is_request(&self) -> bool {
        self.payload.is_request()
    }

    /// Whether the payload is a reply (ack or collect reply).
    pub fn is_reply(&self) -> bool {
        self.payload.is_reply()
    }
}

impl fmt::Display for InFlightMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}→{} {}",
            self.id, self.from, self.to, self.payload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_follows_payload() {
        let msg = InFlightMessage {
            id: MessageId(1),
            from: ProcId(0),
            to: ProcId(1),
            payload: WireMessage::Ack { seq: 3 },
            sent_at: 0,
        };
        assert!(msg.is_reply());
        assert!(!msg.is_request());
        assert!(msg.to_string().contains("p0→p1"));
    }

    #[test]
    fn message_ids_order_by_send_order() {
        assert!(MessageId(1) < MessageId(2));
        assert_eq!(MessageId(5).to_string(), "m5");
    }
}
