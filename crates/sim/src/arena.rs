//! Reusable simulation buffers for back-to-back trials.
//!
//! Every experiment in this workspace runs thousands of independent
//! `(seed, n, adversary)` trials; building a fresh [`crate::Simulator`] per
//! trial used to re-allocate the message slab, the enabled-event indexes, the
//! per-processor state vector and the adversary observation from scratch each
//! time. A [`SimArena`] is the recycled bundle of those buffers: emptied, not
//! freed, between trials, so after a warm-up trial the per-trial allocation
//! cost of the engine scaffolding drops to (approximately) nothing.
//!
//! Two ways to use it:
//!
//! * **Transparently** — [`crate::Simulator::new`] draws from a thread-local
//!   arena pool and returns the buffers on drop, so plain loops (and every
//!   `fle_bench::BatchRunner` worker thread, which keeps one arena per
//!   thread by construction) get reuse with no code changes.
//! * **Explicitly** — [`crate::Simulator::from_arena`] /
//!   [`crate::Simulator::into_arena`] thread one arena through a loop by
//!   hand, for callers that want the reuse to be visible and testable.
//!
//! Recycling never changes behaviour: every buffer is reset to a state
//! indistinguishable from freshly allocated (the differential tests in
//! `tests/event_set_equivalence.rs` re-run identical configurations
//! back-to-back and require byte-identical reports).

use crate::event_set::{IndexedBitSet, OrderedMsgSet};
use crate::message::MessageSlab;
use crate::observation::ProcessObservation;
use crate::process::SimProcess;
use fle_model::ProcId;
use std::cell::RefCell;

/// The recyclable buffers of one simulator instance.
#[derive(Default)]
pub struct SimArena {
    pub(crate) slab: MessageSlab,
    pub(crate) enabled_msgs: OrderedMsgSet,
    pub(crate) enabled_steps: IndexedBitSet,
    pub(crate) processes: Vec<SimProcess>,
    pub(crate) crashes: Vec<ProcId>,
    pub(crate) scratch_slots: Vec<u32>,
    pub(crate) observations: Vec<ProcessObservation>,
}

impl std::fmt::Debug for SimArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArena")
            .field("slab_capacity", &self.slab.capacity())
            .field("processes", &self.processes.len())
            .finish()
    }
}

impl SimArena {
    /// An arena with no buffers yet (they grow on first use).
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Number of processor shells currently held (diagnostic; the arena
    /// resizes itself to whatever the next simulator needs).
    pub fn capacity(&self) -> usize {
        self.processes.len()
    }

    /// Take the calling thread's pooled arena (empty if none is pooled).
    pub(crate) fn take_pooled() -> SimArena {
        POOL.with(|pool| pool.borrow_mut().take())
            .unwrap_or_default()
    }

    /// Hand an arena back to the calling thread's pool.
    pub(crate) fn pool(arena: SimArena) {
        POOL.with(|pool| *pool.borrow_mut() = Some(arena));
    }
}

thread_local! {
    /// One pooled arena per thread: enough for the trial loops, which run
    /// back-to-back simulations on each `BatchRunner` worker.
    static POOL: RefCell<Option<SimArena>> = const { RefCell::new(None) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomAdversary, SimConfig, Simulator};
    use fle_model::{Action, LocalStateView, Outcome, Protocol, Response};

    struct TwoStep {
        stepped: bool,
    }
    impl Protocol for TwoStep {
        fn step(&mut self, _response: Response) -> Action {
            if self.stepped {
                Action::Return(Outcome::Win)
            } else {
                self.stepped = true;
                Action::Propagate {
                    entries: vec![(
                        fle_model::Key::global(fle_model::InstanceId::Contended),
                        fle_model::Value::Flag(true),
                    )],
                }
            }
        }
        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("two-step", "x")
        }
    }

    #[test]
    fn explicit_arena_round_trip_reuses_buffers() {
        let mut arena = SimArena::new();
        let mut last_events = None;
        for trial in 0..3 {
            let mut sim = Simulator::from_arena(SimConfig::new(5).with_seed(7), arena);
            for i in 0..5 {
                sim.add_participant(ProcId(i), Box::new(TwoStep { stepped: false }));
            }
            let report = sim.run(&mut RandomAdversary::with_seed(3)).unwrap();
            // Identical configuration ⇒ identical execution, warm or cold.
            if let Some(previous) = last_events {
                assert_eq!(report.events_executed, previous, "trial {trial}");
            }
            last_events = Some(report.events_executed);
            arena = sim.into_arena();
            assert_eq!(arena.capacity(), 5);
        }
    }

    #[test]
    fn arena_resizes_between_different_system_sizes() {
        let mut arena = SimArena::new();
        for n in [3usize, 8, 2] {
            let mut sim = Simulator::from_arena(SimConfig::new(n), arena);
            for i in 0..n {
                sim.add_participant(ProcId(i), Box::new(TwoStep { stepped: false }));
            }
            let report = sim.run(&mut RandomAdversary::with_seed(1)).unwrap();
            assert_eq!(report.outcomes.len(), n);
            arena = sim.into_arena();
            assert_eq!(arena.capacity(), n);
        }
    }
}
