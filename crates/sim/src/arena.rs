//! Reusable simulation buffers for back-to-back trials.
//!
//! Every experiment in this workspace runs thousands of independent
//! `(seed, n, adversary)` trials; building a fresh [`crate::Simulator`] per
//! trial used to re-allocate the message slab, the enabled-event indexes, the
//! per-processor state vector and the adversary observation from scratch each
//! time. A [`SimArena`] is the recycled bundle of those buffers: emptied, not
//! freed, between trials, so after a warm-up trial the per-trial allocation
//! cost of the engine scaffolding drops to (approximately) nothing.
//!
//! Two ways to use it:
//!
//! * **Transparently** — [`crate::Simulator::new`] draws from the arena pool
//!   and returns the buffers on drop, so plain loops (and every
//!   `fle_bench::BatchRunner` worker thread) get reuse with no code changes.
//! * **Explicitly** — [`crate::Simulator::from_arena`] /
//!   [`crate::Simulator::into_arena`] thread one arena through a loop by
//!   hand, for callers that want the reuse to be visible and testable.
//!
//! The pool is two-level: a thread-local slot (the fast path, no
//! synchronisation) backed by a bounded process-wide free list. The global
//! level matters for the partitioned simulator, whose
//! [`crate::ParallelSimulator`] round bodies run on short-lived
//! `std::thread::scope` workers — but whose engines are created and dropped
//! on the *coordinating* thread, and for batch drivers that respawn worker
//! threads between configurations: without the shared list, every fresh
//! thread would pay the full cold-allocation cost again. [`pool_stats`]
//! exposes hit/miss counters so tests can assert that recycling actually
//! happens.
//!
//! Recycling never changes behaviour: every buffer is reset to a state
//! indistinguishable from freshly allocated (the differential tests in
//! `tests/event_set_equivalence.rs` re-run identical configurations
//! back-to-back and require byte-identical reports).

use crate::event_set::{IndexedBitSet, OrderedMsgSet};
use crate::message::MessageSlab;
use crate::observation::ProcessObservation;
use crate::process::SimProcess;
use fle_model::ProcId;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The recyclable buffers of one simulator instance.
#[derive(Default)]
pub struct SimArena {
    pub(crate) slab: MessageSlab,
    pub(crate) enabled_msgs: OrderedMsgSet,
    pub(crate) enabled_steps: IndexedBitSet,
    pub(crate) processes: Vec<SimProcess>,
    pub(crate) crashes: Vec<ProcId>,
    pub(crate) scratch_slots: Vec<u32>,
    pub(crate) observations: Vec<ProcessObservation>,
    /// How many times this bundle of buffers has been taken from the pool.
    pub(crate) reuses: u64,
}

impl std::fmt::Debug for SimArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimArena")
            .field("slab_capacity", &self.slab.capacity())
            .field("processes", &self.processes.len())
            .field("reuses", &self.reuses)
            .finish()
    }
}

impl SimArena {
    /// An arena with no buffers yet (they grow on first use).
    pub fn new() -> Self {
        SimArena::default()
    }

    /// Number of processor shells currently held (diagnostic; the arena
    /// resizes itself to whatever the next simulator needs).
    pub fn capacity(&self) -> usize {
        self.processes.len()
    }

    /// How many times this arena's buffers have been recycled through the
    /// pool (0 for a cold arena). Diagnostic: the pooling tests assert this
    /// becomes positive on warm paths, including on worker threads that never
    /// pooled an arena themselves.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Take a pooled arena: the calling thread's slot first, then the
    /// process-wide free list, then (cold miss) a fresh empty arena.
    pub(crate) fn take_pooled() -> SimArena {
        if let Some(mut arena) = POOL.with(|pool| pool.borrow_mut().take()) {
            STATS.thread_hits.fetch_add(1, Ordering::Relaxed);
            arena.reuses += 1;
            return arena;
        }
        if let Some(mut arena) = GLOBAL.lock().ok().and_then(|mut list| list.pop()) {
            STATS.global_hits.fetch_add(1, Ordering::Relaxed);
            arena.reuses += 1;
            return arena;
        }
        STATS.misses.fetch_add(1, Ordering::Relaxed);
        SimArena::default()
    }

    /// Hand an arena back: fill the calling thread's slot if empty, else the
    /// global free list (dropped outright once the list holds
    /// [`GLOBAL_POOL_CAP`] arenas, so a burst of short-lived threads cannot
    /// pin unbounded memory).
    pub(crate) fn pool(arena: SimArena) {
        let arena = match POOL.with(|pool| {
            let mut slot = pool.borrow_mut();
            if slot.is_none() {
                *slot = Some(arena);
                None
            } else {
                Some(arena)
            }
        }) {
            None => return,
            Some(arena) => arena,
        };
        if let Ok(mut list) = GLOBAL.lock() {
            if list.len() < GLOBAL_POOL_CAP {
                list.push(arena);
            }
        }
    }
}

/// Upper bound on the process-wide free list (beyond the one thread-local
/// slot each thread keeps).
const GLOBAL_POOL_CAP: usize = 64;

thread_local! {
    /// One pooled arena per thread: the synchronisation-free fast path for
    /// trial loops that run back-to-back simulations on one thread.
    static POOL: RefCell<Option<SimArena>> = const { RefCell::new(None) };
}

/// Process-wide overflow pool, shared across threads.
static GLOBAL: Mutex<Vec<SimArena>> = Mutex::new(Vec::new());

struct PoolCounters {
    thread_hits: AtomicU64,
    global_hits: AtomicU64,
    misses: AtomicU64,
}

static STATS: PoolCounters = PoolCounters {
    thread_hits: AtomicU64::new(0),
    global_hits: AtomicU64::new(0),
    misses: AtomicU64::new(0),
};

/// Cumulative arena-pool counters for the whole process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaPoolStats {
    /// Takes served from the calling thread's slot.
    pub thread_hits: u64,
    /// Takes served from the process-wide free list.
    pub global_hits: u64,
    /// Takes that had to allocate a cold arena.
    pub misses: u64,
}

/// Snapshot of the process-wide arena-pool counters (monotone; useful for
/// asserting that a code path recycled buffers instead of allocating).
pub fn pool_stats() -> ArenaPoolStats {
    ArenaPoolStats {
        thread_hits: STATS.thread_hits.load(Ordering::Relaxed),
        global_hits: STATS.global_hits.load(Ordering::Relaxed),
        misses: STATS.misses.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomAdversary, SimConfig, Simulator};
    use fle_model::{Action, LocalStateView, Outcome, Protocol, Response};

    struct TwoStep {
        stepped: bool,
    }
    impl Protocol for TwoStep {
        fn step(&mut self, _response: Response) -> Action {
            if self.stepped {
                Action::Return(Outcome::Win)
            } else {
                self.stepped = true;
                Action::Propagate {
                    entries: vec![(
                        fle_model::Key::global(fle_model::InstanceId::Contended),
                        fle_model::Value::Flag(true),
                    )],
                }
            }
        }
        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("two-step", "x")
        }
    }

    #[test]
    fn explicit_arena_round_trip_reuses_buffers() {
        let mut arena = SimArena::new();
        let mut last_events = None;
        for trial in 0..3 {
            let mut sim = Simulator::from_arena(SimConfig::new(5).with_seed(7), arena);
            for i in 0..5 {
                sim.add_participant(ProcId(i), Box::new(TwoStep { stepped: false }));
            }
            let report = sim.run(&mut RandomAdversary::with_seed(3)).unwrap();
            // Identical configuration ⇒ identical execution, warm or cold.
            if let Some(previous) = last_events {
                assert_eq!(report.events_executed, previous, "trial {trial}");
            }
            last_events = Some(report.events_executed);
            arena = sim.into_arena();
            assert_eq!(arena.capacity(), 5);
        }
    }

    #[test]
    fn arena_resizes_between_different_system_sizes() {
        let mut arena = SimArena::new();
        for n in [3usize, 8, 2] {
            let mut sim = Simulator::from_arena(SimConfig::new(n), arena);
            for i in 0..n {
                sim.add_participant(ProcId(i), Box::new(TwoStep { stepped: false }));
            }
            let report = sim.run(&mut RandomAdversary::with_seed(1)).unwrap();
            assert_eq!(report.outcomes.len(), n);
            arena = sim.into_arena();
            assert_eq!(arena.capacity(), n);
        }
    }

    #[test]
    fn fresh_threads_recycle_arenas_through_the_global_pool() {
        // Holding several simulators alive at once forces their arenas past
        // the single thread-local slot and onto the global free list when
        // they drop (sequential create/drop would only cycle the slot).
        let restock = || {
            let sims: Vec<Simulator> = (0..8)
                .map(|_| {
                    let mut sim = Simulator::new(SimConfig::new(4).with_seed(11));
                    for i in 0..4 {
                        sim.add_participant(ProcId(i), Box::new(TwoStep { stepped: false }));
                    }
                    sim.run(&mut RandomAdversary::with_seed(2)).unwrap();
                    sim
                })
                .collect();
            drop(sims);
        };
        restock();
        let before = pool_stats();
        // A brand-new thread has an empty thread-local slot, so its take
        // must be served by the global pool — visible both as a positive
        // reuse counter on the arena and as a global-hit tick. Retry a few
        // times for robustness against concurrently-running tests draining
        // the list.
        let mut recycled = false;
        for _ in 0..4 {
            recycled = std::thread::spawn(|| {
                let sim = Simulator::new(SimConfig::new(4).with_seed(11));
                sim.arena_reuses() > 0
            })
            .join()
            .unwrap();
            if recycled {
                break;
            }
            restock();
        }
        assert!(recycled, "fresh thread should receive a recycled arena");
        let after = pool_stats();
        assert!(
            after.global_hits > before.global_hits,
            "global pool should have served at least one take"
        );
    }
}
