//! The partitioned parallel simulator: one giant election across all cores.
//!
//! [`ParallelSimulator`] splits one simulation's `n` processors into
//! contiguous partitions ([`fle_model::PartitionMap`]), gives each partition
//! its own engine (message slab, event indexes, processor state) and advances
//! all partitions in deterministic **super-rounds**:
//!
//! 1. **Barrier (leader, serial):** apply the crashes due this round, one at
//!    a time in ascending victim order, stopping early if the last live
//!    participant dies (mirroring the sequential engine's check before every
//!    decision).
//! 2. **Round (workers, parallel):** every partition *intakes* the messages
//!    routed to it at the previous barrier, then delivers **all** of them in
//!    ascending message-id order, then runs step-runs in ascending processor
//!    order (a processor keeps stepping until it blocks). Every message a
//!    partition sends — local or remote — goes to its *outbox* tagged with a
//!    [`RouteKey`] and becomes deliverable only next round, so partitions are
//!    causally isolated within a round and the execution cannot depend on
//!    which worker thread ran which partition.
//! 3. **Barrier (leader, serial):** merge the outboxes in [`RouteKey`] order,
//!    assign global message ids in that order, and route each message to its
//!    recipient's partition. The key is a pure function of what *triggered*
//!    the send (the delivered message id for replies, the stepping processor
//!    for broadcasts), so the id sequence is independent of the partition
//!    count — and in this canonical mode it reproduces the sequential
//!    engine's send order exactly.
//!
//! The same schedule can be driven through the sequential [`crate::Simulator`]
//! by the [`SuperRoundAdversary`], which is how the differential tests pin the
//! partitioned engine to the reference engine event for event (same reports,
//! same metrics, same trace digests).
//!
//! Two scheduling modes:
//!
//! * **Canonical** ([`ParallelSimulator::run_canonical`]): crashes come from a
//!   pre-declared [`RoundCrashPlan`]; the schedule — and therefore every
//!   report field — is a pure function of `(seed, n, crash plan)` and is
//!   *identical for every partition count*. This is the mode the benchmarks
//!   and differential tests use.
//! * **Adversarial** ([`ParallelSimulator::run_adversarial`]): each partition
//!   gets its own [`Adversary`] (seeded by a pure function of the
//!   configuration seed and the partition index) which orders that
//!   partition's events within each round and spends a partition share of the
//!   crash budget. Deterministic for a fixed `(seed, n, partitions)` and
//!   independent of the worker-thread count, but *not* partition-count
//!   independent (different partition counts are simply different
//!   adversaries).

use crate::adversary::Adversary;
use crate::arena::SimArena;
use crate::engine::SimConfig;
use crate::error::SimError;
use crate::event_set::{IndexedBitSet, OrderedMsgSet};
use crate::message::{InFlightMessage, MessageId, MessageSlab};
use crate::observation::{
    Decision, EnabledEvent, EnabledEvents, ProcessObservation, ProcessPhase, SystemObservation,
};
use crate::process::{PendingWork, SimProcess};
use crate::report::ExecutionReport;
use crate::trace::{Trace, TraceEvent};
use fle_model::{
    splitmix64, Action, CollectedViews, Outcome, PartitionMap, ProcId, Protocol, Response,
    RouteKey, WireMessage,
};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic per-processor coin streams
// ---------------------------------------------------------------------------

/// The `k`-th raw coin word of processor `proc` under configuration seed
/// `seed`: `splitmix64(splitmix64(seed ^ splitmix64(p + 1)) ^ k)`.
///
/// The stream depends only on `(seed, proc)` — never on the partition count,
/// the worker-thread count, or the order in which other processors flip — so
/// any engine that draws coins this way produces the same flips for the same
/// processors. See `sim/trace.rs` for the full seed-derivation rule.
pub fn coin_word(seed: u64, proc: ProcId, k: u64) -> u64 {
    let stream = splitmix64(seed ^ splitmix64(proc.index() as u64 + 1));
    splitmix64(stream ^ k)
}

/// Turn a raw coin word into a biased boolean: the top 53 bits as a uniform
/// float in `[0, 1)`, compared against `prob_one` (clamped to `[0, 1]`).
pub fn coin_bool(word: u64, prob_one: f64) -> bool {
    let unit = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < prob_one.clamp(0.0, 1.0)
}

/// The seed handed to partition `partition`'s adversary in adversarial mode:
/// `splitmix64(seed ^ splitmix64(0xAD5E_0000_0000_0000 | partition))`.
pub fn partition_adversary_seed(seed: u64, partition: usize) -> u64 {
    splitmix64(seed ^ splitmix64(0xAD5E_0000_0000_0000 | partition as u64))
}

// ---------------------------------------------------------------------------
// Crash plans
// ---------------------------------------------------------------------------

/// A pre-declared crash schedule for canonical mode: `(round, victim)` pairs,
/// applied at the start of the given super-round in ascending victim order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundCrashPlan {
    entries: Vec<(u64, ProcId)>,
}

impl RoundCrashPlan {
    /// A plan with no crashes.
    pub fn none() -> Self {
        RoundCrashPlan::default()
    }

    /// Build a plan from `(round, victim)` pairs; entries are sorted by
    /// `(round, victim)` so same-round crashes apply in ascending victim
    /// order.
    pub fn new(mut entries: Vec<(u64, ProcId)>) -> Self {
        entries.sort();
        RoundCrashPlan { entries }
    }

    /// The sorted `(round, victim)` entries.
    pub fn entries(&self) -> &[(u64, ProcId)] {
        &self.entries
    }

    /// Check the plan against a configuration: victims must be in range,
    /// pairwise distinct, and no more numerous than the crash budget.
    ///
    /// # Errors
    /// [`SimError::InvalidDecision`] for out-of-range or duplicate victims,
    /// [`SimError::CrashBudgetExceeded`] for too many crashes.
    pub fn validate(&self, config: &SimConfig) -> Result<(), SimError> {
        if self.entries.len() > config.crash_budget {
            return Err(SimError::CrashBudgetExceeded {
                victim: self.entries[config.crash_budget].1,
                budget: config.crash_budget,
            });
        }
        let mut victims: Vec<ProcId> = self.entries.iter().map(|&(_, v)| v).collect();
        victims.sort();
        for pair in victims.windows(2) {
            if pair[0] == pair[1] {
                return Err(SimError::InvalidDecision {
                    reason: format!("crash plan names {} twice", pair[0]),
                });
            }
        }
        for &(_, victim) in &self.entries {
            if victim.index() >= config.n {
                return Err(SimError::InvalidDecision {
                    reason: format!("cannot crash non-existent processor {victim}"),
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-partition engine
// ---------------------------------------------------------------------------

/// A message leaving a partition during a round, waiting for the barrier to
/// assign it a global id and route it.
struct Outbound {
    key: RouteKey,
    from: ProcId,
    to: ProcId,
    payload: WireMessage,
}

impl Outbound {
    /// Placeholder left behind when the router moves a message out of an
    /// outbox slot (the outbox is cleared wholesale right after the merge).
    fn tombstone() -> Self {
        Outbound {
            key: RouteKey::reply(u64::MAX),
            from: ProcId(0),
            to: ProcId(0),
            payload: WireMessage::Ack { seq: 0 },
        }
    }
}

/// An interval/outcome event observed by a worker mid-round; the leader
/// assigns its global event number at the barrier.
struct Marker {
    /// Position of the triggering event inside this partition's round:
    /// canonical mode counts step-phase events only (1-based local step
    /// index), adversarial mode counts all local events (1-based).
    pos: u64,
    proc: ProcId,
    kind: MarkerKind,
}

enum MarkerKind {
    /// First protocol step (invocation).
    Start,
    /// Protocol returned with this outcome.
    Ret(Outcome),
}

/// One partition's share of the simulation: local processors, local message
/// slab and event indexes, plus the round buffers the barrier reads.
struct PartitionEngine {
    part: usize,
    lo: usize,
    hi: usize,
    config: SimConfig,
    /// Local processors, indexed by `proc - lo`.
    processes: Vec<SimProcess>,
    slab: MessageSlab,
    enabled_msgs: OrderedMsgSet,
    /// Step-enabled processors. Indexed by **global** processor id (only
    /// local bits are ever set) so enabled-event views hand adversaries
    /// correct global `ProcId`s.
    enabled_steps: IndexedBitSet,
    /// Live (registered, not crashed, not returned) local participants.
    live: usize,
    metrics: fle_model::ExecutionMetrics,
    /// Local crash log (adversarial mode; canonical crashes are applied and
    /// logged by the leader).
    crashes: Vec<ProcId>,
    scratch_slots: Vec<u32>,
    /// Messages routed to this partition at the last barrier.
    inbox: Vec<InFlightMessage>,
    /// Messages sent this round, in [`RouteKey`] order by construction.
    outbox: Vec<Outbound>,
    markers: Vec<Marker>,
    /// `Deliver` trace events of this round, ascending message id
    /// (canonical mode; merged by id across partitions at the barrier).
    trace_deliver: Vec<TraceEvent>,
    /// The round's other trace events in execution order (canonical: step
    /// phase only; adversarial: every event including deliveries).
    trace_other: Vec<TraceEvent>,
    round_delivered: u64,
    round_steps: u64,
    /// Total events this partition executed across all rounds (adversarial
    /// observations report this partition-local count).
    events_local: u64,
    /// Error raised by this partition during the round, if any.
    round_error: Option<SimError>,
    /// Adversarial mode only: this partition's adversary, its full-`n`
    /// observation (remote processors appear as [`ProcessPhase::Idle`]) and
    /// its share of the crash budget.
    adversary: Option<Box<dyn Adversary>>,
    observation: Option<SystemObservation>,
    crash_budget: usize,
    /// How many times this engine's arena has been recycled through the pool.
    arena_reuses: u64,
}

impl PartitionEngine {
    fn new(part: usize, map: &PartitionMap, config: &SimConfig) -> Self {
        let range = map.range_of(part);
        let (lo, hi) = (range.start, range.end);
        let arena = SimArena::take_pooled();
        let arena_reuses = arena.reuses();
        let SimArena {
            mut slab,
            mut enabled_msgs,
            mut enabled_steps,
            mut processes,
            mut crashes,
            mut scratch_slots,
            observations: _,
            ..
        } = arena;
        slab.clear();
        enabled_msgs.clear();
        enabled_steps.reset(config.n);
        crashes.clear();
        scratch_slots.clear();
        let local = hi - lo;
        for (offset, process) in processes.iter_mut().enumerate().take(local) {
            process.recycle(ProcId(lo + offset));
        }
        processes.truncate(local);
        while processes.len() < local {
            processes.push(SimProcess::replica_only(ProcId(lo + processes.len())));
        }
        PartitionEngine {
            part,
            lo,
            hi,
            config: config.clone(),
            processes,
            slab,
            enabled_msgs,
            enabled_steps,
            live: 0,
            metrics: fle_model::ExecutionMetrics::default(),
            crashes,
            scratch_slots,
            inbox: Vec::new(),
            outbox: Vec::new(),
            markers: Vec::new(),
            trace_deliver: Vec::new(),
            trace_other: Vec::new(),
            round_delivered: 0,
            round_steps: 0,
            events_local: 0,
            round_error: None,
            adversary: None,
            observation: None,
            crash_budget: 0,
            arena_reuses,
        }
    }

    fn owns(&self, proc: ProcId) -> bool {
        (self.lo..self.hi).contains(&proc.index())
    }

    fn process(&self, proc: ProcId) -> &SimProcess {
        &self.processes[proc.index() - self.lo]
    }

    fn process_mut(&mut self, proc: ProcId) -> &mut SimProcess {
        &mut self.processes[proc.index() - self.lo]
    }

    /// Re-sync `proc`'s step-enabled bit (and, in adversarial mode, its
    /// observation entry) after its state changed.
    fn sync_proc(&mut self, proc: ProcId) {
        let process = &self.processes[proc.index() - self.lo];
        let step_enabled = process.step_enabled();
        self.enabled_steps.set(proc.index(), step_enabled);
        if let Some(observation) = self.observation.as_mut() {
            let phase = if process.crashed {
                ProcessPhase::Crashed
            } else if !process.participates() {
                ProcessPhase::Idle
            } else {
                match &process.pending {
                    PendingWork::NotStarted => ProcessPhase::NotStarted,
                    PendingWork::LocalResponse(_) | PendingWork::ResponseReady(_) => {
                        ProcessPhase::StepReady
                    }
                    PendingWork::AwaitingAcks { .. } | PendingWork::AwaitingViews { .. } => {
                        ProcessPhase::AwaitingQuorum
                    }
                    PendingWork::Finished(_) => ProcessPhase::Finished,
                }
            };
            let local_state = process
                .protocol
                .as_ref()
                .map(|proto| proto.adversary_view());
            observation.processes[proc.index()] = ProcessObservation {
                proc,
                phase,
                local_state,
            };
        }
    }

    /// Pull the messages routed to this partition at the last barrier into
    /// the slab and the enabled index (skipping enabling for crashed
    /// recipients, which mirrors the sequential engine retiring a victim's
    /// deliveries at crash time).
    fn intake(&mut self) {
        let mut inbox = std::mem::take(&mut self.inbox);
        for message in inbox.drain(..) {
            debug_assert!(self.owns(message.to), "message routed to wrong partition");
            let id = message.id;
            let to = message.to;
            let is_reply = message.is_reply();
            let crashed = self.process(to).crashed;
            let slot = self.slab.insert(message);
            if is_reply {
                self.process_mut(to).call_msgs.push(slot);
            }
            if !crashed {
                self.enabled_msgs.insert(id, slot);
            }
        }
        self.inbox = inbox;
    }

    /// Run one canonical super-round: intake, deliver everything in ascending
    /// id order, then step-runs in ascending processor order.
    fn run_round_canonical(&mut self) {
        self.round_delivered = 0;
        self.round_steps = 0;
        self.intake();
        while let Some((_, slot)) = self.enabled_msgs.select(0) {
            self.round_delivered += 1;
            self.execute_delivery(slot, false);
        }
        while let Some(index) = self.enabled_steps.select(0) {
            self.round_steps += 1;
            self.execute_step(ProcId(index), self.round_steps);
        }
    }

    /// Run one adversarial super-round: intake, then let this partition's
    /// adversary order (and crash) until every enabled event is consumed.
    fn run_round_adversarial(&mut self) {
        self.round_delivered = 0;
        self.round_steps = 0;
        self.intake();
        while self.enabled_steps.len() + self.enabled_msgs.len() > 0 {
            if let Some(observation) = self.observation.as_mut() {
                observation.events_executed = self.events_local;
                observation.crash_budget_left =
                    self.crash_budget.saturating_sub(self.crashes.len());
            }
            let decision = {
                let observation = self
                    .observation
                    .as_ref()
                    .expect("adversarial mode maintains an observation");
                let enabled =
                    EnabledEvents::live(&self.enabled_steps, &self.enabled_msgs, &self.slab);
                let adversary = self
                    .adversary
                    .as_mut()
                    .expect("adversarial mode installs an adversary");
                adversary.decide(observation, &enabled)
            };
            match decision {
                Decision::Crash(victim) => {
                    if let Err(error) = self.crash_local(victim) {
                        self.round_error = Some(error);
                        return;
                    }
                }
                Decision::Schedule(index) => {
                    if index < self.enabled_steps.len() {
                        let proc = ProcId(
                            self.enabled_steps
                                .select(index)
                                .expect("index checked against len"),
                        );
                        self.round_steps += 1;
                        let pos = self.round_delivered + self.round_steps;
                        self.execute_step(proc, pos);
                    } else if let Some((_, slot)) =
                        self.enabled_msgs.select(index - self.enabled_steps.len())
                    {
                        self.round_delivered += 1;
                        self.execute_delivery(slot, true);
                    } else {
                        self.round_error = Some(SimError::InvalidDecision {
                            reason: format!(
                                "index {index} out of bounds for {} enabled events",
                                self.enabled_steps.len() + self.enabled_msgs.len()
                            ),
                        });
                        return;
                    }
                }
            }
        }
        // The barrier's p-way merge requires key-sorted outboxes. Keys are
        // unique within a round (replies carry distinct trigger ids; a
        // processor sends at most one broadcast batch per round, since a
        // fresh communicate call cannot complete before the next barrier),
        // so this sort is deterministic regardless of adversary order.
        self.outbox.sort_by_key(|out| out.key);
    }

    /// Adversarial-mode crash: victims must be local, and the partition pays
    /// from its own share of the crash budget.
    fn crash_local(&mut self, victim: ProcId) -> Result<(), SimError> {
        if self.crashes.len() >= self.crash_budget {
            return Err(SimError::CrashBudgetExceeded {
                victim,
                budget: self.crash_budget,
            });
        }
        if !self.owns(victim) {
            return Err(SimError::InvalidDecision {
                reason: format!(
                    "partition {} cannot crash remote processor {victim}",
                    self.part
                ),
            });
        }
        if self.process(victim).crashed {
            return Err(SimError::InvalidDecision {
                reason: format!("{victim} is already crashed"),
            });
        }
        if self.process(victim).is_live_participant() {
            self.live -= 1;
        }
        self.process_mut(victim).crashed = true;
        self.crashes.push(victim);
        let mut doomed = std::mem::take(&mut self.scratch_slots);
        doomed.clear();
        doomed.extend(
            self.enabled_msgs
                .iter()
                .filter(|&(_, slot)| {
                    self.slab
                        .get(slot)
                        .expect("enabled message indexes a live slab slot")
                        .to
                        == victim
                })
                .map(|(_, slot)| slot),
        );
        for &slot in &doomed {
            self.enabled_msgs.remove_slot(slot);
        }
        self.scratch_slots = doomed;
        if self.config.record_trace {
            self.trace_other.push(TraceEvent::Crash { proc: victim });
        }
        self.sync_proc(victim);
        Ok(())
    }

    fn execute_step(&mut self, proc: ProcId, pos: u64) {
        self.events_local += 1;
        if self.config.record_trace {
            self.trace_other.push(TraceEvent::Step { proc });
        }
        let response = {
            let lo = self.lo;
            let process = &mut self.processes[proc.index() - lo];
            if process.started_at.is_none() {
                // The real (global) event number is assigned by the leader at
                // the barrier from the marker; the local value is only a
                // "has started" flag here.
                process.started_at = Some(pos);
                self.markers.push(Marker {
                    pos,
                    proc,
                    kind: MarkerKind::Start,
                });
            }
            match std::mem::replace(&mut process.pending, PendingWork::NotStarted) {
                PendingWork::NotStarted => Response::Start,
                PendingWork::LocalResponse(r) | PendingWork::ResponseReady(r) => r,
                other => {
                    process.pending = other;
                    return;
                }
            }
        };
        let action = {
            let lo = self.lo;
            let process = &mut self.processes[proc.index() - lo];
            let protocol = process
                .protocol
                .as_mut()
                .expect("only participants take steps");
            protocol.step(response)
        };
        self.apply_action(proc, action, pos);
        self.sync_proc(proc);
    }

    fn apply_action(&mut self, proc: ProcId, action: Action, pos: u64) {
        let quorum = self.config.quorum();
        let n = self.config.n;
        let lo = self.lo;
        match action {
            Action::Propagate { entries } => {
                let seq = self.processes[proc.index() - lo].fresh_seq();
                self.processes[proc.index() - lo]
                    .replica
                    .apply_all(&entries);
                self.metrics.proc_mut(proc).communicate_calls += 1;
                let mut seen = fle_model::BitRow::new();
                seen.set(proc.index());
                self.processes[proc.index() - lo].call_msgs.clear();
                self.processes[proc.index() - lo].pending = PendingWork::AwaitingAcks {
                    seq,
                    acked: 1,
                    seen,
                };
                let shared: Arc<[(fle_model::Key, fle_model::Value)]> = entries.into();
                let mut sub = 0u32;
                for target in 0..n {
                    if target == proc.index() {
                        continue;
                    }
                    self.send(
                        RouteKey::broadcast(proc, sub),
                        proc,
                        ProcId(target),
                        WireMessage::Propagate {
                            seq,
                            entries: shared.clone(),
                        },
                    );
                    sub += 1;
                }
                self.maybe_complete_quorum(proc, quorum);
            }
            Action::Collect { instance } => {
                let seq = self.processes[proc.index() - lo].fresh_seq();
                let own_view = self.processes[proc.index() - lo].replica.view_arc(instance);
                self.metrics.proc_mut(proc).communicate_calls += 1;
                let mut seen = fle_model::BitRow::new();
                seen.set(proc.index());
                self.processes[proc.index() - lo].call_msgs.clear();
                self.processes[proc.index() - lo].pending = PendingWork::AwaitingViews {
                    seq,
                    views: vec![(proc, own_view)],
                    seen,
                };
                self.processes[proc.index() - lo]
                    .collect_cache
                    .prepare(instance, n);
                let mut sub = 0u32;
                for target in 0..n {
                    if target == proc.index() {
                        continue;
                    }
                    let known = self.processes[proc.index() - lo]
                        .collect_cache
                        .known(ProcId(target));
                    self.send(
                        RouteKey::broadcast(proc, sub),
                        proc,
                        ProcId(target),
                        WireMessage::Collect {
                            seq,
                            instance,
                            known,
                        },
                    );
                    sub += 1;
                }
                self.maybe_complete_quorum(proc, quorum);
            }
            Action::Flip { prob_one } => {
                let flips = self.processes[proc.index() - lo].flips;
                let word = coin_word(self.config.seed, proc, flips);
                self.processes[proc.index() - lo].flips += 1;
                let value = coin_bool(word, prob_one);
                self.metrics.proc_mut(proc).coin_flips += 1;
                if self.config.record_trace {
                    self.trace_other.push(TraceEvent::Coin { proc, value });
                }
                self.processes[proc.index() - lo].pending =
                    PendingWork::LocalResponse(Response::Coin(value));
            }
            Action::Choose { choices } => {
                self.metrics.proc_mut(proc).coin_flips += 1;
                let chosen = if choices.is_empty() {
                    0
                } else {
                    let flips = self.processes[proc.index() - lo].flips;
                    let word = coin_word(self.config.seed, proc, flips);
                    self.processes[proc.index() - lo].flips += 1;
                    choices[(word % choices.len() as u64) as usize]
                };
                self.processes[proc.index() - lo].pending =
                    PendingWork::LocalResponse(Response::Chosen(chosen));
            }
            Action::Return(outcome) => {
                self.processes[proc.index() - lo].pending = PendingWork::Finished(outcome);
                self.live -= 1;
                self.markers.push(Marker {
                    pos,
                    proc,
                    kind: MarkerKind::Ret(outcome),
                });
                if self.config.record_trace {
                    self.trace_other.push(TraceEvent::Return { proc, outcome });
                }
            }
        }
    }

    fn maybe_complete_quorum(&mut self, proc: ProcId, quorum: usize) {
        let process = &mut self.processes[proc.index() - self.lo];
        let completed_seq = match &mut process.pending {
            PendingWork::AwaitingAcks { seq, acked, .. } if *acked >= quorum => {
                let seq = *seq;
                process.pending = PendingWork::ResponseReady(Response::AckQuorum);
                Some(seq)
            }
            PendingWork::AwaitingViews { seq, views, .. } if views.len() >= quorum => {
                let seq = *seq;
                let collected = std::mem::take(views);
                process.pending = PendingWork::ResponseReady(Response::Views(
                    CollectedViews::from_shared(collected),
                ));
                Some(seq)
            }
            _ => None,
        };
        if let Some(seq) = completed_seq {
            self.purge_completed_call(proc, seq);
        }
    }

    /// Drop the undelivered leftovers of a completed communicate call.
    ///
    /// Under super-round semantics every request of a call is delivered one
    /// round after it was sent, and every reply one round after that — so by
    /// the time a quorum completes, the only leftovers are replies sitting in
    /// the *caller's own* partition. (The one exception: requests addressed
    /// to processors that crashed before delivery stay in their partitions'
    /// slabs forever — never enabled, never reported, just parked — where
    /// the sequential engine reclaims them. Behaviorally invisible.)
    fn purge_completed_call(&mut self, caller: ProcId, seq: u64) {
        let candidates = std::mem::take(&mut self.processes[caller.index() - self.lo].call_msgs);
        for slot in candidates {
            let Some(message) = self.slab.get(slot) else {
                continue;
            };
            let belongs_to_call = message.payload.seq() == seq
                && ((message.from == caller && message.is_request())
                    || (message.to == caller && message.is_reply()));
            if belongs_to_call {
                self.slab.remove(slot);
                self.enabled_msgs.remove_slot(slot);
            }
        }
    }

    fn purge_if_completed(&mut self, caller: ProcId) {
        if matches!(
            self.processes[caller.index() - self.lo].pending,
            PendingWork::ResponseReady(_)
        ) {
            let seq = self.processes[caller.index() - self.lo].next_seq;
            self.purge_completed_call(caller, seq);
        }
    }

    fn send(&mut self, key: RouteKey, from: ProcId, to: ProcId, payload: WireMessage) {
        self.metrics.proc_mut(from).messages_sent += 1;
        // The canonical phase order (all deliveries, then step-runs in
        // ascending processor order) produces keys in strictly ascending
        // order by construction; an adversarial round interleaves freely and
        // sorts its outbox at the end of the round instead.
        debug_assert!(
            self.adversary.is_some() || self.outbox.last().is_none_or(|last| last.key < key),
            "outbox keys must be generated in strictly ascending order"
        );
        self.outbox.push(Outbound {
            key,
            from,
            to,
            payload,
        });
    }

    fn execute_delivery(&mut self, slot: u32, adversarial: bool) {
        self.events_local += 1;
        let Some(message) = self.slab.remove(slot) else {
            return;
        };
        self.enabled_msgs.remove_slot(slot);
        if self.config.record_trace {
            let event = TraceEvent::Deliver {
                id: message.id,
                from: message.from,
                to: message.to,
            };
            if adversarial {
                self.trace_other.push(event);
            } else {
                self.trace_deliver.push(event);
            }
        }
        let to = message.to;
        self.metrics.proc_mut(to).messages_received += 1;
        if self.process(to).crashed {
            return;
        }
        let quorum = self.config.quorum();
        match message.payload {
            WireMessage::Propagate { seq, entries } => {
                self.process_mut(to).replica.apply_all(&entries);
                // Super-round semantics guarantee the caller still has this
                // call outstanding when the request arrives (requests are
                // delivered exactly one round after they were sent, and the
                // quorum needs the replies of the round after that), so the
                // reply is unconditional — no cross-partition peek needed.
                debug_assert!(
                    !self.owns(message.from) || self.call_outstanding(message.from, seq),
                    "super-round invariant: requests arrive while their call is outstanding"
                );
                self.send(
                    RouteKey::reply(message.id.0),
                    to,
                    message.from,
                    WireMessage::Ack { seq },
                );
            }
            WireMessage::Collect {
                seq,
                instance,
                known,
            } => {
                debug_assert!(
                    !self.owns(message.from) || self.call_outstanding(message.from, seq),
                    "super-round invariant: requests arrive while their call is outstanding"
                );
                let view = self.process_mut(to).replica.transfer_since(instance, known);
                self.send(
                    RouteKey::reply(message.id.0),
                    to,
                    message.from,
                    WireMessage::CollectReply { seq, view },
                );
            }
            WireMessage::Ack { seq } => {
                self.process_mut(to).record_ack(message.from, seq, quorum);
                self.purge_if_completed(to);
            }
            WireMessage::CollectReply { seq, view } => {
                self.process_mut(to)
                    .record_view(message.from, seq, view, false, quorum);
                self.purge_if_completed(to);
            }
        }
        self.sync_proc(to);
    }

    fn call_outstanding(&self, caller: ProcId, seq: u64) -> bool {
        match &self.process(caller).pending {
            PendingWork::AwaitingAcks { seq: s, .. }
            | PendingWork::AwaitingViews { seq: s, .. } => *s == seq,
            _ => false,
        }
    }

    fn live_participants(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.processes
            .iter()
            .filter(|p| p.is_live_participant())
            .map(|p| p.id)
    }
}

impl Drop for PartitionEngine {
    fn drop(&mut self) {
        let mut arena = SimArena {
            slab: std::mem::take(&mut self.slab),
            enabled_msgs: std::mem::take(&mut self.enabled_msgs),
            enabled_steps: std::mem::take(&mut self.enabled_steps),
            processes: std::mem::take(&mut self.processes),
            crashes: std::mem::take(&mut self.crashes),
            scratch_slots: std::mem::take(&mut self.scratch_slots),
            observations: Vec::new(),
            reuses: self.arena_reuses,
        };
        arena.slab.clear();
        arena.enabled_msgs.clear();
        arena.crashes.clear();
        arena.scratch_slots.clear();
        for process in &mut arena.processes {
            process.recycle(process.id);
        }
        SimArena::pool(arena);
    }
}

// ---------------------------------------------------------------------------
// The parallel simulator (leader + barrier)
// ---------------------------------------------------------------------------

/// What drives a run: a pre-declared crash plan (canonical mode) or one
/// adversary per partition (adversarial mode).
enum RoundMode {
    Canonical { plan: RoundCrashPlan, cursor: usize },
    Adversarial,
}

/// The partitioned parallel simulator. See the module documentation for the
/// super-round execution model.
///
/// Construction mirrors the sequential [`crate::Simulator`]: build a
/// [`SimConfig`] (with [`SimConfig::with_partitions`]), register
/// participants, then either [`ParallelSimulator::run_canonical`] /
/// [`ParallelSimulator::run_adversarial`] to completion or drive
/// [`ParallelSimulator::step_round`] round by round (online oracles).
pub struct ParallelSimulator {
    config: SimConfig,
    map: PartitionMap,
    engines: Vec<PartitionEngine>,
    workers: usize,
    mode: RoundMode,
    round: u64,
    next_message_id: u64,
    events_executed: u64,
    /// Canonical-mode crash log, in application order.
    crashes: Vec<ProcId>,
    report: ExecutionReport,
}

impl ParallelSimulator {
    /// Create a parallel simulator over `config.partitions` partitions
    /// (a value of 0 means 1). Defaults to canonical mode with no crashes.
    ///
    /// # Panics
    /// Panics if the config enables `naive_event_set`, `naive_payloads` or
    /// `validate_event_set` — those reference modes exist only in the
    /// sequential engine.
    pub fn new(mut config: SimConfig) -> Self {
        assert!(
            !config.naive_event_set && !config.naive_payloads && !config.validate_event_set,
            "the partitioned engine does not support the naive/validation reference modes"
        );
        config.partitions = config.partitions.clamp(1, config.n);
        let map = PartitionMap::new(config.n, config.partitions);
        let engines = (0..map.partitions())
            .map(|part| PartitionEngine::new(part, &map, &config))
            .collect();
        let trace = if config.record_trace {
            Trace::recording()
        } else {
            Trace::disabled()
        };
        ParallelSimulator {
            map,
            engines,
            workers: 0,
            mode: RoundMode::Canonical {
                plan: RoundCrashPlan::none(),
                cursor: 0,
            },
            round: 0,
            next_message_id: 0,
            events_executed: 0,
            crashes: Vec::new(),
            report: ExecutionReport {
                trace,
                ..ExecutionReport::default()
            },
            config,
        }
    }

    /// Cap the number of worker threads (0 = one per partition, up to
    /// [`std::thread::available_parallelism`]). Purely a resource knob:
    /// partitions do not interact within a round, so results are byte-for-
    /// byte identical for every worker count — the determinism regression
    /// tests run the same configuration at several worker counts and require
    /// it.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The configuration this simulator was built with (with `partitions`
    /// clamped to `1..=n`).
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.map.partitions()
    }

    /// Register `proc` as a participant running `protocol` (routed to the
    /// partition that owns `proc`).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParticipant`] if the processor id is out of
    /// range or already participates.
    pub fn try_add_participant(
        &mut self,
        proc: ProcId,
        protocol: Box<dyn Protocol>,
    ) -> Result<(), SimError> {
        if proc.index() >= self.config.n {
            return Err(SimError::InvalidParticipant {
                proc,
                reason: format!("system only has {} processors", self.config.n),
            });
        }
        let engine = &mut self.engines[self.map.partition_of(proc)];
        if engine.process(proc).participates() {
            return Err(SimError::InvalidParticipant {
                proc,
                reason: "already registered".to_string(),
            });
        }
        engine.process_mut(proc).participate(protocol);
        engine.live += 1;
        engine.sync_proc(proc);
        Ok(())
    }

    /// Register `proc` as a participant running `protocol`.
    ///
    /// # Panics
    /// Panics on the error conditions of
    /// [`ParallelSimulator::try_add_participant`].
    pub fn add_participant(&mut self, proc: ProcId, protocol: Box<dyn Protocol>) {
        self.try_add_participant(proc, protocol)
            .expect("invalid participant registration");
    }

    /// Switch to canonical mode with the given crash plan.
    ///
    /// # Errors
    /// The plan's [`RoundCrashPlan::validate`] errors.
    pub fn set_crash_plan(&mut self, plan: &RoundCrashPlan) -> Result<(), SimError> {
        plan.validate(&self.config)?;
        self.mode = RoundMode::Canonical {
            plan: plan.clone(),
            cursor: 0,
        };
        Ok(())
    }

    /// Switch to adversarial mode: `factory(partition, seed)` builds one
    /// adversary per partition, where `seed` is
    /// [`partition_adversary_seed`]`(config.seed, partition)`. Each partition
    /// gets `budget/p` of the crash budget plus one of the first
    /// `budget % p` remainder units, and may only crash its own processors.
    pub fn set_adversaries(&mut self, mut factory: impl FnMut(usize, u64) -> Box<dyn Adversary>) {
        let parts = self.engines.len();
        let budget = self.config.crash_budget;
        let n = self.config.n;
        for (part, engine) in self.engines.iter_mut().enumerate() {
            engine.adversary = Some(factory(
                part,
                partition_adversary_seed(self.config.seed, part),
            ));
            engine.crash_budget = budget / parts + usize::from(part < budget % parts);
            if engine.observation.is_none() {
                let mut observation = SystemObservation {
                    n,
                    events_executed: 0,
                    crash_budget_left: engine.crash_budget,
                    processes: (0..n)
                        .map(|i| ProcessObservation {
                            proc: ProcId(i),
                            phase: ProcessPhase::Idle,
                            local_state: None,
                        })
                        .collect(),
                };
                // Fill in the local processors' real phases.
                for offset in 0..(engine.hi - engine.lo) {
                    let proc = engine.processes[offset].id;
                    let _ = proc;
                    observation.processes[engine.lo + offset].proc = ProcId(engine.lo + offset);
                }
                engine.observation = Some(observation);
                for index in engine.lo..engine.hi {
                    engine.sync_proc(ProcId(index));
                }
            }
        }
        self.mode = RoundMode::Adversarial;
    }

    /// Whether every live participant has returned.
    pub fn is_complete(&self) -> bool {
        self.live() == 0
    }

    /// Number of events executed so far (sum over all partitions).
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// The current super-round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    fn live(&self) -> usize {
        self.engines.iter().map(|e| e.live).sum()
    }

    fn budget_exhausted(&self) -> SimError {
        SimError::EventBudgetExhausted {
            budget: self.config.max_events,
            unfinished: self
                .engines
                .iter()
                .flat_map(|e| e.live_participants())
                .collect(),
        }
    }

    /// Apply one canonical-mode crash at the barrier (leader context: all
    /// enabled-message indexes are empty between rounds, so there is nothing
    /// to retire — undelivered messages to the victim are simply never
    /// enabled at intake).
    fn crash_at_barrier(&mut self, victim: ProcId) {
        let engine = &mut self.engines[self.map.partition_of(victim)];
        debug_assert!(!engine.process(victim).crashed, "plan victims are unique");
        if engine.process(victim).is_live_participant() {
            engine.live -= 1;
        }
        engine.process_mut(victim).crashed = true;
        engine.sync_proc(victim);
        self.crashes.push(victim);
        self.report.trace.push(TraceEvent::Crash { proc: victim });
    }

    /// Run the per-partition round bodies, inline or on scoped worker
    /// threads. The partition-to-worker assignment cannot affect results —
    /// partitions share no state within a round — which is what the
    /// worker-count determinism tests pin down.
    fn dispatch_round(&mut self) {
        let adversarial = matches!(self.mode, RoundMode::Adversarial);
        let parts = self.engines.len();
        let workers = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|w| w.get())
                .unwrap_or(1)
                .min(parts)
        } else {
            self.workers.min(parts)
        };
        if workers <= 1 || parts == 1 {
            for engine in &mut self.engines {
                if adversarial {
                    engine.run_round_adversarial();
                } else {
                    engine.run_round_canonical();
                }
            }
            return;
        }
        let chunk = parts.div_ceil(workers);
        std::thread::scope(|scope| {
            for engines in self.engines.chunks_mut(chunk) {
                scope.spawn(move || {
                    for engine in engines {
                        if adversarial {
                            engine.run_round_adversarial();
                        } else {
                            engine.run_round_canonical();
                        }
                    }
                });
            }
        });
    }

    /// Execute one super-round. Returns `Ok(false)` — without running
    /// anything — once every live participant has returned.
    ///
    /// # Errors
    /// * [`SimError::EventBudgetExhausted`] if the event budget ran out or
    ///   the system can no longer make progress (quorums that can never
    ///   form). Unlike the sequential engine, the budget is enforced at
    ///   round granularity, so a run may overshoot `max_events` by up to one
    ///   round before erroring.
    /// * Adversarial mode: any error a partition adversary provokes
    ///   ([`SimError::InvalidDecision`], [`SimError::CrashBudgetExceeded`]),
    ///   reported for the lowest-numbered failing partition.
    pub fn step_round(&mut self) -> Result<bool, SimError> {
        if self.live() == 0 {
            return Ok(false);
        }
        if self.events_executed >= self.config.max_events {
            return Err(self.budget_exhausted());
        }

        // Barrier, part 1: due crashes (canonical mode), applied one at a
        // time with the sequential engine's "did the last live participant
        // just die" check between them.
        let mut crashes_this_round = 0u64;
        if let RoundMode::Canonical { plan, cursor } = &mut self.mode {
            let mut due = Vec::new();
            while *cursor < plan.entries().len() && plan.entries()[*cursor].0 <= self.round {
                due.push(plan.entries()[*cursor].1);
                *cursor += 1;
            }
            for victim in due {
                if self.live() == 0 {
                    return Ok(false);
                }
                self.crash_at_barrier(victim);
                crashes_this_round += 1;
            }
            if self.live() == 0 {
                return Ok(false);
            }
        }

        // The round body: all partitions in parallel.
        self.dispatch_round();
        for engine in &self.engines {
            if let Some(error) = &engine.round_error {
                return Err(error.clone());
            }
        }

        // Barrier, part 2: global event numbering and interval/outcome
        // bookkeeping from the markers — O(partitions + markers), not
        // O(events), so the serial fraction stays flat as n grows.
        let adversarial = matches!(self.mode, RoundMode::Adversarial);
        let base = self.events_executed;
        let d_total: u64 = self.engines.iter().map(|e| e.round_delivered).sum();
        let s_total: u64 = self.engines.iter().map(|e| e.round_steps).sum();
        let mut prefix = 0u64;
        for engine in &mut self.engines {
            let marker_base = if adversarial {
                base + prefix
            } else {
                base + d_total + prefix
            };
            for marker in engine.markers.drain(..) {
                let global = marker_base + marker.pos;
                match marker.kind {
                    MarkerKind::Start => {
                        self.report.intervals.insert(marker.proc, (global, None));
                    }
                    MarkerKind::Ret(outcome) => {
                        self.report.outcomes.insert(marker.proc, outcome);
                        self.report
                            .intervals
                            .entry(marker.proc)
                            .or_insert((global, None))
                            .1 = Some(global);
                    }
                }
            }
            prefix += if adversarial {
                engine.round_delivered + engine.round_steps
            } else {
                engine.round_steps
            };
        }
        self.events_executed += d_total + s_total;

        // Trace merge (only when recording): canonical rounds interleave the
        // delivery sections by message id and concatenate the step sections
        // in partition order (= ascending processor order, since partitions
        // are contiguous); adversarial rounds concatenate each partition's
        // local event sequence.
        if self.config.record_trace {
            if !adversarial {
                let mut cursors = vec![0usize; self.engines.len()];
                loop {
                    let mut best: Option<(u64, usize)> = None;
                    for (part, engine) in self.engines.iter().enumerate() {
                        if let Some(TraceEvent::Deliver { id, .. }) =
                            engine.trace_deliver.get(cursors[part])
                        {
                            if best.is_none_or(|(bid, _)| id.0 < bid) {
                                best = Some((id.0, part));
                            }
                        }
                    }
                    let Some((_, part)) = best else { break };
                    let event = self.engines[part].trace_deliver[cursors[part]];
                    self.report.trace.push(event);
                    cursors[part] += 1;
                }
            }
            for engine in &mut self.engines {
                for event in engine.trace_deliver.drain(..) {
                    if adversarial {
                        self.report.trace.push(event);
                    }
                }
                for event in engine.trace_other.drain(..) {
                    self.report.trace.push(event);
                }
            }
        } else {
            for engine in &mut self.engines {
                engine.trace_deliver.clear();
                engine.trace_other.clear();
            }
        }

        // Barrier, part 3: merge the outboxes in RouteKey order, assign
        // global message ids, and route each message to its recipient's
        // partition. Each outbox is already key-sorted (keys are generated
        // in ascending trigger order), so this is a p-way merge.
        let mut outboxes: Vec<Vec<Outbound>> = self
            .engines
            .iter_mut()
            .map(|e| std::mem::take(&mut e.outbox))
            .collect();
        let mut inboxes: Vec<Vec<InFlightMessage>> = self
            .engines
            .iter_mut()
            .map(|e| std::mem::take(&mut e.inbox))
            .collect();
        let mut cursors = vec![0usize; outboxes.len()];
        let mut routed = 0u64;
        loop {
            let mut best: Option<(RouteKey, usize)> = None;
            for (part, outbox) in outboxes.iter().enumerate() {
                if let Some(out) = outbox.get(cursors[part]) {
                    if best.is_none_or(|(key, _)| out.key < key) {
                        best = Some((out.key, part));
                    }
                }
            }
            let Some((_, part)) = best else { break };
            let out = std::mem::replace(&mut outboxes[part][cursors[part]], Outbound::tombstone());
            cursors[part] += 1;
            let id = MessageId(self.next_message_id);
            self.next_message_id += 1;
            let dest = self.map.partition_of(out.to);
            inboxes[dest].push(InFlightMessage {
                id,
                from: out.from,
                to: out.to,
                payload: out.payload,
                // Messages live exactly one barrier; the send round is
                // recorded for diagnostics only (the sequential engine
                // stamps an event count here — neither value reaches any
                // report).
                sent_at: self.round,
            });
            routed += 1;
        }
        for (engine, mut outbox) in self.engines.iter_mut().zip(outboxes) {
            outbox.clear();
            engine.outbox = outbox;
        }
        for (engine, inbox) in self.engines.iter_mut().zip(inboxes) {
            engine.inbox = inbox;
        }

        if d_total + s_total == 0 && crashes_this_round == 0 && routed == 0 && self.live() > 0 {
            // Every live participant is blocked on a quorum that can never
            // form. The sequential engine reports this as budget exhaustion
            // the moment its enabled-event set empties; mirror that.
            return Err(self.budget_exhausted());
        }

        self.round += 1;
        Ok(true)
    }

    /// Run to completion in canonical mode under `plan`.
    ///
    /// # Errors
    /// [`RoundCrashPlan::validate`] errors and [`ParallelSimulator::step_round`]
    /// errors.
    pub fn run_canonical(&mut self, plan: &RoundCrashPlan) -> Result<ExecutionReport, SimError> {
        self.set_crash_plan(plan)?;
        while self.step_round()? {}
        Ok(self.finish())
    }

    /// Run to completion in adversarial mode; see
    /// [`ParallelSimulator::set_adversaries`] for the factory contract.
    ///
    /// # Errors
    /// [`ParallelSimulator::step_round`] errors.
    pub fn run_adversarial(
        &mut self,
        factory: impl FnMut(usize, u64) -> Box<dyn Adversary>,
    ) -> Result<ExecutionReport, SimError> {
        self.set_adversaries(factory);
        while self.step_round()? {}
        Ok(self.finish())
    }

    /// Merge and take the report (counterpart of the sequential engine's
    /// [`crate::Simulator::finish`]). Metrics are absorbed from every
    /// partition; crashes are reported in application order (canonical) or
    /// partition order (adversarial).
    pub fn finish(&mut self) -> ExecutionReport {
        let mut report = std::mem::take(&mut self.report);
        report.events_executed = self.events_executed;
        for engine in &self.engines {
            report.metrics.absorb(&engine.metrics);
        }
        report.crashed = if matches!(self.mode, RoundMode::Adversarial) {
            self.engines
                .iter()
                .flat_map(|e| e.crashes.clone())
                .collect()
        } else {
            std::mem::take(&mut self.crashes)
        };
        report
    }

    /// A merged snapshot of the in-progress report (outcomes, intervals,
    /// metrics, crashes, trace so far). O(n) — built for online oracles
    /// between rounds, not for hot loops.
    pub fn merged_report_so_far(&self) -> ExecutionReport {
        let mut report = self.report.clone();
        report.events_executed = self.events_executed;
        for engine in &self.engines {
            report.metrics.absorb(&engine.metrics);
        }
        report.crashed = if matches!(self.mode, RoundMode::Adversarial) {
            self.engines
                .iter()
                .flat_map(|e| e.crashes.clone())
                .collect()
        } else {
            self.crashes.clone()
        };
        report
    }

    /// A merged full-system observation as of the last barrier (O(n); for
    /// online oracles between rounds).
    pub fn merged_observation(&self) -> SystemObservation {
        let crashes: usize = if matches!(self.mode, RoundMode::Adversarial) {
            self.engines.iter().map(|e| e.crashes.len()).sum()
        } else {
            self.crashes.len()
        };
        let mut processes = Vec::with_capacity(self.config.n);
        for engine in &self.engines {
            for process in &engine.processes {
                let phase = if process.crashed {
                    ProcessPhase::Crashed
                } else if !process.participates() {
                    ProcessPhase::Idle
                } else {
                    match &process.pending {
                        PendingWork::NotStarted => ProcessPhase::NotStarted,
                        PendingWork::LocalResponse(_) | PendingWork::ResponseReady(_) => {
                            ProcessPhase::StepReady
                        }
                        PendingWork::AwaitingAcks { .. } | PendingWork::AwaitingViews { .. } => {
                            ProcessPhase::AwaitingQuorum
                        }
                        PendingWork::Finished(_) => ProcessPhase::Finished,
                    }
                };
                processes.push(ProcessObservation {
                    proc: process.id,
                    phase,
                    local_state: process
                        .protocol
                        .as_ref()
                        .map(|proto| proto.adversary_view()),
                });
            }
        }
        SystemObservation {
            n: self.config.n,
            events_executed: self.events_executed,
            crash_budget_left: self.config.crash_budget.saturating_sub(crashes),
            processes,
        }
    }

    /// Smallest arena-recycle count over this simulator's partitions
    /// (diagnostic for the arena-pool tests: > 0 means every partition got a
    /// recycled buffer set instead of fresh allocations).
    pub fn min_arena_reuses(&self) -> u64 {
        self.engines
            .iter()
            .map(|e| e.arena_reuses)
            .min()
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// The sequential reference adversary
// ---------------------------------------------------------------------------

/// An [`Adversary`] that makes the sequential [`crate::Simulator`] execute
/// the exact super-round schedule of canonical-mode [`ParallelSimulator`]:
/// per round, due crashes first, then every *ripe* delivery in ascending
/// message-id order, then step-runs in ascending processor order. A message
/// is ripe if it was sent in an earlier round (tracked with a message-id
/// watermark: ids below the watermark are ripe).
///
/// Pair it with a `SimConfig` that has `partitions >= 1` (so the sequential
/// engine draws coins from the same per-processor streams) and the two
/// engines produce byte-identical reports — the differential tests'
/// foundation.
#[derive(Debug, Clone)]
pub struct SuperRoundAdversary {
    watermark: u64,
    round: u64,
    plan: Vec<(u64, ProcId)>,
    cursor: usize,
}

impl SuperRoundAdversary {
    /// Drive the schedule of `plan` (use [`RoundCrashPlan::none`] for a
    /// crash-free run).
    pub fn new(plan: &RoundCrashPlan) -> Self {
        SuperRoundAdversary {
            watermark: 0,
            round: 0,
            plan: plan.entries().to_vec(),
            cursor: 0,
        }
    }

    /// First enabled-event index that is a delivery (== the number of
    /// enabled steps), found by binary search over the stable order.
    fn step_boundary(enabled: &EnabledEvents<'_>) -> usize {
        let mut lo = 0;
        let mut hi = enabled.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match enabled.get(mid) {
                Some(EnabledEvent::Step(_)) => lo = mid + 1,
                _ => hi = mid,
            }
        }
        lo
    }
}

impl Adversary for SuperRoundAdversary {
    fn decide(
        &mut self,
        _observation: &SystemObservation,
        enabled: &EnabledEvents<'_>,
    ) -> Decision {
        loop {
            if let Some(&(round, victim)) = self.plan.get(self.cursor) {
                if round <= self.round {
                    self.cursor += 1;
                    return Decision::Crash(victim);
                }
            }
            let boundary = Self::step_boundary(enabled);
            if let Some(EnabledEvent::Deliver { id, .. }) = enabled.get(boundary) {
                if id.0 < self.watermark {
                    // Ripe deliveries drain first, ascending id.
                    return Decision::Schedule(boundary);
                }
            }
            if boundary > 0 {
                // No ripe deliveries left: step-runs, ascending processor.
                return Decision::Schedule(0);
            }
            // Only unripe deliveries remain: the round is over. Everything
            // currently in flight becomes ripe and the next round begins.
            let last = enabled
                .get(enabled.len() - 1)
                .expect("the engine never offers an empty event set");
            let EnabledEvent::Deliver { id, .. } = last else {
                unreachable!("boundary == 0 means every enabled event is a delivery");
            };
            self.watermark = id.0 + 1;
            self.round += 1;
        }
    }

    fn name(&self) -> &'static str {
        "super-round"
    }
}
