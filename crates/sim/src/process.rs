//! Per-processor simulation state.

use crate::replica::ReplicaStore;
use fle_model::wire::CallSeq;
use fle_model::{BitRow, CollectCache, Outcome, ProcId, Protocol, Response, View, ViewTransfer};
use std::sync::Arc;

/// What a participating processor is currently waiting for.
#[derive(Debug)]
pub enum PendingWork {
    /// The protocol has not been activated yet; the next step feeds
    /// [`Response::Start`].
    NotStarted,
    /// A local response (coin flip / random choice) has been computed and
    /// waits for the adversary to schedule the processor's next step.
    LocalResponse(Response),
    /// A `propagate` call is outstanding.
    AwaitingAcks {
        /// Sequence number of the call.
        seq: CallSeq,
        /// Number of acknowledgements so far (includes the caller itself).
        acked: usize,
        /// Which processors acknowledged (O(1) duplicate rejection).
        seen: BitRow,
    },
    /// A `collect` call is outstanding.
    AwaitingViews {
        /// Sequence number of the call.
        seq: CallSeq,
        /// Views received so far (includes the caller's own view), shared
        /// with the responders' copy-on-write snapshots.
        views: Vec<(ProcId, Arc<View>)>,
        /// Which responders are already counted (O(1) duplicate rejection).
        seen: BitRow,
    },
    /// The quorum has been reached and the response is ready to be consumed
    /// at the processor's next step.
    ResponseReady(Response),
    /// The protocol returned.
    Finished(Outcome),
}

/// A processor in the simulation.
///
/// Non-participating processors have `protocol = None`; they never take
/// protocol steps but still serve their [`ReplicaStore`] to others.
pub struct SimProcess {
    /// The processor's identifier.
    pub id: ProcId,
    /// The protocol this processor runs, if it participates.
    pub protocol: Option<Box<dyn Protocol>>,
    /// What the processor is waiting for.
    pub pending: PendingWork,
    /// The node's replica of all registers.
    pub replica: ReplicaStore,
    /// Whether the adversary crashed this processor.
    pub crashed: bool,
    /// Event index of the first protocol step (invocation time), if any.
    pub started_at: Option<u64>,
    /// Event index at which the protocol returned, if it has.
    pub finished_at: Option<u64>,
    /// Sequence number generator for communicate calls.
    pub next_seq: CallSeq,
    /// Slab slots of the messages belonging to this processor's *current*
    /// communicate call: its outgoing requests plus the replies addressed
    /// back to it. Lets the engine purge a completed call's leftover traffic
    /// in O(call size) instead of scanning every in-flight message.
    pub call_msgs: Vec<u32>,
    /// Requester-side delta-collect state: per responder, the most recent
    /// view received for the instance currently being collected.
    pub collect_cache: CollectCache,
    /// Number of coin words this processor has drawn from its per-processor
    /// stream (the `k` of `coin_word(seed, proc, k)`); unused (stays 0) in
    /// legacy global-stream mode. See [`crate::partition`].
    pub flips: u64,
}

impl std::fmt::Debug for SimProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimProcess")
            .field("id", &self.id)
            .field("participates", &self.protocol.is_some())
            .field("pending", &self.pending)
            .field("crashed", &self.crashed)
            .finish()
    }
}

impl SimProcess {
    /// A fresh processor with no protocol (pure replica).
    pub fn replica_only(id: ProcId) -> Self {
        SimProcess {
            id,
            protocol: None,
            pending: PendingWork::Finished(Outcome::Proceed),
            replica: ReplicaStore::new(),
            crashed: false,
            started_at: None,
            finished_at: None,
            next_seq: 0,
            call_msgs: Vec::new(),
            collect_cache: CollectCache::new(),
            flips: 0,
        }
    }

    /// Reset this node to the pristine `replica_only` state while keeping its
    /// buffers (call-message list, cache entries) allocated, for trial reuse
    /// through [`crate::SimArena`].
    pub fn recycle(&mut self, id: ProcId) {
        self.id = id;
        self.protocol = None;
        self.pending = PendingWork::Finished(Outcome::Proceed);
        self.replica.clear();
        self.crashed = false;
        self.started_at = None;
        self.finished_at = None;
        self.next_seq = 0;
        self.call_msgs.clear();
        self.collect_cache.clear();
        self.flips = 0;
    }

    /// Attach a protocol, turning the node into a participant.
    pub fn participate(&mut self, protocol: Box<dyn Protocol>) {
        self.protocol = Some(protocol);
        self.pending = PendingWork::NotStarted;
    }

    /// Whether this node runs a protocol.
    pub fn participates(&self) -> bool {
        self.protocol.is_some()
    }

    /// The final outcome, if the protocol has returned.
    pub fn outcome(&self) -> Option<Outcome> {
        match &self.pending {
            PendingWork::Finished(outcome) if self.protocol.is_some() => Some(*outcome),
            _ => None,
        }
    }

    /// Whether this participant still has work to do (not crashed, not done).
    pub fn is_live_participant(&self) -> bool {
        self.participates() && !self.crashed && self.outcome().is_none()
    }

    /// Whether the adversary can usefully schedule a step for this processor
    /// right now.
    pub fn step_enabled(&self) -> bool {
        if self.crashed || !self.participates() {
            return false;
        }
        matches!(
            self.pending,
            PendingWork::NotStarted | PendingWork::LocalResponse(_) | PendingWork::ResponseReady(_)
        )
    }

    /// Allocate a fresh communicate-call sequence number.
    pub fn fresh_seq(&mut self) -> CallSeq {
        self.next_seq += 1;
        self.next_seq
    }

    /// Record an acknowledgement for the outstanding propagate call, and
    /// promote the pending state to [`PendingWork::ResponseReady`] once a
    /// quorum has been reached.
    pub fn record_ack(&mut self, from: ProcId, seq: CallSeq, quorum: usize) {
        if let PendingWork::AwaitingAcks {
            seq: want,
            acked,
            seen,
        } = &mut self.pending
        {
            if *want == seq && seen.set(from.index()) {
                *acked += 1;
                if *acked >= quorum {
                    self.pending = PendingWork::ResponseReady(Response::AckQuorum);
                }
            }
        }
    }

    /// Record a collect reply for the outstanding collect call, promoting to
    /// [`PendingWork::ResponseReady`] once a quorum has been reached.
    ///
    /// `transfer` is resolved against the delta cache only when the reply is
    /// actually recorded (right sequence number, responder not yet counted),
    /// so stale or duplicate traffic never perturbs the cache. With
    /// `naive_payloads` the transfer is taken as the full view it must be
    /// (the clone path never produces deltas) and the cache stays untouched.
    pub fn record_view(
        &mut self,
        from: ProcId,
        seq: CallSeq,
        transfer: ViewTransfer,
        naive_payloads: bool,
        quorum: usize,
    ) {
        if let PendingWork::AwaitingViews {
            seq: want,
            views,
            seen,
        } = &mut self.pending
        {
            if *want == seq && seen.set(from.index()) {
                let view = if naive_payloads {
                    transfer.expect_full()
                } else {
                    self.collect_cache.resolve(from, transfer)
                };
                views.push((from, view));
                if views.len() >= quorum {
                    let collected = std::mem::take(views);
                    self.pending = PendingWork::ResponseReady(Response::Views(
                        fle_model::CollectedViews::from_shared(collected),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::{Action, LocalStateView};

    struct Nop;
    impl Protocol for Nop {
        fn step(&mut self, _response: Response) -> Action {
            Action::Return(Outcome::Lose)
        }
        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("nop", "nop")
        }
    }

    fn full(view: View) -> ViewTransfer {
        ViewTransfer::Full(Arc::new(view))
    }

    #[test]
    fn replica_only_nodes_never_step() {
        let p = SimProcess::replica_only(ProcId(2));
        assert!(!p.participates());
        assert!(!p.step_enabled());
        assert_eq!(p.outcome(), None);
    }

    #[test]
    fn participant_lifecycle() {
        let mut p = SimProcess::replica_only(ProcId(0));
        p.participate(Box::new(Nop));
        assert!(p.participates());
        assert!(p.step_enabled());
        assert!(p.is_live_participant());

        p.pending = PendingWork::Finished(Outcome::Win);
        assert_eq!(p.outcome(), Some(Outcome::Win));
        assert!(!p.is_live_participant());
    }

    #[test]
    fn ack_quorum_promotes_pending_state() {
        let mut p = SimProcess::replica_only(ProcId(0));
        p.participate(Box::new(Nop));
        let mut seen = BitRow::new();
        seen.set(0);
        p.pending = PendingWork::AwaitingAcks {
            seq: 1,
            acked: 1,
            seen,
        };
        p.record_ack(ProcId(1), 1, 3);
        assert!(!p.step_enabled(), "two of three acks is not a quorum");
        // A stale ack for another sequence number is ignored.
        p.record_ack(ProcId(2), 9, 3);
        assert!(!p.step_enabled());
        p.record_ack(ProcId(2), 1, 3);
        assert!(p.step_enabled(), "quorum reached, step becomes enabled");
    }

    #[test]
    fn duplicate_views_do_not_count_twice() {
        let mut p = SimProcess::replica_only(ProcId(0));
        p.participate(Box::new(Nop));
        let mut seen = BitRow::new();
        seen.set(0);
        p.pending = PendingWork::AwaitingViews {
            seq: 4,
            views: vec![(ProcId(0), Arc::new(View::new()))],
            seen,
        };
        p.record_view(ProcId(1), 4, full(View::new()), false, 3);
        p.record_view(ProcId(1), 4, full(View::new()), false, 3);
        assert!(
            !p.step_enabled(),
            "duplicate responder must not fill the quorum"
        );
        p.record_view(ProcId(2), 4, full(View::new()), false, 3);
        assert!(p.step_enabled());
    }

    #[test]
    fn fresh_seq_is_monotone() {
        let mut p = SimProcess::replica_only(ProcId(0));
        let a = p.fresh_seq();
        let b = p.fresh_seq();
        assert!(b > a);
    }

    #[test]
    fn recycle_restores_the_pristine_state() {
        let mut p = SimProcess::replica_only(ProcId(0));
        p.participate(Box::new(Nop));
        p.crashed = true;
        p.next_seq = 9;
        p.call_msgs.push(3);
        p.replica.apply(
            fle_model::Key::global(fle_model::InstanceId::Contended),
            &fle_model::Value::Flag(true),
        );
        p.recycle(ProcId(5));
        assert_eq!(p.id, ProcId(5));
        assert!(!p.participates() && !p.crashed);
        assert_eq!(p.next_seq, 0);
        assert!(p.call_msgs.is_empty());
        assert!(p.replica.is_empty());
    }
}
