//! Simulator errors.

use fle_model::ProcId;
use std::error::Error;
use std::fmt;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted before every live participant returned.
    ///
    /// With a correct algorithm and a fair adversary this indicates the
    /// budget is too small; with an unfair adversary it indicates the
    /// adversary starved some processor forever (which the model forbids).
    EventBudgetExhausted {
        /// The configured budget.
        budget: u64,
        /// Participants that had not returned when the budget ran out.
        unfinished: Vec<ProcId>,
    },
    /// The adversary asked to crash more processors than the failure budget
    /// `t ≤ ⌈n/2⌉ − 1` allows.
    CrashBudgetExceeded {
        /// The processor the adversary tried to crash.
        victim: ProcId,
        /// The failure budget.
        budget: usize,
    },
    /// The adversary returned a decision that does not refer to an enabled
    /// event.
    InvalidDecision {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// A participant was registered twice or referred to a processor outside
    /// `0..n`.
    InvalidParticipant {
        /// The offending processor id.
        proc: ProcId,
        /// Explanation of what was wrong.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventBudgetExhausted { budget, unfinished } => write!(
                f,
                "event budget of {budget} exhausted with {} unfinished participants",
                unfinished.len()
            ),
            SimError::CrashBudgetExceeded { victim, budget } => write!(
                f,
                "crashing {victim} would exceed the failure budget of {budget}"
            ),
            SimError::InvalidDecision { reason } => {
                write!(f, "adversary returned an invalid decision: {reason}")
            }
            SimError::InvalidParticipant { proc, reason } => {
                write!(f, "invalid participant {proc}: {reason}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_messages() {
        let e = SimError::CrashBudgetExceeded {
            victim: ProcId(3),
            budget: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("p3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_compatible() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(SimError::InvalidDecision {
            reason: "nope".to_string(),
        });
    }
}
