//! The per-node replica store backing the `communicate` primitive.
//!
//! The store now lives in [`fle_model::store`] so that both execution
//! backends (this simulator and the threaded runtime) share one dense,
//! instance-keyed implementation; this module re-exports it under the
//! historical path.

pub use fle_model::store::ReplicaStore;
