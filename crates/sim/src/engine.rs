//! The simulation engine: event loop, network, quorum engine and adversary
//! interface.
//!
//! # Per-event cost
//!
//! The scheduling hot path is incremental: the engine maintains the set of
//! enabled events (step-ready processors in an [`IndexedBitSet`], deliverable
//! messages in an [`OrderedMsgSet`] over a [`MessageSlab`]) as state changes,
//! so offering the adversary its choices costs O(1) per event plus O(log)
//! index maintenance — not a scan over all `n` processes and every in-flight
//! message as in the original implementation. Two reference modes exist for
//! testing and benchmarking:
//!
//! * [`SimConfig::with_naive_event_set`] rebuilds the enabled-event vector
//!   from scratch before every decision (the historical O(n + messages)
//!   behaviour). Executions are **byte-identical** to the incremental mode —
//!   the differential tests and the `BENCH_baseline` speedup measurement rely
//!   on this.
//! * [`SimConfig::with_event_set_validation`] asserts before every decision
//!   that the incremental indexes agree with a brute-force recomputation.
//!
//! Payload cost is O(1) per event as well: a propagate broadcast builds its
//! entry list once and refcount-shares it across all `n − 1` sends, collect
//! replies are copy-on-write snapshots or per-responder deltas (only the
//! entries the requester has not seen), and back-to-back trials recycle the
//! engine's buffers through a [`crate::SimArena`]. The historical
//! clone-per-message payload path survives behind
//! [`SimConfig::with_naive_payloads`] — it too is **byte-identical** in
//! schedules, reports and metrics, which the differential tests assert.

use crate::adversary::Adversary;
use crate::arena::SimArena;
use crate::error::SimError;
use crate::event_set::{IndexedBitSet, OrderedMsgSet};
use crate::message::{InFlightMessage, MessageId, MessageSlab};
use crate::observation::{
    Decision, EnabledEvent, EnabledEvents, ProcessObservation, ProcessPhase, SystemObservation,
};
use crate::process::{PendingWork, SimProcess};
use crate::report::ExecutionReport;
use crate::trace::{Trace, TraceEvent};
use fle_model::{Action, CollectedViews, Key, ProcId, Protocol, Response, Value, WireMessage};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of processors in the system.
    pub n: usize,
    /// Failure budget `t`. Defaults to `⌈n/2⌉ − 1`, the maximum the paper's
    /// algorithms tolerate.
    pub crash_budget: usize,
    /// Seed for every random choice made by the protocols.
    pub seed: u64,
    /// Upper bound on executed events, to turn accidental livelock into an
    /// error instead of a hang.
    pub max_events: u64,
    /// Whether to record the full execution trace.
    pub record_trace: bool,
    /// Rebuild the enabled-event list from scratch before every decision
    /// instead of serving it from the incremental indexes. Semantically
    /// identical (same schedules, same reports); kept as the performance
    /// baseline and as the reference half of the differential tests.
    pub naive_event_set: bool,
    /// Assert before every decision that the incremental enabled-event
    /// indexes exactly match a brute-force recomputation. For tests; costs
    /// O(n + messages) per event.
    pub validate_event_set: bool,
    /// Use the historical clone-per-message payload path: every propagate
    /// send carries its own copy of the entry list and every collect reply a
    /// freshly cloned full view, instead of refcount-shared broadcasts and
    /// copy-on-write/delta view transfers. Semantically identical (same
    /// schedules, same reports); kept as the payload-cost baseline and as
    /// the reference half of the payload differential tests.
    pub naive_payloads: bool,
    /// Number of partitions for the partitioned parallel engine
    /// ([`crate::ParallelSimulator`]). `0` (the default) means "sequential
    /// legacy mode": the engine draws all coins from one global
    /// seed-derived stream, byte-identical to every pre-partitioning
    /// release. Any value ≥ 1 switches coin flips to per-processor
    /// streams derived from `(seed, proc)` (see [`crate::partition`]),
    /// which are identical for every partition count — including 1 — so
    /// sequential runs with `partitions = 1` are differential references
    /// for partitioned runs.
    pub partitions: usize,
}

impl SimConfig {
    /// A configuration for `n` processors with the default failure budget
    /// (`⌈n/2⌉ − 1`), seed 0 and an event budget proportional to `n²`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one processor");
        SimConfig {
            n,
            crash_budget: n.div_ceil(2).saturating_sub(1),
            seed: 0,
            max_events: default_event_budget(n),
            record_trace: false,
            naive_event_set: false,
            validate_event_set: false,
            naive_payloads: false,
            partitions: 0,
        }
    }

    /// Set the random seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the crash budget (clamped to `⌈n/2⌉ − 1`).
    #[must_use]
    pub fn with_crash_budget(mut self, budget: usize) -> Self {
        self.crash_budget = budget.min(self.n.div_ceil(2).saturating_sub(1));
        self
    }

    /// Enable trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Override the event budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// Use the naive rebuild-per-event scheduler (performance baseline).
    #[must_use]
    pub fn with_naive_event_set(mut self) -> Self {
        self.naive_event_set = true;
        self
    }

    /// Cross-check the incremental event indexes against brute force before
    /// every decision.
    #[must_use]
    pub fn with_event_set_validation(mut self) -> Self {
        self.validate_event_set = true;
        self
    }

    /// Use the historical clone-per-message payload path (performance
    /// baseline; schedules and reports are identical to the shared path).
    #[must_use]
    pub fn with_naive_payloads(mut self) -> Self {
        self.naive_payloads = true;
        self
    }

    /// Run with `partitions` per-partition engines (clamped to `1..=n`;
    /// `0` keeps the legacy single-stream sequential mode). Setting any
    /// value ≥ 1 also switches the sequential [`Simulator`] to the
    /// partition-count-independent per-processor coin streams, making it a
    /// differential reference for [`crate::ParallelSimulator`].
    #[must_use]
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions.min(self.n);
        self
    }

    /// Quorum size: `⌊n/2⌋ + 1`.
    pub fn quorum(&self) -> usize {
        self.n / 2 + 1
    }
}

fn default_event_budget(n: usize) -> u64 {
    // Every communicate call generates O(n) messages and each participant
    // performs O(log* n) + O(log^2 n) of them across all algorithms in this
    // workspace; n^2 * 700 leaves ample slack for the renaming algorithm,
    // which performs O(log^2 n) calls per processor.
    (n as u64).saturating_mul(n as u64).saturating_mul(700) + 200_000
}

/// The deterministic discrete-event simulator.
///
/// See the crate-level documentation for the model. Typical use:
/// create a [`SimConfig`], add participants with
/// [`Simulator::add_participant`], and call [`Simulator::run`] with an
/// [`Adversary`].
pub struct Simulator {
    config: SimConfig,
    processes: Vec<SimProcess>,
    /// In-flight messages, slot-addressed with a free-list.
    in_flight: MessageSlab,
    /// Step-enabled processors, ascending by processor id.
    enabled_steps: IndexedBitSet,
    /// Deliverable messages (recipient not crashed), ascending by message id.
    enabled_msgs: OrderedMsgSet,
    /// Mirror of the slab keyed by message id; maintained only in naive mode,
    /// where the per-event rebuild iterates it exactly like the historical
    /// `BTreeMap<MessageId, InFlightMessage>` scan.
    naive_index: Option<BTreeMap<MessageId, u32>>,
    /// Live (registered, not crashed, not returned) participants.
    live_participants: usize,
    next_message_id: u64,
    events_executed: u64,
    crashes: Vec<ProcId>,
    /// Reusable buffer for slots retired in [`Simulator::crash`], so a crash
    /// does not allocate on the hot path.
    scratch_slots: Vec<u32>,
    /// Whether the buffers return to the thread-local arena pool on drop
    /// (set by [`Simulator::new`]; explicit arenas use
    /// [`Simulator::into_arena`] instead).
    pooled: bool,
    rng: ChaCha8Rng,
    report: ExecutionReport,
    /// Persistent adversary observation, updated incrementally as processors
    /// change state so that each event costs O(1) observation maintenance.
    observation: SystemObservation,
    /// Pool-recycle count of the arena this simulator was built from
    /// (restored into the arena on extraction; see [`SimArena::reuses`]).
    arena_reuses: u64,
}

impl Simulator {
    /// Create a simulator with `config.n` processors, none of which
    /// participates yet.
    ///
    /// The engine buffers (message slab, event indexes, processor shells) are
    /// drawn from a thread-local [`SimArena`] pool and returned on drop, so
    /// back-to-back trials on one thread allocate almost nothing after the
    /// first. This is purely an allocator optimization: a recycled simulator
    /// is indistinguishable from a freshly allocated one.
    pub fn new(config: SimConfig) -> Self {
        let mut sim = Simulator::from_arena(config, SimArena::take_pooled());
        sim.pooled = true;
        sim
    }

    /// Create a simulator that reuses the buffers of `arena` (see
    /// [`SimArena`]); recover them afterwards with
    /// [`Simulator::into_arena`].
    pub fn from_arena(config: SimConfig, arena: SimArena) -> Self {
        let SimArena {
            mut slab,
            mut enabled_msgs,
            mut enabled_steps,
            mut processes,
            mut crashes,
            mut scratch_slots,
            mut observations,
            reuses,
        } = arena;
        slab.clear();
        enabled_msgs.clear();
        enabled_steps.reset(config.n);
        crashes.clear();
        scratch_slots.clear();
        for (index, process) in processes.iter_mut().enumerate().take(config.n) {
            process.recycle(ProcId(index));
        }
        processes.truncate(config.n);
        while processes.len() < config.n {
            processes.push(SimProcess::replica_only(ProcId(processes.len())));
        }
        observations.clear();
        observations.extend((0..config.n).map(|i| ProcessObservation {
            proc: ProcId(i),
            phase: ProcessPhase::Idle,
            local_state: None,
        }));

        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let trace = if config.record_trace {
            Trace::recording()
        } else {
            Trace::disabled()
        };
        let observation = SystemObservation {
            n: config.n,
            events_executed: 0,
            crash_budget_left: config.crash_budget,
            processes: observations,
        };
        let naive_index = config.naive_event_set.then(BTreeMap::new);
        Simulator {
            enabled_steps,
            enabled_msgs,
            naive_index,
            live_participants: 0,
            config,
            processes,
            in_flight: slab,
            next_message_id: 0,
            events_executed: 0,
            crashes,
            scratch_slots,
            pooled: false,
            rng,
            report: ExecutionReport {
                trace,
                ..ExecutionReport::default()
            },
            observation,
            arena_reuses: reuses,
        }
    }

    /// How many times this simulator's buffers had been recycled through the
    /// arena pool when it was created (0 = cold allocation). See
    /// [`SimArena::reuses`].
    pub fn arena_reuses(&self) -> u64 {
        self.arena_reuses
    }

    /// Recover the engine buffers for the next trial (counterpart of
    /// [`Simulator::from_arena`]).
    pub fn into_arena(mut self) -> SimArena {
        self.pooled = false;
        self.extract_arena()
    }

    fn extract_arena(&mut self) -> SimArena {
        let mut arena = SimArena {
            slab: std::mem::take(&mut self.in_flight),
            enabled_msgs: std::mem::take(&mut self.enabled_msgs),
            enabled_steps: std::mem::take(&mut self.enabled_steps),
            processes: std::mem::take(&mut self.processes),
            crashes: std::mem::take(&mut self.crashes),
            scratch_slots: std::mem::take(&mut self.scratch_slots),
            observations: std::mem::take(&mut self.observation.processes),
            reuses: self.arena_reuses,
        };
        // Empty everything now (keeping capacity) rather than lazily on next
        // reuse: an arena parked in the thread-local pool must hold only
        // buffer capacity, not the last trial's protocol boxes, replica
        // contents and undelivered message payloads.
        arena.slab.clear();
        arena.enabled_msgs.clear();
        arena.crashes.clear();
        arena.scratch_slots.clear();
        arena.observations.clear();
        for process in &mut arena.processes {
            process.recycle(process.id);
        }
        arena
    }

    /// Register `proc` as a participant running `protocol`.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidParticipant`] if the processor id is out of
    /// range or already participates.
    pub fn try_add_participant(
        &mut self,
        proc: ProcId,
        protocol: Box<dyn Protocol>,
    ) -> Result<(), SimError> {
        if proc.index() >= self.config.n {
            return Err(SimError::InvalidParticipant {
                proc,
                reason: format!("system only has {} processors", self.config.n),
            });
        }
        if self.processes[proc.index()].participates() {
            return Err(SimError::InvalidParticipant {
                proc,
                reason: "already registered".to_string(),
            });
        }
        self.processes[proc.index()].participate(protocol);
        self.live_participants += 1;
        self.refresh_process_observation(proc);
        Ok(())
    }

    /// Register `proc` as a participant running `protocol`.
    ///
    /// # Panics
    /// Panics on the error conditions of [`Simulator::try_add_participant`];
    /// use that method to handle them gracefully.
    pub fn add_participant(&mut self, proc: ProcId, protocol: Box<dyn Protocol>) {
        self.try_add_participant(proc, protocol)
            .expect("invalid participant registration");
    }

    /// The configuration this simulator was built with.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run the execution to completion under the given adversary.
    ///
    /// The run ends when every live participant has returned. The adversary
    /// chooses every step, delivery and crash; if it declines to decide the
    /// engine falls back to the oldest enabled event, so executions always
    /// make progress.
    ///
    /// Equivalent to driving [`Simulator::step_once`] until it reports
    /// completion and then calling [`Simulator::finish`]; callers that need
    /// to inspect the execution between decisions (e.g. online safety
    /// oracles) use those directly.
    ///
    /// # Errors
    /// * [`SimError::EventBudgetExhausted`] if the event budget runs out.
    /// * [`SimError::CrashBudgetExceeded`] if the adversary exceeds `t`.
    /// * [`SimError::InvalidDecision`] if the adversary returns a decision
    ///   that does not refer to an enabled event.
    pub fn run(&mut self, adversary: &mut dyn Adversary) -> Result<ExecutionReport, SimError> {
        while self.step_once(adversary)? {}
        Ok(self.finish())
    }

    /// Obtain and execute **one** adversary decision (a step, a delivery, or
    /// a crash). Returns `Ok(false)` — without consulting the adversary —
    /// once every live participant has returned.
    ///
    /// This is the granular form of [`Simulator::run`]: driving it in a loop
    /// executes the identical schedule, but the caller regains control after
    /// every decision and may inspect the in-progress execution through
    /// [`Simulator::report_so_far`], [`Simulator::events_executed`] and the
    /// trace — which is what lets the exploration subsystem evaluate safety
    /// oracles *online* and stop at the first violating event.
    ///
    /// # Errors
    /// Same conditions as [`Simulator::run`].
    pub fn step_once(&mut self, adversary: &mut dyn Adversary) -> Result<bool, SimError> {
        if self.live_participants == 0 {
            return Ok(false);
        }
        if self.events_executed >= self.config.max_events {
            return Err(self.budget_exhausted());
        }

        // In naive mode the event list is rebuilt from scratch for every
        // decision — the historical cost profile the benchmarks compare
        // against. The rebuilt list is identical, element for element, to
        // the incremental view, so schedules and reports do not change.
        let snapshot: Option<Vec<EnabledEvent>> =
            self.config.naive_event_set.then(|| self.naive_snapshot());
        let enabled_len = match &snapshot {
            Some(events) => events.len(),
            None => self.enabled_steps.len() + self.enabled_msgs.len(),
        };

        if enabled_len == 0 {
            // Every live participant is blocked on a quorum that can never
            // form (too many crashes for the remaining replicas). The
            // model guarantees termination only for t < n/2, so this can
            // only be reached by misconfiguration; treat it as budget
            // exhaustion for reporting purposes.
            return Err(self.budget_exhausted());
        }

        self.refresh_observation_header();

        if self.config.validate_event_set {
            self.assert_event_set_matches_brute_force();
        }

        let decision = {
            let enabled = match &snapshot {
                Some(events) => EnabledEvents::from_slice(events),
                None => {
                    EnabledEvents::live(&self.enabled_steps, &self.enabled_msgs, &self.in_flight)
                }
            };
            adversary.decide(&self.observation, &enabled)
        };

        match decision {
            Decision::Crash(victim) => {
                self.crash(victim)?;
            }
            Decision::Schedule(index) => {
                let resolved = match &snapshot {
                    Some(events) => events.get(index).copied().map(|event| {
                        let slot = match event {
                            EnabledEvent::Deliver { id, .. } => Some(
                                *self
                                    .naive_index
                                    .as_ref()
                                    .expect("naive index exists in naive mode")
                                    .get(&id)
                                    .expect("enabled message is in the naive index"),
                            ),
                            EnabledEvent::Step(_) => None,
                        };
                        (event, slot)
                    }),
                    None => self.resolve_live(index),
                };
                let Some((event, slot)) = resolved else {
                    return Err(SimError::InvalidDecision {
                        reason: format!(
                            "index {index} out of bounds for {enabled_len} enabled events"
                        ),
                    });
                };
                self.execute(event, slot);
            }
        }
        // Re-sync the observation's scalar header so callers inspecting the
        // simulator *between* decisions (online oracles) see the post-event
        // event count and crash budget, not values one decision stale. The
        // adversary path is unaffected: its refresh above still runs first.
        self.refresh_observation_header();
        Ok(true)
    }

    /// Finalize the bookkeeping and take the report of a completed
    /// execution (counterpart of driving [`Simulator::step_once`] to
    /// completion; [`Simulator::run`] calls this internally).
    ///
    /// Callers should only invoke this once [`Simulator::is_complete`]
    /// holds. Finishing earlier yields a snapshot report over the partial
    /// execution and is safe — the engine's own crash accounting (budget
    /// enforcement, adversary observation) is unaffected — but the taken
    /// outcomes, metrics and trace are gone from any later report.
    pub fn finish(&mut self) -> ExecutionReport {
        self.finalize();
        std::mem::take(&mut self.report)
    }

    /// Whether every live participant has returned (the run is over).
    pub fn is_complete(&self) -> bool {
        self.live_participants == 0
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// The in-progress report: outcomes and intervals of the participants
    /// that returned so far, the metrics and the trace. `events_executed`
    /// and `crashed` are only filled in by [`Simulator::finish`]; use
    /// [`Simulator::events_executed`] and the observation while the run is
    /// still going.
    pub fn report_so_far(&self) -> &ExecutionReport {
        &self.report
    }

    /// The adversary-visible system observation as of the last executed
    /// event.
    pub fn observation(&self) -> &SystemObservation {
        &self.observation
    }

    /// Convenience wrapper: run and panic on simulator errors. Useful in
    /// benchmarks and examples where an error is always a bug.
    ///
    /// # Panics
    /// Panics if [`Simulator::run`] returns an error.
    pub fn run_to_completion(&mut self, adversary: &mut dyn Adversary) -> ExecutionReport {
        self.run(adversary).expect("simulation failed")
    }

    /// Whether the incremental enabled-event indexes are maintained: always,
    /// except in pure naive mode, which keeps only its own id-ordered map so
    /// the recorded naive-vs-incremental speedup measures the historical cost
    /// profile without paying for both bookkeeping schemes. Validation mode
    /// needs the incremental indexes even when naive mode is on.
    fn maintains_incremental(&self) -> bool {
        !self.config.naive_event_set || self.config.validate_event_set
    }

    fn budget_exhausted(&self) -> SimError {
        SimError::EventBudgetExhausted {
            budget: self.config.max_events,
            unfinished: self
                .processes
                .iter()
                .filter(|p| p.is_live_participant())
                .map(|p| p.id)
                .collect(),
        }
    }

    /// Resolve an index into the live view: steps (ascending processor id)
    /// first, then deliveries (ascending message id) with their slab slot.
    fn resolve_live(&self, index: usize) -> Option<(EnabledEvent, Option<u32>)> {
        if index < self.enabled_steps.len() {
            let proc = ProcId(self.enabled_steps.select(index)?);
            return Some((EnabledEvent::Step(proc), None));
        }
        let (_, slot) = self.enabled_msgs.select(index - self.enabled_steps.len())?;
        let message = self
            .in_flight
            .get(slot)
            .expect("enabled message indexes a live slab slot");
        Some((message.to_event(), Some(slot)))
    }

    /// The historical per-event rebuild: scan every processor, then walk the
    /// id-ordered message index, skipping messages to crashed recipients.
    fn naive_snapshot(&self) -> Vec<EnabledEvent> {
        let mut events = Vec::new();
        for process in &self.processes {
            if process.step_enabled() {
                events.push(EnabledEvent::Step(process.id));
            }
        }
        let index = self
            .naive_index
            .as_ref()
            .expect("naive index exists in naive mode");
        for (&id, &slot) in index {
            let message = self
                .in_flight
                .get(slot)
                .expect("naive index mirrors the slab");
            debug_assert_eq!(message.id, id);
            // Messages to crashed processors remain deliverable (they are
            // simply ignored on arrival), but there is no point offering them
            // to the adversary: delivering them can never unblock anyone.
            if !self.processes[message.to.index()].crashed {
                events.push(message.to_event());
            }
        }
        events
    }

    /// The enabled events as the adversary would see them, materialized.
    /// In pure naive mode the incremental indexes are not maintained, so the
    /// list is served from the naive rebuild instead (same contents, same
    /// order).
    pub fn enabled_events_vec(&self) -> Vec<EnabledEvent> {
        if self.maintains_incremental() {
            EnabledEvents::live(&self.enabled_steps, &self.enabled_msgs, &self.in_flight).to_vec()
        } else {
            self.naive_snapshot()
        }
    }

    /// The enabled events recomputed from first principles: a full scan of
    /// all processors and all in-flight messages, ignoring the incremental
    /// indexes. Reference implementation for the differential tests.
    pub fn enabled_events_brute_force(&self) -> Vec<EnabledEvent> {
        let mut events: Vec<EnabledEvent> = self
            .processes
            .iter()
            .filter(|p| p.step_enabled())
            .map(|p| EnabledEvent::Step(p.id))
            .collect();
        let mut deliveries: Vec<&InFlightMessage> = self
            .in_flight
            .iter()
            .map(|(_, message)| message)
            .filter(|message| !self.processes[message.to.index()].crashed)
            .collect();
        deliveries.sort_by_key(|message| message.id);
        events.extend(deliveries.into_iter().map(InFlightMessage::to_event));
        events
    }

    fn assert_event_set_matches_brute_force(&self) {
        let incremental = self.enabled_events_vec();
        let brute_force = self.enabled_events_brute_force();
        assert_eq!(
            incremental, brute_force,
            "incremental enabled-event set diverged from brute force after {} events",
            self.events_executed
        );
    }

    /// Update the scalar fields of the persistent observation. The
    /// per-processor entries are refreshed incrementally by
    /// [`Simulator::refresh_process_observation`] whenever a processor's
    /// state changes, which keeps the per-event cost independent of `n`.
    fn refresh_observation_header(&mut self) {
        self.observation.events_executed = self.events_executed;
        self.observation.crash_budget_left =
            self.config.crash_budget.saturating_sub(self.crashes.len());
    }

    /// Rebuild the observation entry for processor `p` and re-sync its
    /// membership in the step-enabled index. Called whenever the processor
    /// steps, receives a delivery, crashes or is registered.
    fn refresh_process_observation(&mut self, p: ProcId) {
        let process = &self.processes[p.index()];
        let step_enabled = process.step_enabled();
        if self.maintains_incremental() {
            self.enabled_steps.set(p.index(), step_enabled);
        }
        let phase = if process.crashed {
            ProcessPhase::Crashed
        } else if !process.participates() {
            ProcessPhase::Idle
        } else {
            match &process.pending {
                PendingWork::NotStarted => ProcessPhase::NotStarted,
                PendingWork::LocalResponse(_) | PendingWork::ResponseReady(_) => {
                    ProcessPhase::StepReady
                }
                PendingWork::AwaitingAcks { .. } | PendingWork::AwaitingViews { .. } => {
                    ProcessPhase::AwaitingQuorum
                }
                PendingWork::Finished(_) => ProcessPhase::Finished,
            }
        };
        self.observation.processes[p.index()] = ProcessObservation {
            proc: p,
            phase,
            local_state: process
                .protocol
                .as_ref()
                .map(|proto| proto.adversary_view()),
        };
    }

    fn crash(&mut self, victim: ProcId) -> Result<(), SimError> {
        if self.crashes.len() >= self.config.crash_budget {
            return Err(SimError::CrashBudgetExceeded {
                victim,
                budget: self.config.crash_budget,
            });
        }
        if victim.index() >= self.config.n {
            return Err(SimError::InvalidDecision {
                reason: format!("cannot crash non-existent processor {victim}"),
            });
        }
        if self.processes[victim.index()].crashed {
            return Err(SimError::InvalidDecision {
                reason: format!("{victim} is already crashed"),
            });
        }
        if self.processes[victim.index()].is_live_participant() {
            self.live_participants -= 1;
        }
        self.processes[victim.index()].crashed = true;
        self.crashes.push(victim);
        // Deliveries to the victim can never unblock anyone now; retire them
        // from the enabled set (the messages stay in flight, matching the
        // historical semantics of filtering them out of every rebuild).
        if self.maintains_incremental() {
            let mut doomed = std::mem::take(&mut self.scratch_slots);
            doomed.clear();
            doomed.extend(
                self.enabled_msgs
                    .iter()
                    .filter(|&(_, slot)| {
                        self.in_flight
                            .get(slot)
                            .expect("enabled message indexes a live slab slot")
                            .to
                            == victim
                    })
                    .map(|(_, slot)| slot),
            );
            for &slot in &doomed {
                self.enabled_msgs.remove_slot(slot);
            }
            self.scratch_slots = doomed;
        }
        self.report.trace.push(TraceEvent::Crash { proc: victim });
        self.refresh_process_observation(victim);
        Ok(())
    }

    fn execute(&mut self, event: EnabledEvent, slot: Option<u32>) {
        self.events_executed += 1;
        match event {
            EnabledEvent::Step(proc) => {
                self.execute_step(proc);
                self.refresh_process_observation(proc);
            }
            EnabledEvent::Deliver { to, .. } => {
                let slot = slot.expect("delivery events carry their slab slot");
                self.execute_delivery(slot);
                self.refresh_process_observation(to);
            }
        }
    }

    fn execute_step(&mut self, proc: ProcId) {
        self.report.trace.push(TraceEvent::Step { proc });
        let index = proc.index();

        // Take the ready response out of the pending state.
        let response = {
            let process = &mut self.processes[index];
            if process.started_at.is_none() {
                process.started_at = Some(self.events_executed);
                self.report
                    .intervals
                    .insert(proc, (self.events_executed, None));
            }
            match std::mem::replace(&mut process.pending, PendingWork::NotStarted) {
                PendingWork::NotStarted => Response::Start,
                PendingWork::LocalResponse(r) | PendingWork::ResponseReady(r) => r,
                other => {
                    // step_enabled() guarantees this cannot happen; restore and bail.
                    process.pending = other;
                    return;
                }
            }
        };

        let action = {
            let process = &mut self.processes[index];
            let protocol = process
                .protocol
                .as_mut()
                .expect("only participants take steps");
            protocol.step(response)
        };

        self.apply_action(proc, action);
    }

    fn apply_action(&mut self, proc: ProcId, action: Action) {
        let quorum = self.config.quorum();
        let n = self.config.n;
        let index = proc.index();
        match action {
            Action::Propagate { entries } => {
                let seq = self.processes[index].fresh_seq();
                self.processes[index].replica.apply_all(&entries);
                {
                    let metrics = self.report.metrics.proc_mut(proc);
                    metrics.communicate_calls += 1;
                }
                let mut seen = fle_model::BitRow::new();
                seen.set(index);
                self.processes[index].call_msgs.clear();
                self.processes[index].pending = PendingWork::AwaitingAcks {
                    seq,
                    acked: 1,
                    seen,
                };
                // One shared payload for the whole broadcast: every send is a
                // refcount bump. The naive baseline clones the entry list per
                // target instead (the historical cost profile).
                let shared: Arc<[(Key, Value)]> = entries.into();
                for target in 0..n {
                    if target == index {
                        continue;
                    }
                    let entries = if self.config.naive_payloads {
                        // One fresh copy per target — the historical cost.
                        Arc::from(&*shared)
                    } else {
                        shared.clone()
                    };
                    self.send(
                        proc,
                        ProcId(target),
                        WireMessage::Propagate { seq, entries },
                    );
                }
                self.maybe_complete_quorum(proc, quorum);
            }
            Action::Collect { instance } => {
                let seq = self.processes[index].fresh_seq();
                let own_view = if self.config.naive_payloads {
                    Arc::new(self.processes[index].replica.view_of(instance))
                } else {
                    self.processes[index].replica.view_arc(instance)
                };
                {
                    let metrics = self.report.metrics.proc_mut(proc);
                    metrics.communicate_calls += 1;
                }
                let mut seen = fle_model::BitRow::new();
                seen.set(index);
                self.processes[index].call_msgs.clear();
                self.processes[index].pending = PendingWork::AwaitingViews {
                    seq,
                    views: vec![(proc, own_view)],
                    seen,
                };
                if !self.config.naive_payloads {
                    self.processes[index].collect_cache.prepare(instance, n);
                }
                for target in 0..n {
                    if target == index {
                        continue;
                    }
                    // Tell each responder which of its versions we already
                    // hold, so it can reply with a delta.
                    let known = if self.config.naive_payloads {
                        0
                    } else {
                        self.processes[index].collect_cache.known(ProcId(target))
                    };
                    self.send(
                        proc,
                        ProcId(target),
                        WireMessage::Collect {
                            seq,
                            instance,
                            known,
                        },
                    );
                }
                self.maybe_complete_quorum(proc, quorum);
            }
            Action::Flip { prob_one } => {
                let value = if self.config.partitions > 0 {
                    let word = crate::partition::coin_word(
                        self.config.seed,
                        proc,
                        self.processes[index].flips,
                    );
                    self.processes[index].flips += 1;
                    crate::partition::coin_bool(word, prob_one)
                } else {
                    self.rng.gen_bool(prob_one.clamp(0.0, 1.0))
                };
                self.report.metrics.proc_mut(proc).coin_flips += 1;
                self.report.trace.push(TraceEvent::Coin { proc, value });
                self.processes[index].pending = PendingWork::LocalResponse(Response::Coin(value));
            }
            Action::Choose { choices } => {
                self.report.metrics.proc_mut(proc).coin_flips += 1;
                let chosen = if choices.is_empty() {
                    0
                } else if self.config.partitions > 0 {
                    let word = crate::partition::coin_word(
                        self.config.seed,
                        proc,
                        self.processes[index].flips,
                    );
                    self.processes[index].flips += 1;
                    choices[(word % choices.len() as u64) as usize]
                } else {
                    choices[self.rng.gen_range(0..choices.len())]
                };
                self.processes[index].pending =
                    PendingWork::LocalResponse(Response::Chosen(chosen));
            }
            Action::Return(outcome) => {
                self.processes[index].pending = PendingWork::Finished(outcome);
                self.processes[index].finished_at = Some(self.events_executed);
                self.live_participants -= 1;
                self.report.outcomes.insert(proc, outcome);
                // The interval entry normally exists since the first step,
                // but an early `finish()` takes the report with it; rebuild
                // the start from `started_at` (which survives the take) so a
                // later report never carries an outcome without an interval.
                let started = self.processes[index]
                    .started_at
                    .expect("a returning participant has taken at least one step");
                self.report
                    .intervals
                    .entry(proc)
                    .or_insert((started, None))
                    .1 = Some(self.events_executed);
                self.report.trace.push(TraceEvent::Return { proc, outcome });
            }
        }
    }

    /// In degenerate systems (n = 1, or a quorum of 1) the caller's own
    /// acknowledgement already forms a quorum; promote the pending state.
    fn maybe_complete_quorum(&mut self, proc: ProcId, quorum: usize) {
        let process = &mut self.processes[proc.index()];
        let completed_seq = match &mut process.pending {
            PendingWork::AwaitingAcks { seq, acked, .. } if *acked >= quorum => {
                let seq = *seq;
                process.pending = PendingWork::ResponseReady(Response::AckQuorum);
                Some(seq)
            }
            PendingWork::AwaitingViews { seq, views, .. } if views.len() >= quorum => {
                let seq = *seq;
                let collected = std::mem::take(views);
                process.pending = PendingWork::ResponseReady(Response::Views(
                    CollectedViews::from_shared(collected),
                ));
                Some(seq)
            }
            _ => None,
        };
        if let Some(seq) = completed_seq {
            self.purge_completed_call(proc, seq);
        }
    }

    /// Drop the in-flight messages of a communicate call that has already
    /// reached its quorum: the leftover requests and replies can never affect
    /// the caller again, and keeping them around only slows the adversary
    /// down. Semantically this is the adversary delaying them forever, which
    /// the asynchronous model allows.
    ///
    /// The caller's `call_msgs` list records exactly the slots its current
    /// call touched (its outgoing requests plus the replies addressed back to
    /// it), so this costs O(call size) — not a scan of every in-flight
    /// message. A listed slot may have been delivered and re-used by an
    /// unrelated message in the meantime; the sequence-number-and-direction
    /// check below rejects those, because sequence numbers are scoped to
    /// their caller.
    fn purge_completed_call(&mut self, caller: ProcId, seq: u64) {
        let candidates = std::mem::take(&mut self.processes[caller.index()].call_msgs);
        for slot in candidates {
            let Some(message) = self.in_flight.get(slot) else {
                continue;
            };
            let belongs_to_call = message.payload.seq() == seq
                && ((message.from == caller && message.is_request())
                    || (message.to == caller && message.is_reply()));
            if belongs_to_call {
                self.remove_message(slot);
            }
        }
    }

    /// Whether `caller` still has the communicate call `seq` outstanding.
    fn call_outstanding(&self, caller: ProcId, seq: u64) -> bool {
        match &self.processes[caller.index()].pending {
            PendingWork::AwaitingAcks { seq: s, .. }
            | PendingWork::AwaitingViews { seq: s, .. } => *s == seq,
            _ => false,
        }
    }

    fn send(&mut self, from: ProcId, to: ProcId, payload: WireMessage) {
        let id = MessageId(self.next_message_id);
        self.next_message_id += 1;
        self.report.metrics.proc_mut(from).messages_sent += 1;
        let is_request = payload.is_request();
        let slot = self.in_flight.insert(InFlightMessage {
            id,
            from,
            to,
            payload,
            sent_at: self.events_executed,
        });
        // Track the slot under the communicate call it belongs to: requests
        // under their sender, replies under the caller awaiting them.
        let call_owner = if is_request { from } else { to };
        self.processes[call_owner.index()].call_msgs.push(slot);
        if self.maintains_incremental() && !self.processes[to.index()].crashed {
            self.enabled_msgs.insert(id, slot);
        }
        if let Some(index) = self.naive_index.as_mut() {
            index.insert(id, slot);
        }
    }

    /// Remove a message from the slab and every index that may reference it.
    fn remove_message(&mut self, slot: u32) -> Option<InFlightMessage> {
        let message = self.in_flight.remove(slot)?;
        if self.maintains_incremental() {
            self.enabled_msgs.remove_slot(slot);
        }
        if let Some(index) = self.naive_index.as_mut() {
            index.remove(&message.id);
        }
        Some(message)
    }

    fn execute_delivery(&mut self, slot: u32) {
        let Some(message) = self.remove_message(slot) else {
            return;
        };
        self.report.trace.push(TraceEvent::Deliver {
            id: message.id,
            from: message.from,
            to: message.to,
        });
        let to_index = message.to.index();
        self.report.metrics.proc_mut(message.to).messages_received += 1;

        if self.processes[to_index].crashed {
            // Messages are delivered to faulty processors but produce no
            // replies and no protocol progress.
            return;
        }

        let quorum = self.config.quorum();
        match message.payload {
            WireMessage::Propagate { seq, entries } => {
                self.processes[to_index].replica.apply_all(&entries);
                // Replying to a call the sender has already completed can
                // never matter; skip it (equivalently: delay it forever).
                if self.call_outstanding(message.from, seq) {
                    self.send(message.to, message.from, WireMessage::Ack { seq });
                }
            }
            WireMessage::Collect {
                seq,
                instance,
                known,
            } => {
                if self.call_outstanding(message.from, seq) {
                    // Shared path: a copy-on-write snapshot when the
                    // requester holds nothing, otherwise only the entries
                    // written since the version it reported. Naive path:
                    // the historical full deep clone per reply.
                    let view = if self.config.naive_payloads {
                        fle_model::ViewTransfer::Full(Arc::new(
                            self.processes[to_index].replica.view_of(instance),
                        ))
                    } else {
                        self.processes[to_index]
                            .replica
                            .transfer_since(instance, known)
                    };
                    self.send(
                        message.to,
                        message.from,
                        WireMessage::CollectReply { seq, view },
                    );
                }
            }
            WireMessage::Ack { seq } => {
                self.processes[to_index].record_ack(message.from, seq, quorum);
                self.purge_if_completed(message.to);
            }
            WireMessage::CollectReply { seq, view } => {
                let naive = self.config.naive_payloads;
                self.processes[to_index].record_view(message.from, seq, view, naive, quorum);
                self.purge_if_completed(message.to);
            }
        }
    }

    /// After a reply was recorded, purge the call's leftover traffic if the
    /// quorum has just been reached.
    fn purge_if_completed(&mut self, caller: ProcId) {
        if matches!(
            self.processes[caller.index()].pending,
            PendingWork::ResponseReady(_)
        ) {
            // The completed call's sequence number is the caller's latest.
            let seq = self.processes[caller.index()].next_seq;
            self.purge_completed_call(caller, seq);
        }
    }

    fn finalize(&mut self) {
        self.report.events_executed = self.events_executed;
        if self.live_participants == 0 {
            // The crash list is only needed by the report from here on; move
            // it instead of cloning (the drained engine copy is never read
            // again on a completed run).
            self.report.crashed = std::mem::take(&mut self.crashes);
        } else {
            // Partial finish: the engine keeps stepping afterwards, and both
            // the crash-budget check and the adversary observation read
            // `self.crashes` — draining it here would hand the adversary a
            // second budget and lose the early crashes from later reports.
            self.report.crashed = self.crashes.clone();
        }
    }
}

impl Drop for Simulator {
    fn drop(&mut self) {
        if self.pooled {
            SimArena::pool(self.extract_arena());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{RandomAdversary, SequentialAdversary};
    use fle_model::{InstanceId, Key, LocalStateView, Outcome, Slot, Value};

    /// A protocol that propagates a flag, collects, and returns WIN if it saw
    /// its own flag in some view (it always should).
    struct PropagateCollect {
        me: ProcId,
        saw_self: bool,
        phase: u8,
    }

    impl PropagateCollect {
        fn new(me: ProcId) -> Self {
            PropagateCollect {
                me,
                saw_self: false,
                phase: 0,
            }
        }
    }

    impl Protocol for PropagateCollect {
        fn step(&mut self, response: Response) -> Action {
            match self.phase {
                0 => {
                    assert_eq!(response, Response::Start);
                    self.phase = 1;
                    Action::Propagate {
                        entries: vec![(
                            Key::proc(InstanceId::custom(1, 1), self.me),
                            Value::Flag(true),
                        )],
                    }
                }
                1 => {
                    assert_eq!(response, Response::AckQuorum);
                    self.phase = 2;
                    Action::Collect {
                        instance: InstanceId::custom(1, 1),
                    }
                }
                _ => {
                    let views = response.expect_views();
                    self.saw_self = views.any_view_has(&Slot::Proc(self.me));
                    Action::Return(if self.saw_self {
                        Outcome::Win
                    } else {
                        Outcome::Lose
                    })
                }
            }
        }

        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("propagate-collect", "running").with_round(self.phase as u64)
        }
    }

    #[test]
    fn propagate_then_collect_sees_own_write() {
        for n in [1usize, 2, 3, 5, 8] {
            let mut sim = Simulator::new(SimConfig::new(n).with_seed(1));
            for i in 0..n {
                sim.add_participant(ProcId(i), Box::new(PropagateCollect::new(ProcId(i))));
            }
            let report = sim.run(&mut RandomAdversary::with_seed(42)).unwrap();
            for i in 0..n {
                assert_eq!(
                    report.outcome(ProcId(i)),
                    Some(Outcome::Win),
                    "n={n}, processor {i} must observe its own propagated write"
                );
            }
        }
    }

    #[test]
    fn message_complexity_is_linear_per_communicate_call() {
        let n = 10;
        let mut sim = Simulator::new(SimConfig::new(n));
        sim.add_participant(ProcId(0), Box::new(PropagateCollect::new(ProcId(0))));
        let report = sim.run(&mut SequentialAdversary::new()).unwrap();
        // Two communicate calls: each sends n-1 requests; replicas send back
        // up to n-1 replies each. Self-delivery is free.
        let sent = report.total_messages();
        assert!(
            sent >= 2 * (n as u64 - 1),
            "requests must be counted: {sent}"
        );
        assert!(
            sent <= 4 * (n as u64 - 1),
            "no more than requests + replies may be counted: {sent}"
        );
        assert_eq!(report.max_communicate_calls(), 2);
    }

    #[test]
    fn crash_budget_is_enforced() {
        let mut sim = Simulator::new(SimConfig::new(4));
        sim.add_participant(ProcId(0), Box::new(PropagateCollect::new(ProcId(0))));

        struct CrashHappy;
        impl Adversary for CrashHappy {
            fn decide(
                &mut self,
                obs: &SystemObservation,
                _enabled: &EnabledEvents<'_>,
            ) -> Decision {
                // Keep crashing replicas (never the participant p0) until the
                // budget runs out.
                let victim = obs
                    .processes
                    .iter()
                    .skip(1)
                    .find(|p| !matches!(p.phase, ProcessPhase::Crashed))
                    .map(|p| p.proc)
                    .unwrap_or(ProcId(1));
                Decision::Crash(victim)
            }
            fn name(&self) -> &'static str {
                "crash-happy"
            }
        }

        let err = sim.run(&mut CrashHappy).unwrap_err();
        assert!(matches!(err, SimError::CrashBudgetExceeded { .. }));
    }

    #[test]
    fn single_processor_system_terminates_immediately() {
        let mut sim = Simulator::new(SimConfig::new(1));
        sim.add_participant(ProcId(0), Box::new(PropagateCollect::new(ProcId(0))));
        let report = sim.run(&mut RandomAdversary::with_seed(0)).unwrap();
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
        assert_eq!(report.total_messages(), 0, "a lone processor sends nothing");
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut sim = Simulator::new(SimConfig::new(6).with_seed(3).with_trace());
            for i in 0..6 {
                sim.add_participant(ProcId(i), Box::new(PropagateCollect::new(ProcId(i))));
            }
            sim.run(&mut RandomAdversary::with_seed(seed)).unwrap()
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a.trace.digest(), b.trace.digest());
        assert_eq!(a.total_messages(), b.total_messages());
        // A different adversary seed virtually always yields a different schedule.
        assert_ne!(a.trace.digest(), c.trace.digest());
    }

    #[test]
    fn naive_and_incremental_event_sets_agree() {
        let run = |naive: bool, validate: bool| {
            let mut config = SimConfig::new(7).with_seed(5).with_trace();
            if naive {
                config = config.with_naive_event_set();
            }
            if validate {
                config = config.with_event_set_validation();
            }
            let mut sim = Simulator::new(config);
            for i in 0..7 {
                sim.add_participant(ProcId(i), Box::new(PropagateCollect::new(ProcId(i))));
            }
            sim.run(&mut RandomAdversary::with_seed(23)).unwrap()
        };
        let incremental = run(false, true);
        let naive = run(true, false);
        assert_eq!(incremental.trace.digest(), naive.trace.digest());
        assert_eq!(incremental.trace.len(), naive.trace.len());
        assert_eq!(incremental.total_messages(), naive.total_messages());
        assert_eq!(incremental.outcomes, naive.outcomes);
        assert_eq!(incremental.events_executed, naive.events_executed);
    }

    #[test]
    fn naive_and_shared_payloads_agree() {
        let run = |naive_payloads: bool| {
            let mut config = SimConfig::new(7).with_seed(5).with_trace();
            if naive_payloads {
                config = config.with_naive_payloads();
            }
            let mut sim = Simulator::new(config);
            for i in 0..7 {
                sim.add_participant(ProcId(i), Box::new(PropagateCollect::new(ProcId(i))));
            }
            sim.run(&mut RandomAdversary::with_seed(23)).unwrap()
        };
        let shared = run(false);
        let naive = run(true);
        assert_eq!(shared.trace.digest(), naive.trace.digest());
        assert_eq!(shared.total_messages(), naive.total_messages());
        assert_eq!(shared.outcomes, naive.outcomes);
        assert_eq!(shared.events_executed, naive.events_executed);
    }

    #[test]
    fn early_finish_keeps_crash_accounting_intact() {
        // n = 5 ⇒ crash budget 2. Crash once, take a partial report, and
        // verify the engine still counts that crash: the budget must run out
        // after one *more* crash, not two, and the partial report must list
        // the crash it observed.
        struct CrashThenOldest {
            victims: Vec<ProcId>,
        }
        impl Adversary for CrashThenOldest {
            fn decide(
                &mut self,
                _obs: &SystemObservation,
                _enabled: &EnabledEvents<'_>,
            ) -> Decision {
                match self.victims.pop() {
                    Some(victim) => Decision::Crash(victim),
                    None => Decision::Schedule(0),
                }
            }
            fn name(&self) -> &'static str {
                "crash-then-oldest"
            }
        }

        let mut sim = Simulator::new(SimConfig::new(5));
        for i in 0..3 {
            sim.add_participant(ProcId(i), Box::new(PropagateCollect::new(ProcId(i))));
        }
        let mut adversary = CrashThenOldest {
            victims: vec![ProcId(3)],
        };
        assert!(sim.step_once(&mut adversary).unwrap());
        let partial = sim.finish();
        assert_eq!(
            partial.crashed,
            vec![ProcId(3)],
            "partial report sees the crash"
        );
        assert!(!sim.is_complete());

        // One more crash fits the budget of 2; the next must be rejected —
        // an early finish must not have handed the adversary a fresh budget.
        let mut adversary = CrashThenOldest {
            victims: vec![ProcId(2), ProcId(4)],
        };
        assert!(sim.step_once(&mut adversary).unwrap());
        let err = sim.step_once(&mut adversary).unwrap_err();
        assert!(matches!(err, SimError::CrashBudgetExceeded { .. }));
    }

    #[test]
    fn early_finish_keeps_later_reports_internally_consistent() {
        let mut sim = Simulator::new(SimConfig::new(3));
        for i in 0..2 {
            sim.add_participant(ProcId(i), Box::new(PropagateCollect::new(ProcId(i))));
        }
        let mut adversary = RandomAdversary::with_seed(1);
        // Let participants start, then take a partial snapshot (which also
        // takes the interval-start entries with it).
        for _ in 0..3 {
            assert!(sim.step_once(&mut adversary).unwrap());
        }
        let _partial = sim.finish();
        // The final report must still pair every outcome it carries with a
        // complete interval, or the linearizability checker false-fires.
        while sim.step_once(&mut adversary).unwrap() {}
        let report = sim.finish();
        assert!(!report.outcomes.is_empty());
        for proc in report.outcomes.keys() {
            assert!(
                report
                    .intervals
                    .get(proc)
                    .is_some_and(|(_, end)| end.is_some()),
                "{proc} returned but its interval is missing or open"
            );
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut sim = Simulator::new(SimConfig::new(2));
        sim.add_participant(ProcId(0), Box::new(PropagateCollect::new(ProcId(0))));
        let err = sim
            .try_add_participant(ProcId(0), Box::new(PropagateCollect::new(ProcId(0))))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParticipant { .. }));
        let err = sim
            .try_add_participant(ProcId(7), Box::new(PropagateCollect::new(ProcId(7))))
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidParticipant { .. }));
    }

    #[test]
    fn crashed_minority_does_not_block_termination() {
        let n = 5;
        let mut sim = Simulator::new(SimConfig::new(n));
        for i in 0..n {
            sim.add_participant(ProcId(i), Box::new(PropagateCollect::new(ProcId(i))));
        }

        /// Crash processors 3 and 4 immediately, then schedule fairly.
        struct CrashTwoThenFair {
            inner: RandomAdversary,
            crashed: usize,
        }
        impl Adversary for CrashTwoThenFair {
            fn decide(&mut self, obs: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
                if self.crashed < 2 && obs.crash_budget_left > 0 {
                    let victim = ProcId(3 + self.crashed);
                    self.crashed += 1;
                    return Decision::Crash(victim);
                }
                self.inner.decide(obs, enabled)
            }
            fn name(&self) -> &'static str {
                "crash-two-then-fair"
            }
        }

        let report = sim
            .run(&mut CrashTwoThenFair {
                inner: RandomAdversary::with_seed(5),
                crashed: 0,
            })
            .unwrap();
        for i in 0..3 {
            assert_eq!(
                report.outcome(ProcId(i)),
                Some(Outcome::Win),
                "correct processor {i} must terminate despite 2 crashes"
            );
        }
        assert_eq!(report.crashed.len(), 2);
        assert_eq!(report.outcome(ProcId(3)), None);
    }
}
