//! Adversarial schedulers.
//!
//! The paper's adversary is a *strong adaptive* one: before every step it may
//! inspect all local state — including the outcome of coin flips — and then
//! decide which processor takes a step, which message is delivered, and which
//! processors crash (up to `t < n/2`). A mathematical adversary quantifies
//! over every such strategy; this module implements the concrete strategies
//! the paper reasons about, plus generic ones:
//!
//! * [`RandomAdversary`] — picks uniformly among enabled events (a fair,
//!   non-malicious scheduler; useful as a baseline and for soak tests).
//! * [`ObliviousAdversary`] — a *weak* adversary whose schedule is a fixed
//!   pseudo-random function of the event index only (it ignores all state),
//!   matching the weak-adversary model of AA11 / GW12a.
//! * [`SequentialAdversary`] — runs participants one at a time to completion.
//!   Section 3.2 of the paper shows this forces Ω(√n) survivors for the
//!   fixed-bias PoisonPill, which experiment E1/E8 reproduces.
//! * [`CoinAwareAdversary`] — the strong-adversary strategy sketched in the
//!   introduction: inspect coin flips and schedule every processor that
//!   flipped 0 ahead of any processor that flipped 1, trying to maximise
//!   survivors.
//! * [`CrashingAdversary`] — wraps any adversary with a [`CrashPlan`] that
//!   crashes chosen processors at chosen points of the execution.
//!
//! Two combinators support the schedule-exploration subsystem
//! (`fle_explore`): [`RecordingAdversary`] taps any adversary and records its
//! decisions into a replayable [`DecisionTrace`], and [`ReplayAdversary`]
//! plays such a trace back — tolerating edits, which is what lets a
//! delta-debugging shrinker drop decision chunks and still obtain a valid
//! execution.

use crate::observation::{Decision, EnabledEvent, EnabledEvents, ProcessPhase, SystemObservation};
use crate::trace::DecisionTrace;
use fle_model::ProcId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A scheduling strategy for the strong adaptive adversary.
///
/// `enabled` is an indexed view over the engine's incrementally maintained
/// event set (never empty). Index-picking adversaries should use
/// [`EnabledEvents::len`] and return `Decision::Schedule(index)` without
/// iterating; state-inspecting adversaries iterate with
/// [`EnabledEvents::iter`], which costs time linear in the number of enabled
/// events.
///
/// Adversaries must be [`Send`] so the partitioned simulator can hand each
/// partition's adversary to its worker thread.
pub trait Adversary: Send {
    /// Choose the next event (or a crash). `enabled` is never empty.
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision;

    /// Human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        (**self).decide(observation, enabled)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Picks uniformly at random among enabled events. Fair with probability 1.
#[derive(Debug, Clone)]
pub struct RandomAdversary {
    rng: ChaCha8Rng,
}

impl RandomAdversary {
    /// A random scheduler with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        RandomAdversary {
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Adversary for RandomAdversary {
    fn decide(
        &mut self,
        _observation: &SystemObservation,
        enabled: &EnabledEvents<'_>,
    ) -> Decision {
        Decision::Schedule(self.rng.gen_range(0..enabled.len()))
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// A weak (oblivious) adversary: the schedule is a fixed pseudo-random
/// function of the number of events executed so far, independent of any
/// processor state or coin flip.
#[derive(Debug, Clone)]
pub struct ObliviousAdversary {
    seed: u64,
}

impl ObliviousAdversary {
    /// An oblivious scheduler whose fixed schedule is derived from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        ObliviousAdversary { seed }
    }
}

impl Adversary for ObliviousAdversary {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        // splitmix64 of (seed, event index): depends only on predetermined data.
        let mut x = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(observation.events_executed + 1));
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        Decision::Schedule((x % enabled.len() as u64) as usize)
    }

    fn name(&self) -> &'static str {
        "oblivious"
    }
}

/// Runs participants sequentially: all events that advance the lowest-indexed
/// unfinished participant are scheduled before anyone else moves.
///
/// This is the schedule used in Section 3.2 of the paper to show that the
/// fixed-bias PoisonPill cannot beat Ω(√n) expected survivors.
#[derive(Debug, Clone, Default)]
pub struct SequentialAdversary;

impl SequentialAdversary {
    /// A sequential scheduler.
    pub fn new() -> Self {
        SequentialAdversary
    }
}

impl Adversary for SequentialAdversary {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        // The participant currently being "run to completion": the live
        // participant with the smallest id that still has an enabled event.
        let mut preferred: Option<(usize, usize)> = None; // (proc index, event index)
        for (event_index, event) in enabled.iter().enumerate() {
            let advances = event.advances();
            let phase = observation.process(advances).phase;
            let is_live = matches!(
                phase,
                ProcessPhase::NotStarted | ProcessPhase::StepReady | ProcessPhase::AwaitingQuorum
            );
            if !is_live {
                continue;
            }
            match preferred {
                Some((best_proc, _)) if best_proc <= advances.index() => {}
                _ => preferred = Some((advances.index(), event_index)),
            }
        }
        match preferred {
            Some((_, event_index)) => Decision::Schedule(event_index),
            // Only bookkeeping deliveries remain (replies to finished
            // processors); flush the oldest one.
            None => Decision::Schedule(0),
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// The coin-inspecting strong adversary sketched in the paper's introduction:
/// it looks at every visible coin flip and gives strict priority to
/// processors that flipped 0 (low priority), hoping to let them finish their
/// phase before any high-priority processor becomes visible, thereby
/// maximising the number of survivors.
#[derive(Debug, Clone)]
pub struct CoinAwareAdversary {
    tie_breaker: ChaCha8Rng,
}

impl CoinAwareAdversary {
    /// A coin-inspecting adversary; `seed` only breaks ties among equally
    /// attractive events.
    pub fn with_seed(seed: u64) -> Self {
        CoinAwareAdversary {
            tie_breaker: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn priority(observation: &SystemObservation, event: &EnabledEvent) -> u8 {
        let advances = event.advances();
        let phase = observation.process(advances).phase;
        if matches!(
            phase,
            ProcessPhase::Finished | ProcessPhase::Crashed | ProcessPhase::Idle
        ) {
            return 3;
        }
        match observation.coin_of(advances) {
            // Processors whose visible coin is 0: run them first so they
            // complete before observing any high-priority processor.
            Some(false) => 0,
            // Processors that have not flipped yet: let them reach the flip.
            None => 1,
            // Processors that flipped 1: stall them as long as possible.
            Some(true) => 2,
        }
    }
}

impl Adversary for CoinAwareAdversary {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        let best = enabled
            .iter()
            .map(|event| Self::priority(observation, &event))
            .min()
            .unwrap_or(3);
        let candidates: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(_, event)| Self::priority(observation, event) == best)
            .map(|(index, _)| index)
            .collect();
        let pick = candidates[self.tie_breaker.gen_range(0..candidates.len())];
        Decision::Schedule(pick)
    }

    fn name(&self) -> &'static str {
        "coin-aware"
    }
}

/// When and whom to crash.
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    /// `(after_events, victim)` pairs: once the execution has performed at
    /// least `after_events` events, crash `victim`.
    pub scheduled: Vec<(u64, ProcId)>,
}

impl CrashPlan {
    /// No crashes.
    pub fn none() -> Self {
        CrashPlan::default()
    }

    /// Crash all the given victims immediately (before any protocol step).
    pub fn immediately(victims: impl IntoIterator<Item = ProcId>) -> Self {
        CrashPlan {
            scheduled: victims.into_iter().map(|v| (0, v)).collect(),
        }
    }

    /// Crash `victim` once at least `after_events` events have executed.
    #[must_use]
    pub fn and_then(mut self, after_events: u64, victim: ProcId) -> Self {
        self.scheduled.push((after_events, victim));
        self
    }
}

/// Wraps an inner adversary and injects crashes according to a [`CrashPlan`].
#[derive(Debug, Clone)]
pub struct CrashingAdversary<A> {
    inner: A,
    plan: CrashPlan,
    next: usize,
}

impl<A: Adversary> CrashingAdversary<A> {
    /// Wrap `inner`, crashing processors according to `plan`.
    pub fn new(inner: A, plan: CrashPlan) -> Self {
        let mut plan = plan;
        plan.scheduled.sort_by_key(|(after, _)| *after);
        CrashingAdversary {
            inner,
            plan,
            next: 0,
        }
    }
}

impl<A: Adversary> Adversary for CrashingAdversary<A> {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        if self.next < self.plan.scheduled.len() {
            let (after, victim) = self.plan.scheduled[self.next];
            let already_crashed =
                matches!(observation.process(victim).phase, ProcessPhase::Crashed);
            if observation.events_executed >= after {
                self.next += 1;
                if !already_crashed && observation.crash_budget_left > 0 {
                    return Decision::Crash(victim);
                }
            }
        }
        self.inner.decide(observation, enabled)
    }

    fn name(&self) -> &'static str {
        "crashing"
    }
}

/// Taps an inner adversary and records every decision it makes into a
/// [`DecisionTrace`].
///
/// Because the engine is deterministic given its seed, the recorded trace
/// plus the [`crate::SimConfig`] fully determine the execution; feeding the
/// trace to a [`ReplayAdversary`] reproduces it. The explorer wraps every
/// attack strategy in one of these so that any violation it finds comes with
/// a replayable counterexample for free.
#[derive(Debug, Clone)]
pub struct RecordingAdversary<A> {
    inner: A,
    trace: DecisionTrace,
}

impl<A: Adversary> RecordingAdversary<A> {
    /// Record the decisions of `inner`.
    pub fn new(inner: A) -> Self {
        RecordingAdversary {
            inner,
            trace: DecisionTrace::new(),
        }
    }

    /// The decisions recorded so far.
    pub fn trace(&self) -> &DecisionTrace {
        &self.trace
    }

    /// Consume the recorder, keeping only the trace.
    pub fn into_trace(self) -> DecisionTrace {
        self.trace
    }
}

impl<A: Adversary> Adversary for RecordingAdversary<A> {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        let decision = self.inner.decide(observation, enabled);
        self.trace.push(decision);
        decision
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Replays a [`DecisionTrace`], sanitizing decisions that no longer apply.
///
/// The replayer is deliberately *tolerant*: the shrinker and the coverage
/// explorer's mutation engine edit traces (drop chunks, truncate, splice),
/// which shifts the meaning of later indices, so a faithful-or-fail replayer
/// would reject almost every edit. Instead:
///
/// * `Schedule(i)` is clamped to `min(i, enabled.len() − 1)` — an unedited
///   trace is replayed verbatim (indices are always in range when nothing
///   was dropped), an edited one stays a *valid* schedule. This is a true
///   clamp, **not** a modulo wrap: wrapping would silently re-aim a large
///   edited index at an arbitrary unrelated event near the front of the
///   queue, whereas clamping deterministically picks the newest enabled
///   event — the nearest in-range neighbour of the intent the index
///   recorded;
/// * `Crash(p)` is replayed only while it is legal (budget left, victim
///   alive); otherwise the oldest enabled event is scheduled instead;
/// * once the trace is exhausted the replayer keeps scheduling the oldest
///   enabled event (index 0), a deterministic completion rule;
/// * a trace **longer than the run consumes** executes exactly its consumed
///   prefix — the dead tail cannot affect the execution, and
///   [`DecisionTrace::truncated`]`(`[`ReplayAdversary::consumed`]`())` is
///   the equivalent minimal trace (the documented truncate-to-consumed
///   behaviour, pinned by a regression test).
///
/// Any violation found under replay is therefore a genuine counterexample —
/// the schedule executed is exactly the (sanitized) decision sequence, and
/// re-running it is deterministic.
#[derive(Debug, Clone)]
pub struct ReplayAdversary {
    decisions: Vec<Decision>,
    next: usize,
}

impl ReplayAdversary {
    /// Replay `trace` from the beginning.
    pub fn new(trace: &DecisionTrace) -> Self {
        ReplayAdversary {
            decisions: trace.decisions().to_vec(),
            next: 0,
        }
    }

    /// Replay an explicit decision sequence.
    pub fn from_decisions(decisions: Vec<Decision>) -> Self {
        ReplayAdversary { decisions, next: 0 }
    }

    /// How many trace decisions have been consumed so far (fallback
    /// decisions made after exhaustion are not counted). The shrinker uses
    /// this to truncate a trace to the prefix that was actually needed
    /// before the violation fired.
    pub fn consumed(&self) -> usize {
        self.next
    }
}

impl Adversary for ReplayAdversary {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        let Some(&decision) = self.decisions.get(self.next) else {
            // Trace exhausted: deterministic completion (oldest event first).
            return Decision::Schedule(0);
        };
        self.next += 1;
        match decision {
            Decision::Schedule(index) => Decision::Schedule(index.min(enabled.len() - 1)),
            Decision::Crash(victim) => {
                let legal = victim.index() < observation.n
                    && observation.crash_budget_left > 0
                    && !matches!(observation.process(victim).phase, ProcessPhase::Crashed);
                if legal {
                    Decision::Crash(victim)
                } else {
                    Decision::Schedule(0)
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use crate::observation::ProcessObservation;
    use fle_model::LocalStateView;

    fn observation(phases: Vec<(ProcessPhase, Option<bool>)>) -> SystemObservation {
        let processes = phases
            .into_iter()
            .enumerate()
            .map(|(i, (phase, coin))| ProcessObservation {
                proc: ProcId(i),
                phase,
                local_state: Some(LocalStateView::new("t", "t").with_coin(coin)),
            })
            .collect();
        SystemObservation {
            n: 3,
            events_executed: 0,
            crash_budget_left: 1,
            processes,
        }
    }

    #[test]
    fn sequential_prefers_lowest_live_participant() {
        let obs = observation(vec![
            (ProcessPhase::Finished, None),
            (ProcessPhase::StepReady, None),
            (ProcessPhase::StepReady, None),
        ]);
        let enabled = vec![EnabledEvent::Step(ProcId(2)), EnabledEvent::Step(ProcId(1))];
        let mut adversary = SequentialAdversary::new();
        assert_eq!(
            adversary.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(1)
        );
        assert_eq!(adversary.name(), "sequential");
    }

    #[test]
    fn coin_aware_prefers_zero_flippers() {
        let obs = observation(vec![
            (ProcessPhase::StepReady, Some(true)),
            (ProcessPhase::StepReady, Some(false)),
            (ProcessPhase::StepReady, None),
        ]);
        let enabled = vec![
            EnabledEvent::Step(ProcId(0)),
            EnabledEvent::Step(ProcId(1)),
            EnabledEvent::Step(ProcId(2)),
        ];
        let mut adversary = CoinAwareAdversary::with_seed(0);
        assert_eq!(
            adversary.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(1),
            "the 0-flipper must be scheduled before the 1-flipper and the undecided"
        );
    }

    #[test]
    fn coin_aware_delivery_priority_follows_advanced_processor() {
        let obs = observation(vec![
            (ProcessPhase::AwaitingQuorum, Some(true)),
            (ProcessPhase::AwaitingQuorum, Some(false)),
            (ProcessPhase::Idle, None),
        ]);
        let enabled = vec![
            EnabledEvent::Deliver {
                id: MessageId(0),
                from: ProcId(2),
                to: ProcId(0),
                is_request: false,
            },
            EnabledEvent::Deliver {
                id: MessageId(1),
                from: ProcId(2),
                to: ProcId(1),
                is_request: false,
            },
        ];
        let mut adversary = CoinAwareAdversary::with_seed(1);
        assert_eq!(
            adversary.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(1)
        );
    }

    #[test]
    fn oblivious_ignores_state() {
        let obs_a = observation(vec![(ProcessPhase::StepReady, Some(true))]);
        let obs_b = observation(vec![(ProcessPhase::StepReady, Some(false))]);
        let enabled = vec![
            EnabledEvent::Step(ProcId(0)),
            EnabledEvent::Step(ProcId(0)),
            EnabledEvent::Step(ProcId(0)),
        ];
        let mut adversary = ObliviousAdversary::with_seed(9);
        let a = adversary.decide(&obs_a, &EnabledEvents::from_slice(&enabled));
        let mut adversary = ObliviousAdversary::with_seed(9);
        let b = adversary.decide(&obs_b, &EnabledEvents::from_slice(&enabled));
        assert_eq!(
            a, b,
            "the weak adversary's schedule does not depend on coins"
        );
    }

    #[test]
    fn crashing_adversary_follows_plan_then_delegates() {
        let obs = observation(vec![
            (ProcessPhase::StepReady, None),
            (ProcessPhase::StepReady, None),
            (ProcessPhase::StepReady, None),
        ]);
        let enabled = vec![EnabledEvent::Step(ProcId(0))];
        let plan = CrashPlan::immediately([ProcId(2)]);
        let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(1), plan);
        assert_eq!(
            adversary.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Crash(ProcId(2))
        );
        // Plan exhausted: delegate to the inner adversary.
        assert!(matches!(
            adversary.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(_)
        ));
    }

    #[test]
    fn recording_adversary_captures_the_exact_decisions() {
        let obs = observation(vec![(ProcessPhase::StepReady, None); 3]);
        let enabled = vec![EnabledEvent::Step(ProcId(0)); 4];
        let mut recorder = RecordingAdversary::new(RandomAdversary::with_seed(9));
        let mut reference = RandomAdversary::with_seed(9);
        let mut expected = Vec::new();
        for _ in 0..6 {
            let d = recorder.decide(&obs, &EnabledEvents::from_slice(&enabled));
            expected.push(reference.decide(&obs, &EnabledEvents::from_slice(&enabled)));
            assert_eq!(d, *expected.last().unwrap());
        }
        assert_eq!(recorder.trace().decisions(), expected.as_slice());
        assert_eq!(recorder.name(), "random");
        assert_eq!(recorder.into_trace().len(), 6);
    }

    #[test]
    fn replay_adversary_clamps_and_falls_back() {
        let obs = observation(vec![(ProcessPhase::StepReady, None); 3]);
        let enabled = vec![EnabledEvent::Step(ProcId(0)); 3];
        let trace: DecisionTrace = [
            Decision::Schedule(2),
            Decision::Schedule(7), // out of range after an edit: clamped to 2
            Decision::Crash(ProcId(1)),
            Decision::Crash(ProcId(9)), // invalid victim: sanitized
        ]
        .into_iter()
        .collect();
        let mut replay = ReplayAdversary::new(&trace);
        let view = EnabledEvents::from_slice(&enabled);
        assert_eq!(replay.decide(&obs, &view), Decision::Schedule(2));
        assert_eq!(
            replay.decide(&obs, &view),
            Decision::Schedule(2),
            "an out-of-range index clamps to the last enabled event instead \
             of silently wrapping to an unrelated early one"
        );
        assert_eq!(replay.decide(&obs, &view), Decision::Crash(ProcId(1)));
        assert_eq!(replay.decide(&obs, &view), Decision::Schedule(0));
        assert_eq!(replay.consumed(), 4);
        // Exhausted: deterministic completion, not counted as consumed.
        assert_eq!(replay.decide(&obs, &view), Decision::Schedule(0));
        assert_eq!(replay.consumed(), 4);
        assert_eq!(replay.name(), "replay");
    }

    #[test]
    fn replay_adversary_truncates_to_consumed_instead_of_wrapping() {
        // Regression (issue 10): a trace longer than the run consumes must
        // behave exactly like its consumed prefix — the decisions past the
        // consumption point are dead weight, not a hidden influence. Here
        // the "run" consumes only 3 decisions; the equivalent trace is the
        // truncation, decision for decision, and the clamp of in-run
        // indices is a min(), never a modulo.
        let obs = observation(vec![(ProcessPhase::StepReady, None); 3]);
        let enabled = vec![EnabledEvent::Step(ProcId(0)); 4];
        let view = EnabledEvents::from_slice(&enabled);
        let long: DecisionTrace = [
            Decision::Schedule(3),
            Decision::Schedule(100), // clamps to 3, NOT 100 % 4 == 0
            Decision::Schedule(1),
            Decision::Schedule(2), // never consumed by the 3-decision "run"
            Decision::Crash(ProcId(0)),
        ]
        .into_iter()
        .collect();

        let mut replay = ReplayAdversary::new(&long);
        let run: Vec<Decision> = (0..3).map(|_| replay.decide(&obs, &view)).collect();
        assert_eq!(
            run,
            vec![
                Decision::Schedule(3),
                Decision::Schedule(3),
                Decision::Schedule(1)
            ]
        );
        assert_eq!(replay.consumed(), 3);

        // The truncated trace replays the identical decision sequence and
        // then completes deterministically.
        let truncated = long.truncated(replay.consumed());
        assert_eq!(truncated.len(), 3);
        let mut replay = ReplayAdversary::new(&truncated);
        let rerun: Vec<Decision> = (0..4).map(|_| replay.decide(&obs, &view)).collect();
        assert_eq!(rerun[..3], run[..]);
        assert_eq!(rerun[3], Decision::Schedule(0), "deterministic completion");
        assert_eq!(replay.consumed(), 3, "the tail was truly dead weight");
    }

    #[test]
    fn replay_adversary_respects_the_crash_budget() {
        let mut obs = observation(vec![(ProcessPhase::StepReady, None); 3]);
        obs.crash_budget_left = 0;
        let enabled = vec![EnabledEvent::Step(ProcId(0))];
        let mut replay = ReplayAdversary::from_decisions(vec![Decision::Crash(ProcId(1))]);
        assert_eq!(
            replay.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(0),
            "a crash with no budget left must degrade to a schedule"
        );
    }

    #[test]
    fn boxed_adversaries_delegate() {
        let obs = observation(vec![(ProcessPhase::StepReady, None)]);
        let enabled = vec![EnabledEvent::Step(ProcId(0))];
        let mut boxed: Box<dyn Adversary> = Box::new(SequentialAdversary::new());
        assert_eq!(boxed.name(), "sequential");
        assert_eq!(
            boxed.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(0)
        );
    }

    #[test]
    fn random_adversary_always_schedules_within_bounds() {
        let obs = observation(vec![(ProcessPhase::StepReady, None)]);
        let enabled = vec![EnabledEvent::Step(ProcId(0)); 5];
        let mut adversary = RandomAdversary::with_seed(3);
        for _ in 0..100 {
            match adversary.decide(&obs, &EnabledEvents::from_slice(&enabled)) {
                Decision::Schedule(i) => assert!(i < enabled.len()),
                Decision::Crash(_) => panic!("random adversary never crashes"),
            }
        }
    }
}
