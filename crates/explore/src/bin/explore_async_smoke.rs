//! CI smoke sweep for schedule exploration of the **task executor**.
//!
//! The async twin of `explore_shm_smoke`: runs the full attack library
//! against every healthy scenario at n ∈ {4, 8} on the task-multiplexed
//! executor (participants as cooperative tasks behind the same schedule
//! gates, serialized under adversary-chosen interleavings), with fixed
//! seeds, and asserts that **zero** violations are found — the paper's
//! invariants must survive every strategy on the backend that multiplexes
//! thousands of participants per OS thread. As a positive control it then
//! hunts the two sabotaged protocol variants on the same substrate and
//! asserts both *are* caught, that the election counterexample replays
//! deterministically from its recorded decision trace, and that ddmin
//! shrinks it. The shrunk trace is printed in the compact `s<i>`/`c<p>`
//! codec so a failure can be replayed straight from the CI log (see
//! EXPERIMENTS.md).
//!
//! Exit code 0 = all clean and both mutants caught; 1 otherwise. The grid is
//! sized to finish in well under a minute on one core.

use fle_explore::sabotage::{SabotagedElectionScenario, SabotagedSiftScenario};
use fle_explore::{
    replay_exec, shrink_exec, standard_scenarios, ExploreBackend, Explorer, Scenario, ShmConfig,
};

fn main() {
    let config = ShmConfig::default();
    let backend = ExploreBackend::Async(config);
    let mut failures = 0usize;

    println!("== explore-async-smoke: healthy scenarios on the task executor (must be clean) ==");
    for scenario in standard_scenarios(&[4, 8]) {
        let report = Explorer::new(scenario.as_ref())
            .with_backend(backend)
            .with_sim_seeds(0..4)
            .with_strategy_seeds(0..2)
            .hunt();
        let status = if report.violations.is_empty() {
            "clean"
        } else {
            failures += 1;
            "VIOLATED"
        };
        println!(
            "  {:<40} {:>3} episodes  {status}",
            scenario.name(),
            report.episodes
        );
        for violation in &report.violations {
            println!("    !! {violation}");
        }
    }

    println!("== explore-async-smoke: sabotaged mutants (must be caught) ==");
    let election = SabotagedElectionScenario { n: 4, k: 4 };
    let hunt = Explorer::new(&election)
        .with_backend(backend)
        .with_sim_seeds(0..8)
        .hunt();
    match hunt.first_violation() {
        Some(found) => {
            let (replay_a, consumed_a) =
                replay_exec(&election, found.plan.sim_seed, &found.decisions, &config);
            let (replay_b, consumed_b) =
                replay_exec(&election, found.plan.sim_seed, &found.decisions, &config);
            let deterministic = replay_a == replay_b
                && consumed_a == consumed_b
                && replay_a.as_ref().map(|v| v.oracle) == Some(found.violation.oracle);
            if !deterministic {
                failures += 1;
                println!(
                    "  {:<40} REPLAY NOT DETERMINISTIC ({replay_a:?} vs {replay_b:?})",
                    election.name()
                );
            }
            let minimal = shrink_exec(&election, found, 300, &config);
            println!(
                "  {:<40} caught ({}; trace {} -> {} decisions in {} replays)",
                election.name(),
                found.violation.oracle,
                minimal.original_len,
                minimal.minimized.len(),
                minimal.replays
            );
            println!(
                "    replay with: sim seed {}, trace \"{}\"",
                found.plan.sim_seed,
                minimal.minimized.to_compact_string()
            );
        }
        None => {
            failures += 1;
            println!("  {:<40} NOT CAUGHT", election.name());
        }
    }
    let sift = SabotagedSiftScenario { n: 4, bias: 0.1 };
    let hunt = Explorer::new(&sift)
        .with_backend(backend)
        .with_sim_seeds(0..8)
        .hunt();
    match hunt.first_violation() {
        Some(found) => println!("  {:<40} caught ({})", sift.name(), found.violation.oracle),
        None => {
            failures += 1;
            println!("  {:<40} NOT CAUGHT", sift.name());
        }
    }

    if failures > 0 {
        println!("explore-async-smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("explore-async-smoke: ok");
}
