//! CI smoke sweep for the schedule explorer.
//!
//! Runs the full attack library against every healthy scenario at n ∈ {4, 8}
//! with fixed seeds and asserts that **zero** violations are found — the
//! paper's invariants must survive every strategy in the library. As a
//! positive control (the sweep must be able to fail), it then hunts the two
//! sabotaged protocol variants and asserts that both *are* caught and that
//! the election counterexample shrinks.
//!
//! Exit code 0 = all clean and both mutants caught; 1 otherwise. The grid is
//! sized to finish in well under a minute on one core.

use fle_explore::sabotage::{SabotagedElectionScenario, SabotagedSiftScenario};
use fle_explore::{shrink, standard_scenarios, Explorer, Scenario};

fn main() {
    let mut failures = 0usize;

    println!("== explore-smoke: healthy scenarios (must be clean) ==");
    for scenario in standard_scenarios(&[4, 8]) {
        let report = Explorer::new(scenario.as_ref())
            .with_sim_seeds(0..4)
            .with_strategy_seeds(0..2)
            .hunt();
        let status = if report.violations.is_empty() {
            "clean"
        } else {
            failures += 1;
            "VIOLATED"
        };
        println!(
            "  {:<40} {:>3} episodes  {status}",
            scenario.name(),
            report.episodes
        );
        for violation in &report.violations {
            println!("    !! {violation}");
        }
    }

    println!("== explore-smoke: sabotaged mutants (must be caught) ==");
    let election = SabotagedElectionScenario { n: 8, k: 8 };
    let hunt = Explorer::new(&election).with_sim_seeds(0..8).hunt();
    match hunt.first_violation() {
        Some(found) => {
            let minimal = shrink(&election, found, 300);
            println!(
                "  {:<40} caught ({}; trace {} -> {} decisions in {} replays)",
                election.name(),
                found.violation.oracle,
                minimal.original_len,
                minimal.minimized.len(),
                minimal.replays
            );
        }
        None => {
            failures += 1;
            println!("  {:<40} NOT CAUGHT", election.name());
        }
    }
    let sift = SabotagedSiftScenario { n: 4, bias: 0.1 };
    let hunt = Explorer::new(&sift).with_sim_seeds(0..8).hunt();
    match hunt.first_violation() {
        Some(found) => println!("  {:<40} caught ({})", sift.name(), found.violation.oracle),
        None => {
            failures += 1;
            println!("  {:<40} NOT CAUGHT", sift.name());
        }
    }

    if failures > 0 {
        println!("explore-smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("explore-smoke: ok");
}
