//! CI smoke for the coverage-guided schedule search.
//!
//! Three layers, sized to finish in well under a minute:
//!
//! 1. **Healthy scenarios** at n ∈ {4, 8}: a seeded + mutation coverage hunt
//!    finds zero violations, the coverage growth curve is monotone, and the
//!    corpus retains at least one interesting trace per scenario.
//! 2. **Sabotage mutants** (the DropWrites election and the PoisonPill
//!    sifter): [`compare_kill_time`] runs the blind strategy grid and the
//!    guided hunt over the same seeds and budget; the guided hunt must kill
//!    both mutants within 2× the blind episode count (median over master
//!    seeds).
//! 3. A `BENCH_coverage.json` document with the growth curves and the
//!    kill-time table, for `EXPERIMENTS.md`.
//!
//! Exit code 0 = all gates pass; 1 otherwise.

use fle_analysis::Table;
use fle_bench::json;
use fle_explore::sabotage::{SabotagedElectionScenario, SabotagedSiftScenario};
use fle_explore::{
    compare_kill_time, standard_scenarios, CoverageConfig, CoverageExplorer, ExploreBackend,
    Scenario,
};

fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Median of a non-empty sorted-on-demand sample.
fn median(values: &mut [usize]) -> usize {
    values.sort_unstable();
    values[values.len() / 2]
}

fn main() {
    let mut failures = 0usize;
    let threads = threads();

    println!("== coverage-smoke: healthy scenarios (clean, monotone growth) ==");
    let mut growth_table = Table::new(["scenario", "episodes", "distinct_features"]);
    for scenario in standard_scenarios(&[4, 8]) {
        let report = CoverageExplorer::new(scenario.as_ref())
            .with_config(CoverageConfig {
                budget: 48,
                batch: 12,
                sim_seeds: (0..4).collect(),
                ..CoverageConfig::default()
            })
            .with_threads(threads)
            .explore();
        let clean = report.violations.is_empty();
        let monotone = report.growth_is_monotone();
        let covered = report.distinct_features() > 0 && !report.corpus.is_empty();
        let status = if clean && monotone && covered {
            "ok"
        } else {
            failures += 1;
            "FAILED"
        };
        println!(
            "  {:<40} {:>3} episodes  {:>4} features  {:>2} corpus  {status}",
            scenario.name(),
            report.episodes,
            report.distinct_features(),
            report.corpus.len()
        );
        if !clean {
            println!(
                "    !! healthy scenario flagged: {:?}",
                report.violations[0].violation
            );
        }
        if !monotone {
            println!("    !! growth curve is not monotone: {:?}", report.growth);
        }
        for (episodes, features) in &report.growth {
            growth_table.add_row([
                scenario.name().to_string(),
                episodes.to_string(),
                features.to_string(),
            ]);
        }
    }

    println!("== coverage-smoke: mutation-kill time, guided vs blind ==");
    let mut kill_table = Table::new([
        "mutant",
        "master_seed",
        "blind_kill",
        "guided_kill",
        "budget",
    ]);
    let election = SabotagedElectionScenario { n: 4, k: 4 };
    let sift = SabotagedSiftScenario { n: 4, bias: 0.1 };
    let mutants: [(&dyn Scenario, &str); 2] = [(&election, "drop-writes"), (&sift, "poison-pill")];
    for (scenario, label) in mutants {
        let mut guided_kills = Vec::new();
        let mut blind_kill = None;
        let mut worst_ratio_ok = true;
        for master_seed in 0..5u64 {
            let config = CoverageConfig {
                budget: 160,
                batch: 16,
                master_seed,
                sim_seeds: (0..8).collect(),
                stop_on_violation: true,
                ..CoverageConfig::default()
            };
            let cmp = compare_kill_time(scenario, ExploreBackend::Sim, &config, threads);
            println!(
                "  {:<24} master_seed={master_seed}  blind={:?}  guided={:?}",
                scenario.name(),
                cmp.blind,
                cmp.guided
            );
            kill_table.add_row([
                label.to_string(),
                master_seed.to_string(),
                cmp.blind.map_or("miss".to_string(), |e| e.to_string()),
                cmp.guided.map_or("miss".to_string(), |e| e.to_string()),
                cmp.budget.to_string(),
            ]);
            worst_ratio_ok &= cmp.guided_within(2);
            blind_kill = cmp.blind;
            match cmp.guided {
                Some(episode) => guided_kills.push(episode),
                None => {
                    failures += 1;
                    println!("    !! guided hunt missed the {label} mutant");
                }
            }
        }
        if guided_kills.len() == 5 {
            let guided_median = median(&mut guided_kills);
            // The acceptance gate: guided median no worse than the blind
            // grid (which is deterministic, so a single number), and every
            // individual run within the 2x CI bound.
            let blind = blind_kill.unwrap_or(160);
            let status = if guided_median <= 2 * blind && worst_ratio_ok {
                "ok"
            } else {
                failures += 1;
                "FAILED"
            };
            println!("  {label:<24} guided median {guided_median} vs blind {blind}  {status}");
        }
    }

    json::write_multi_table_document(
        "coverage",
        "coverage-guided hunts: growth curves and kill-time comparison",
        &[("growth", &growth_table), ("kills", &kill_table)],
    );

    if failures > 0 {
        println!("coverage-smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("coverage-smoke: ok");
}
