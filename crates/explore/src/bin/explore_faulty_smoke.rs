//! CI smoke sweep for schedule exploration **under injected faults**.
//!
//! The robustness twin of `explore_shm_smoke`: the same attack strategies
//! and safety oracles hunt the concurrent backend, but every episode now
//! runs behind a seeded [`fle_runtime::FaultyMemory`] decorator
//! ([`ShmConfig::faults`]). Two sweeps:
//!
//! 1. **Healthy under benign faults** — operation delays and transient
//!    collect failures must be *masked*: the election stays correct under
//!    every strategy, so the hunt must come back clean. This is the claim
//!    that the paper's protocols tolerate slow and flaky (but live)
//!    processors.
//! 2. **Crash mutant caught** — a fault plan that fail-stops every
//!    participant after a few operations must be *detected* by the
//!    election-liveness oracle (everyone returns, nobody wins), its
//!    counterexample must replay deterministically from the recorded trace
//!    (faults are a pure function of the plan seed), and ddmin must shrink
//!    it. The shrunk trace is printed in the compact `s<i>`/`c<p>` codec so
//!    a failure can be replayed straight from the CI log.
//!
//! Exit code 0 = healthy clean and the crash mutant caught; 1 otherwise.
//! Sized to finish in seconds on one core.

use fle_explore::oracles::ELECTION_LIVENESS;
use fle_explore::{
    replay_shm, shrink_shm, ElectionScenario, ExploreBackend, Explorer, Scenario, ShmConfig,
};
use fle_runtime::{CrashSpec, FaultPlan};

fn main() {
    let mut failures = 0usize;

    println!("== explore-faulty-smoke: healthy election under benign faults (must be clean) ==");
    let benign = ShmConfig {
        faults: Some(
            FaultPlan::new(23)
                .with_delays(200, 80)
                .with_collect_failures(250, 3),
        ),
        ..ShmConfig::default()
    };
    for n in [4usize, 8] {
        let scenario = ElectionScenario { n, k: n };
        let report = Explorer::new(&scenario)
            .with_backend(ExploreBackend::Concurrent(benign))
            .with_sim_seeds(0..3)
            .with_strategy_seeds(0..2)
            .hunt();
        let status = if report.violations.is_empty() {
            "clean"
        } else {
            failures += 1;
            "VIOLATED"
        };
        println!(
            "  {:<40} {:>3} episodes  {status}",
            scenario.name(),
            report.episodes
        );
        for violation in &report.violations {
            println!("    !! {violation}");
        }
    }

    println!("== explore-faulty-smoke: fail-stop crash mutant (must be caught) ==");
    let crashing = ShmConfig {
        faults: Some(FaultPlan::new(7).with_crash(CrashSpec::lose_all(3))),
        ..ShmConfig::default()
    };
    let scenario = ElectionScenario { n: 4, k: 4 };
    let hunt = Explorer::new(&scenario)
        .with_backend(ExploreBackend::Concurrent(crashing))
        .with_sim_seeds(0..4)
        .hunt();
    match hunt.first_violation() {
        Some(found) => {
            if found.violation.oracle != ELECTION_LIVENESS {
                failures += 1;
                println!(
                    "  {:<40} caught by {} (expected {ELECTION_LIVENESS})",
                    scenario.name(),
                    found.violation.oracle
                );
            }
            let (replay_a, consumed_a) =
                replay_shm(&scenario, found.plan.sim_seed, &found.decisions, &crashing);
            let (replay_b, consumed_b) =
                replay_shm(&scenario, found.plan.sim_seed, &found.decisions, &crashing);
            let deterministic = replay_a == replay_b
                && consumed_a == consumed_b
                && replay_a.as_ref().map(|v| v.oracle) == Some(found.violation.oracle);
            if !deterministic {
                failures += 1;
                println!(
                    "  {:<40} REPLAY NOT DETERMINISTIC ({replay_a:?} vs {replay_b:?})",
                    scenario.name()
                );
            }
            let minimal = shrink_shm(&scenario, found, 300, &crashing);
            println!(
                "  {:<40} caught ({}; trace {} -> {} decisions in {} replays)",
                scenario.name(),
                found.violation.oracle,
                minimal.original_len,
                minimal.minimized.len(),
                minimal.replays
            );
            println!(
                "    replay with: sim seed {}, fault seed 7, trace \"{}\"",
                found.plan.sim_seed,
                minimal.minimized.to_compact_string()
            );
        }
        None => {
            failures += 1;
            println!("  {:<40} NOT CAUGHT", scenario.name());
        }
    }

    if failures > 0 {
        println!("explore-faulty-smoke: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("explore-faulty-smoke: ok");
}
