//! The exploration driver: fan seeded attack episodes across cores, evaluate
//! the oracles online, and record every violation as a replayable decision
//! trace.
//!
//! One *episode* is a deterministic execution: a [`Scenario`] installed into
//! a fresh simulator (seeded with `sim_seed`), driven by one attack strategy
//! (built from a [`StrategySpec`] with `strategy_seed`), with the scenario's
//! oracles checked after **every** event. The [`Explorer`] enumerates the
//! `strategy × sim_seed × strategy_seed` grid and fans the episodes over OS
//! threads with [`fle_bench::BatchRunner`]; because each episode is
//! deterministic and results come back in job order, a hunt's outcome is
//! bitwise independent of the thread count.

use crate::concurrent::{run_episode_exec, run_episode_shm, ShmConfig};
use crate::coverage::{CoverageProbe, NullProbe};
use crate::oracles::{budget_violation, OracleCtx, Violation};
use crate::partitioned::{run_episode_partitioned, PartitionedConfig};
use crate::scenario::Scenario;
use crate::strategies::StrategySpec;
use fle_bench::BatchRunner;
use fle_sim::{
    Adversary, DecisionTrace, RecordingAdversary, ReplayAdversary, SimConfig, SimError, Simulator,
};
use std::fmt;

/// Which execution substrate a hunt sweeps.
///
/// Episodes on both backends share the strategy library, the oracles, the
/// seed grids and the [`DecisionTrace`] codec; only the meaning of a
/// `Schedule(i)` decision differs (the i-th enabled simulator event versus
/// the i-th gated participant thread).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExploreBackend {
    /// The discrete-event simulator (`fle_sim::Simulator`).
    #[default]
    Sim,
    /// The schedule-controlled concurrent backend
    /// (`fle_runtime::SharedRegisters` behind `run_scheduled` gates).
    Concurrent(ShmConfig),
    /// The partitioned parallel simulator
    /// (`fle_sim::ParallelSimulator`): one adversary per partition, oracles
    /// checked at every super-round barrier, violations replayed by plan
    /// rather than by decision trace (see [`crate::partitioned`]).
    Partitioned(PartitionedConfig),
    /// The task-multiplexed executor behind the same schedule gates as
    /// [`ExploreBackend::Concurrent`]: identical strategies, oracles and
    /// trace codec, but participants are cooperative tasks on a shared
    /// worker pool instead of one OS thread each — so wide hunts do not
    /// multiply `episodes × participants` into thread counts.
    Async(ShmConfig),
}

/// The coordinates of one episode in the exploration grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodePlan {
    /// Which attack strategy drives the schedule.
    pub strategy: StrategySpec,
    /// Seed of the simulator (protocol coin flips).
    pub sim_seed: u64,
    /// Seed of the strategy's own randomness.
    pub strategy_seed: u64,
}

/// A violation found by the explorer, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Which invariant broke, and when.
    pub violation: Violation,
    /// The decision trace reproducing the violation via
    /// [`ReplayAdversary`] against the same scenario and `sim_seed`.
    pub decisions: DecisionTrace,
    /// The scenario name (for reports).
    pub scenario: String,
    /// The episode that found it.
    pub plan: EpisodePlan,
}

impl fmt::Display for FoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} under {} (sim seed {}, strategy seed {}): {} — replay with trace of {} decisions",
            self.scenario,
            self.plan.strategy,
            self.plan.sim_seed,
            self.plan.strategy_seed,
            self.violation,
            self.decisions.len()
        )
    }
}

/// The result of one episode.
#[derive(Debug, Clone)]
pub enum EpisodeOutcome {
    /// The execution completed with every oracle silent.
    Clean {
        /// Events the execution took.
        events: u64,
    },
    /// An oracle fired (or the engine's budget ran out).
    Violated(Box<FoundViolation>),
}

/// Outcome of driving one simulator under one adversary with oracles.
#[derive(Debug)]
pub(crate) enum DriveOutcome {
    /// Completed without a violation.
    Clean {
        /// Events the execution took.
        events: u64,
    },
    /// An oracle fired after the reported number of events.
    Violated(Violation),
}

/// Build the scenario's simulator, drive it under `adversary`, and check the
/// scenario's oracles after every event. Shared by the explorer (recording
/// adversaries), the shrinker (replay adversaries) and the coverage driver
/// (which passes a real [`CoverageProbe`]; everyone else passes
/// [`crate::coverage::NullProbe`]).
pub(crate) fn drive(
    scenario: &dyn Scenario,
    sim_seed: u64,
    adversary: &mut dyn Adversary,
    probe: &mut dyn CoverageProbe,
) -> DriveOutcome {
    let mut config = SimConfig::new(scenario.n()).with_seed(sim_seed);
    if let Some(budget) = scenario.max_events() {
        config = config.with_max_events(budget);
    }
    let engine_budget = config.max_events;
    let mut sim = Simulator::new(config);
    scenario.install(&mut sim);
    let participants = scenario.participants();
    let mut oracles = scenario.oracles();
    loop {
        match sim.step_once(adversary) {
            Ok(false) => {
                return DriveOutcome::Clean {
                    events: sim.events_executed(),
                }
            }
            Ok(true) => {
                let ctx = OracleCtx {
                    report: sim.report_so_far(),
                    observation: sim.observation(),
                    participants: &participants,
                    events_executed: sim.events_executed(),
                };
                probe.observe(&ctx);
                for oracle in &mut oracles {
                    if let Some(violation) = oracle.check(&ctx) {
                        return DriveOutcome::Violated(violation);
                    }
                }
            }
            Err(SimError::EventBudgetExhausted { .. }) => {
                // A schedule that cannot finish is a quiescence violation,
                // not an infrastructure error.
                return DriveOutcome::Violated(budget_violation(
                    engine_budget,
                    sim.events_executed(),
                ));
            }
            Err(error) => {
                // The adversaries in this crate only emit valid decisions;
                // anything else is a bug worth failing loudly on.
                panic!("exploration episode hit a simulator error: {error}");
            }
        }
    }
}

/// Run one episode: build the strategy, record its decisions, evaluate the
/// oracles online.
pub fn run_episode(scenario: &dyn Scenario, plan: &EpisodePlan) -> EpisodeOutcome {
    let mut recording = RecordingAdversary::new(plan.strategy.build(plan.strategy_seed));
    match drive(scenario, plan.sim_seed, &mut recording, &mut NullProbe) {
        DriveOutcome::Clean { events } => EpisodeOutcome::Clean { events },
        DriveOutcome::Violated(violation) => EpisodeOutcome::Violated(Box::new(FoundViolation {
            violation,
            decisions: recording.into_trace(),
            scenario: scenario.name(),
            plan: *plan,
        })),
    }
}

/// Replay a decision trace against the scenario; returns the violation it
/// reproduces (if any) and how many trace decisions were consumed before it
/// fired. Used by the shrinker and by tests asserting reproducibility.
pub fn replay(
    scenario: &dyn Scenario,
    sim_seed: u64,
    decisions: &DecisionTrace,
) -> (Option<Violation>, usize) {
    let mut replayer = ReplayAdversary::new(decisions);
    let outcome = drive(scenario, sim_seed, &mut replayer, &mut NullProbe);
    let consumed = replayer.consumed();
    match outcome {
        DriveOutcome::Violated(violation) => (Some(violation), consumed),
        DriveOutcome::Clean { .. } => (None, consumed),
    }
}

/// Summary of one hunt over the episode grid.
#[derive(Debug, Default)]
pub struct HuntReport {
    /// Total episodes executed.
    pub episodes: usize,
    /// Episodes that completed with every oracle silent.
    pub clean: usize,
    /// Total events executed across clean episodes.
    pub clean_events: u64,
    /// Every violation found, in deterministic grid order.
    pub violations: Vec<FoundViolation>,
}

impl HuntReport {
    /// The first violation in grid order, if any was found.
    pub fn first_violation(&self) -> Option<&FoundViolation> {
        self.violations.first()
    }
}

/// Fans seeded attack episodes over a scenario across all cores.
pub struct Explorer<'a> {
    scenario: &'a dyn Scenario,
    strategies: Vec<StrategySpec>,
    sim_seeds: Vec<u64>,
    strategy_seeds: Vec<u64>,
    runner: BatchRunner,
    backend: ExploreBackend,
}

impl<'a> Explorer<'a> {
    /// An explorer over `scenario` with the default attack library, sim
    /// seeds `0..8`, strategy seeds `0..2`, one worker per core, and the
    /// simulator backend.
    pub fn new(scenario: &'a dyn Scenario) -> Self {
        Explorer {
            scenario,
            strategies: StrategySpec::library(),
            sim_seeds: (0..8).collect(),
            strategy_seeds: (0..2).collect(),
            runner: BatchRunner::new(),
            backend: ExploreBackend::Sim,
        }
    }

    /// Hunt on a different execution substrate (default:
    /// [`ExploreBackend::Sim`]).
    #[must_use]
    pub fn with_backend(mut self, backend: ExploreBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replace the attack-strategy list.
    #[must_use]
    pub fn with_strategies(mut self, strategies: Vec<StrategySpec>) -> Self {
        self.strategies = strategies;
        self
    }

    /// Replace the simulator-seed list.
    #[must_use]
    pub fn with_sim_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.sim_seeds = seeds.into_iter().collect();
        self
    }

    /// Replace the strategy-seed list.
    #[must_use]
    pub fn with_strategy_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.strategy_seeds = seeds.into_iter().collect();
        self
    }

    /// Use an explicit thread count (the default is one per core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.runner = BatchRunner::with_threads(threads);
        self
    }

    /// The episode grid in deterministic order:
    /// strategy-major, then sim seed, then strategy seed.
    pub fn plans(&self) -> Vec<EpisodePlan> {
        let mut plans = Vec::new();
        for &strategy in &self.strategies {
            for &sim_seed in &self.sim_seeds {
                for &strategy_seed in &self.strategy_seeds {
                    plans.push(EpisodePlan {
                        strategy,
                        sim_seed,
                        strategy_seed,
                    });
                }
            }
        }
        plans
    }

    /// Run every episode of the grid (in parallel, deterministically) and
    /// collect the violations.
    pub fn hunt(&self) -> HuntReport {
        let plans = self.plans();
        let scenario = self.scenario;
        let backend = self.backend;
        let outcomes = self.runner.map(&plans, move |plan| match backend {
            ExploreBackend::Sim => run_episode(scenario, plan),
            ExploreBackend::Concurrent(config) => run_episode_shm(scenario, plan, &config),
            ExploreBackend::Partitioned(config) => run_episode_partitioned(scenario, plan, &config),
            ExploreBackend::Async(config) => run_episode_exec(scenario, plan, &config),
        });
        let mut report = HuntReport {
            episodes: plans.len(),
            ..HuntReport::default()
        };
        for outcome in outcomes {
            match outcome {
                EpisodeOutcome::Clean { events } => {
                    report.clean += 1;
                    report.clean_events += events;
                }
                EpisodeOutcome::Violated(found) => report.violations.push(*found),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ElectionScenario, SiftScenario};

    #[test]
    fn healthy_election_episodes_are_clean() {
        let scenario = ElectionScenario { n: 4, k: 4 };
        let report = Explorer::new(&scenario)
            .with_sim_seeds(0..2)
            .with_strategy_seeds(0..1)
            .with_threads(2)
            .hunt();
        assert_eq!(report.episodes, StrategySpec::library().len() * 2);
        assert_eq!(report.clean, report.episodes);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.first_violation().is_none());
        assert!(report.clean_events > 0);
    }

    #[test]
    fn hunts_are_deterministic_across_thread_counts() {
        let scenario = SiftScenario::heterogeneous(4);
        let serial = Explorer::new(&scenario)
            .with_sim_seeds(0..2)
            .with_threads(1)
            .hunt();
        let parallel = Explorer::new(&scenario)
            .with_sim_seeds(0..2)
            .with_threads(8)
            .hunt();
        assert_eq!(serial.clean, parallel.clean);
        assert_eq!(serial.clean_events, parallel.clean_events);
        assert_eq!(serial.violations.len(), parallel.violations.len());
    }

    #[test]
    fn plans_enumerate_the_full_grid() {
        let scenario = ElectionScenario { n: 2, k: 2 };
        let explorer = Explorer::new(&scenario)
            .with_strategies(vec![StrategySpec::SplitBrain { burst: 4 }])
            .with_sim_seeds([3, 5])
            .with_strategy_seeds([7]);
        let plans = explorer.plans();
        assert_eq!(plans.len(), 2);
        assert!(plans.iter().all(|p| p.strategy_seed == 7));
    }
}
