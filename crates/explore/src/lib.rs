//! Adversarial schedule exploration for the paper's protocols.
//!
//! The guarantees reproduced by this workspace — unique leader, tight
//! renaming, PoisonPill survivor bounds — are claimed *against an adaptive
//! adversary*, yet hand-written adversaries only ever exercise a handful of
//! schedules. This crate hunts for violating schedules systematically and
//! turns every hit into a minimal, replayable counterexample:
//!
//! 1. **Attack strategies** ([`strategies`]): parameterized adversaries —
//!    adaptive crash timing against the front-runner, targeted starvation,
//!    split-brain delivery orderings, seeded weighted random walks — all
//!    implemented against the engine's O(1) [`fle_sim::EnabledEvents`] view.
//! 2. **Safety oracles** ([`oracles`]): online monitors of the paper's
//!    invariants, evaluated after every executed event via the engine's
//!    step-wise API ([`fle_sim::Simulator::step_once`]), so an episode stops
//!    at the first bad event.
//! 3. **The explorer** ([`explorer`]): fans `scenario × strategy × seed`
//!    episodes across cores with [`fle_bench::BatchRunner`] and records each
//!    violating schedule as a [`fle_sim::DecisionTrace`] that
//!    [`fle_sim::ReplayAdversary`] reproduces deterministically.
//! 4. **The shrinker** ([`mod@shrink`]): delta-debugs a violating trace to a
//!    minimal counterexample by dropping decision chunks and keeping every
//!    edit after which the same oracle still fires.
//!
//! The [`sabotage`] module supplies intentionally broken protocol variants
//! ("skip the write" mutations) that the test suite uses to prove the whole
//! pipeline catches and minimizes real violations end to end.
//!
//! # Example
//!
//! Hunt a deliberately broken election and shrink the counterexample:
//!
//! ```
//! use fle_explore::sabotage::SabotagedElectionScenario;
//! use fle_explore::{shrink, Explorer};
//!
//! let scenario = SabotagedElectionScenario { n: 4, k: 4 };
//! let report = Explorer::new(&scenario).with_sim_seeds(0..6).hunt();
//! let found = report.first_violation().expect("the mutant gets caught");
//! let minimal = shrink(&scenario, found, 200);
//! assert!(minimal.minimized.len() <= found.decisions.len());
//! println!("replay with: {}", minimal.minimized.to_compact_string());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concurrent;
pub mod corpus;
pub mod coverage;
pub mod explorer;
pub mod mutate;
pub mod oracles;
pub mod partitioned;
pub mod sabotage;
pub mod scenario;
pub mod shrink;
pub mod strategies;

pub use concurrent::{replay_exec, replay_shm, run_episode_exec, run_episode_shm, ShmConfig};
pub use corpus::{Corpus, CorpusEntry};
pub use coverage::{
    compare_kill_time, trace_class, CoverageConfig, CoverageExplorer, CoverageProbe,
    CoverageReport, CoverageSignal, CoverageViolation, EpisodeOrigin, KillComparison, NullProbe,
    SignalProbe,
};
pub use explorer::{
    replay, run_episode, EpisodeOutcome, EpisodePlan, ExploreBackend, Explorer, FoundViolation,
    HuntReport,
};
pub use mutate::MutationEngine;
pub use oracles::{Oracle, OracleCtx, Violation};
pub use partitioned::{run_episode_partitioned, PartitionedConfig};
pub use scenario::{
    standard_scenarios, ElectionScenario, RenamingScenario, Scenario, SiftScenario,
};
pub use shrink::{shrink, shrink_exec, shrink_shm, shrink_with, ShrinkResult};
pub use strategies::{PreemptionBound, StrategySpec};
