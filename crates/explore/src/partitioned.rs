//! Schedule exploration on the **partitioned** simulator backend
//! ([`fle_sim::ParallelSimulator`]).
//!
//! An episode here is one adversarial-mode partitioned run: each partition
//! gets its own copy of the plan's attack strategy (seeded by a pure
//! function of the strategy seed and the partition index), and the
//! scenario's oracles are evaluated at every super-round barrier over the
//! merged report and observation. Checking per *round* rather than per
//! *event* is the natural granularity of this engine — within a round the
//! partitions advance concurrently and no global state exists to check.
//!
//! **Replay without a decision trace.** A partitioned episode is a pure
//! function of `(scenario, plan, partitions)`: the per-partition adversaries
//! are rebuilt from `plan.strategy`/`plan.strategy_seed`, every coin comes
//! from the per-processor streams of `plan.sim_seed`, and worker threads
//! cannot affect results. A [`FoundViolation`] from this backend therefore
//! carries an **empty** [`fle_sim::DecisionTrace`] — rerunning
//! [`run_episode_partitioned`] with the same arguments *is* the replay — and
//! the trace shrinker does not apply (there is no decision list to
//! minimize; shrink over the scenario/plan grid instead).

use crate::coverage::CoverageProbe;
use crate::explorer::{EpisodeOutcome, EpisodePlan, FoundViolation};
use crate::oracles::{budget_violation, OracleCtx};
use crate::scenario::Scenario;
use fle_model::splitmix64;
use fle_sim::{DecisionTrace, ParallelSimulator, SimConfig, SimError};

/// Configuration of the partitioned exploration backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionedConfig {
    /// Number of partitions (clamped to `1..=n` by the engine).
    pub partitions: usize,
    /// Worker-thread cap (0 = one per partition, up to the core count).
    /// Cannot affect episode outcomes; purely a resource knob.
    pub workers: usize,
}

impl Default for PartitionedConfig {
    fn default() -> Self {
        PartitionedConfig {
            partitions: 2,
            workers: 0,
        }
    }
}

/// Drive one partitioned run of `scenario` under per-partition adversaries
/// built by `build`, checking the scenario's oracles at every super-round
/// barrier. Returns the violation (if any) and the events executed. The
/// probe sees every barrier ctx the oracles see
/// ([`crate::coverage::NullProbe`] outside coverage hunts).
pub(crate) fn drive_partitioned(
    scenario: &dyn Scenario,
    sim_seed: u64,
    build: impl FnMut(usize, u64) -> Box<dyn fle_sim::Adversary>,
    config: &PartitionedConfig,
    probe: &mut dyn CoverageProbe,
) -> (Option<crate::oracles::Violation>, u64) {
    let mut sim_config = SimConfig::new(scenario.n())
        .with_seed(sim_seed)
        .with_partitions(config.partitions);
    if let Some(budget) = scenario.max_events() {
        sim_config = sim_config.with_max_events(budget);
    }
    let engine_budget = sim_config.max_events;
    let mut sim = ParallelSimulator::new(sim_config).with_workers(config.workers);
    for (proc, protocol) in scenario.protocols() {
        sim.add_participant(proc, protocol);
    }
    let participants = scenario.participants();
    let mut oracles = scenario.oracles();
    sim.set_adversaries(build);

    let violation = loop {
        match sim.step_round() {
            Ok(false) => break None,
            Ok(true) => {
                let report = sim.merged_report_so_far();
                let observation = sim.merged_observation();
                let ctx = OracleCtx {
                    report: &report,
                    observation: &observation,
                    participants: &participants,
                    events_executed: sim.events_executed(),
                };
                probe.observe(&ctx);
                let fired = oracles.iter_mut().find_map(|oracle| oracle.check(&ctx));
                if fired.is_some() {
                    break fired;
                }
            }
            Err(SimError::EventBudgetExhausted { .. }) => {
                break Some(budget_violation(engine_budget, sim.events_executed()));
            }
            Err(error) => {
                panic!("partitioned exploration episode hit a simulator error: {error}");
            }
        }
    };
    (violation, sim.events_executed())
}

/// Run one episode of `plan` against `scenario` on the partitioned backend,
/// evaluating the scenario's oracles at every super-round barrier.
pub fn run_episode_partitioned(
    scenario: &dyn Scenario,
    plan: &EpisodePlan,
    config: &PartitionedConfig,
) -> EpisodeOutcome {
    let strategy = plan.strategy;
    let strategy_seed = plan.strategy_seed;
    // Mix the partition-unique engine seed into the strategy seed so the
    // partitions run distinct (but reproducible) copies of the attack.
    let (violation, events) = drive_partitioned(
        scenario,
        plan.sim_seed,
        |_part, seed| strategy.build(splitmix64(seed ^ strategy_seed)),
        config,
        &mut crate::coverage::NullProbe,
    );
    match violation {
        None => EpisodeOutcome::Clean { events },
        Some(violation) => EpisodeOutcome::Violated(Box::new(FoundViolation {
            violation,
            // Deliberately empty: see the module docs — the episode plan is
            // the replay token on this backend.
            decisions: DecisionTrace::default(),
            scenario: scenario.name(),
            plan: *plan,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabotage::SabotagedElectionScenario;
    use crate::scenario::ElectionScenario;
    use crate::strategies::StrategySpec;

    fn plan(strategy: StrategySpec, sim_seed: u64) -> EpisodePlan {
        EpisodePlan {
            strategy,
            sim_seed,
            strategy_seed: 0,
        }
    }

    #[test]
    fn healthy_election_episodes_are_clean_when_partitioned() {
        let scenario = ElectionScenario { n: 8, k: 8 };
        let config = PartitionedConfig::default();
        for strategy in StrategySpec::library() {
            for sim_seed in 0..2 {
                match run_episode_partitioned(&scenario, &plan(strategy, sim_seed), &config) {
                    EpisodeOutcome::Clean { events } => assert!(events > 0),
                    EpisodeOutcome::Violated(found) => {
                        panic!("healthy election flagged: {found}")
                    }
                }
            }
        }
    }

    #[test]
    fn sabotaged_election_is_caught_when_partitioned() {
        let scenario = SabotagedElectionScenario { n: 8, k: 8 };
        let config = PartitionedConfig::default();
        let mut caught = false;
        'outer: for strategy in StrategySpec::library() {
            for sim_seed in 0..8 {
                if let EpisodeOutcome::Violated(found) =
                    run_episode_partitioned(&scenario, &plan(strategy, sim_seed), &config)
                {
                    assert_eq!(found.violation.oracle, "unique-leader");
                    assert!(
                        found.decisions.is_empty(),
                        "partitioned violations replay by plan, not by trace"
                    );
                    caught = true;
                    break 'outer;
                }
            }
        }
        assert!(caught, "the sabotaged election must be caught");
    }

    #[test]
    fn episodes_are_deterministic_across_worker_counts() {
        let scenario = ElectionScenario { n: 12, k: 12 };
        let base = PartitionedConfig {
            partitions: 3,
            workers: 1,
        };
        for strategy in [
            StrategySpec::library()[0],
            *StrategySpec::library().last().unwrap(),
        ] {
            let reference = run_episode_partitioned(&scenario, &plan(strategy, 5), &base);
            for workers in [2usize, 8] {
                let candidate = run_episode_partitioned(
                    &scenario,
                    &plan(strategy, 5),
                    &PartitionedConfig {
                        partitions: 3,
                        workers,
                    },
                );
                match (&reference, &candidate) {
                    (EpisodeOutcome::Clean { events: a }, EpisodeOutcome::Clean { events: b }) => {
                        assert_eq!(a, b, "worker count changed the event count")
                    }
                    (EpisodeOutcome::Violated(a), EpisodeOutcome::Violated(b)) => {
                        assert_eq!(a.violation, b.violation)
                    }
                    _ => panic!("worker count changed the episode outcome"),
                }
            }
        }
    }
}
