//! The counterexample minimizer: delta-debugging over decision traces.
//!
//! A violating schedule found by the explorer is rarely minimal — it carries
//! the activity of processors that have nothing to do with the violation and
//! deliveries the invariant never depended on. The shrinker applies ddmin
//! (Zeller's delta debugging) to the recorded [`DecisionTrace`]:
//! repeatedly drop contiguous decision chunks, replay the candidate with the
//! tolerant [`fle_sim::ReplayAdversary`] (indices clamp, illegal crashes
//! degrade, an exhausted trace completes deterministically with the oldest
//! enabled event), and keep the candidate iff the **same oracle** still
//! fires. Two extra moves make convergence fast:
//!
//! * every successful replay *truncates* the candidate to the decisions
//!   actually consumed before the violation fired, and
//! * the empty trace is tried first — if the violation reproduces under the
//!   deterministic completion rule alone, the counterexample is "any
//!   schedule", the strongest possible result.
//!
//! Each kept candidate is itself a replayable counterexample, so the result
//! can be serialized with [`DecisionTrace::to_compact_string`] and replayed
//! from text alone.

use crate::concurrent::{replay_exec, replay_shm, ShmConfig};
use crate::explorer::{replay, FoundViolation};
use crate::oracles::Violation;
use crate::scenario::Scenario;
use fle_sim::{Decision, DecisionTrace};

/// The outcome of shrinking one violation.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized decision trace (still reproduces the violation).
    pub minimized: DecisionTrace,
    /// Length of the original violating trace.
    pub original_len: usize,
    /// Replays spent during minimization.
    pub replays: usize,
}

impl ShrinkResult {
    /// `minimized.len() / original_len`, as a fraction in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.original_len == 0 {
            return 0.0;
        }
        self.minimized.len() as f64 / self.original_len as f64
    }
}

/// Minimize `found` against its scenario with at most `max_replays`
/// re-executions, replaying on the **simulator**.
///
/// The predicate for keeping a candidate is that the **same oracle** (by
/// name) fires under replay with the scenario rebuilt from scratch and the
/// original `sim_seed` — the exact reproduction setup a human would use.
pub fn shrink(scenario: &dyn Scenario, found: &FoundViolation, max_replays: usize) -> ShrinkResult {
    let sim_seed = found.plan.sim_seed;
    shrink_with(found, max_replays, |trace| {
        replay(scenario, sim_seed, trace)
    })
}

/// Minimize `found` with at most `max_replays` re-executions, replaying on
/// the **concurrent backend** (the counterexample must have been found
/// there: grant indices only mean the same thing on the backend that
/// recorded them). Same ddmin, same keep-predicate, different substrate.
pub fn shrink_shm(
    scenario: &dyn Scenario,
    found: &FoundViolation,
    max_replays: usize,
    config: &ShmConfig,
) -> ShrinkResult {
    let sim_seed = found.plan.sim_seed;
    shrink_with(found, max_replays, |trace| {
        replay_shm(scenario, sim_seed, trace, config)
    })
}

/// Minimize `found` with at most `max_replays` re-executions, replaying on
/// the **task executor** ([`crate::run_episode_exec`]'s substrate). Same
/// ddmin, same keep-predicate; the gate interface makes grant indices mean
/// the same thing as on the concurrent backend.
pub fn shrink_exec(
    scenario: &dyn Scenario,
    found: &FoundViolation,
    max_replays: usize,
    config: &ShmConfig,
) -> ShrinkResult {
    let sim_seed = found.plan.sim_seed;
    shrink_with(found, max_replays, |trace| {
        replay_exec(scenario, sim_seed, trace, config)
    })
}

/// The backend-generic ddmin core: `replay_fn` re-executes a candidate trace
/// and reports the violation it reproduces plus the decisions consumed.
///
/// Public so callers with unusual replay setups (a custom backend config, a
/// corpus-replay harness, a coverage hunt's mutant episode) can minimize
/// against exactly the reproduction path they use. The keep-predicate is
/// fixed: a candidate survives iff the **same oracle** (by name) fires under
/// `replay_fn` — a candidate under which the oracle stops firing is
/// rejected, whatever else it does.
pub fn shrink_with(
    found: &FoundViolation,
    max_replays: usize,
    mut replay_fn: impl FnMut(&DecisionTrace) -> (Option<Violation>, usize),
) -> ShrinkResult {
    let oracle = found.violation.oracle;
    let mut replays = 0usize;

    // Returns the number of decisions consumed before the violation when the
    // candidate still fails, `None` otherwise.
    let mut fails = |decisions: &[Decision], replays: &mut usize| -> Option<usize> {
        *replays += 1;
        let trace: DecisionTrace = decisions.iter().copied().collect();
        let (violation, consumed) = replay_fn(&trace);
        match violation {
            Some(v) if v.oracle == oracle => Some(consumed.min(decisions.len())),
            _ => None,
        }
    };

    let mut current: Vec<Decision> = found.decisions.decisions().to_vec();
    let original_len = current.len();

    // Strongest move first: does the deterministic completion rule alone
    // reproduce the violation?
    if fails(&[], &mut replays).is_some() {
        return ShrinkResult {
            minimized: DecisionTrace::new(),
            original_len,
            replays,
        };
    }

    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut start = 0;
        while start < current.len() && replays < max_replays {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if let Some(consumed) = fails(&candidate, &mut replays) {
                candidate.truncate(consumed);
                current = candidate;
                removed_any = true;
                // The chunk at `start` changed: retry the same offset.
            } else {
                start = end;
            }
        }
        if replays >= max_replays || (chunk == 1 && !removed_any) {
            break;
        }
        if !removed_any || chunk > current.len().max(1) {
            chunk = (chunk / 2).max(1);
        }
    }

    ShrinkResult {
        minimized: current.into_iter().collect(),
        original_len,
        replays,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::{replay, EpisodePlan, FoundViolation};
    use crate::oracles::{Oracle, OracleCtx, Violation};
    use crate::scenario::Scenario;
    use crate::strategies::StrategySpec;
    use fle_core::LeaderElection;
    use fle_model::ProcId;
    use fle_sim::ProcessPhase;

    /// Fires as soon as processor 3 is crashed — a violation pinned to one
    /// specific decision, so minimization must keep exactly that decision.
    struct CrashWitness;

    impl Oracle for CrashWitness {
        fn name(&self) -> &'static str {
            "crash-witness"
        }

        fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation> {
            matches!(
                ctx.observation.process(ProcId(3)).phase,
                ProcessPhase::Crashed
            )
            .then(|| Violation {
                oracle: "crash-witness",
                detail: "processor 3 crashed".to_string(),
                events_executed: ctx.events_executed,
            })
        }
    }

    struct CrashScenario;

    impl Scenario for CrashScenario {
        fn name(&self) -> String {
            "crash-witness-scenario".to_string()
        }

        fn n(&self) -> usize {
            8
        }

        fn participants(&self) -> Vec<ProcId> {
            (0..8).map(ProcId).collect()
        }

        fn protocols(&self) -> Vec<(ProcId, Box<dyn fle_model::Protocol + Send>)> {
            self.participants()
                .into_iter()
                .map(|p| {
                    (
                        p,
                        Box::new(LeaderElection::new(p)) as Box<dyn fle_model::Protocol + Send>,
                    )
                })
                .collect()
        }

        fn oracles(&self) -> Vec<Box<dyn Oracle>> {
            vec![Box::new(CrashWitness)]
        }
    }

    #[test]
    fn ddmin_isolates_the_one_decision_that_matters() {
        let scenario = CrashScenario;
        // A bloated trace: scheduling noise, an irrelevant crash, the
        // pivotal crash of processor 3, then more noise that replay never
        // reaches (the oracle fires at the crash).
        let mut decisions = vec![Decision::Schedule(0); 24];
        decisions.push(Decision::Crash(ProcId(1)));
        decisions.extend([Decision::Schedule(1); 8]);
        decisions.push(Decision::Crash(ProcId(3)));
        decisions.extend([Decision::Schedule(0); 16]);
        let trace: DecisionTrace = decisions.into_iter().collect();

        let (violation, consumed) = replay(&scenario, 5, &trace);
        let violation = violation.expect("the scripted trace crashes processor 3");
        assert_eq!(violation.oracle, "crash-witness");
        assert_eq!(consumed, 34, "the oracle fires on the pivotal crash");

        let found = FoundViolation {
            violation,
            decisions: trace,
            scenario: scenario.name(),
            plan: EpisodePlan {
                strategy: StrategySpec::SplitBrain { burst: 1 },
                sim_seed: 5,
                strategy_seed: 0,
            },
        };
        let result = shrink(&scenario, &found, 300);
        assert_eq!(
            result.minimized.decisions(),
            &[Decision::Crash(ProcId(3))],
            "every decision except the pivotal crash is noise"
        );
        assert_eq!(result.original_len, 50);
        assert!(result.replays > 1, "real chunk removal happened");
        assert!(result.ratio() < 0.25);
    }

    fn found_with(decisions: DecisionTrace, oracle: &'static str, sim_seed: u64) -> FoundViolation {
        FoundViolation {
            violation: Violation {
                oracle,
                detail: "synthetic".to_string(),
                events_executed: 0,
            },
            decisions,
            scenario: "edge-case".to_string(),
            plan: EpisodePlan {
                strategy: StrategySpec::SplitBrain { burst: 1 },
                sim_seed,
                strategy_seed: 0,
            },
        }
    }

    #[test]
    fn already_minimal_traces_come_back_unchanged() {
        // One pivotal decision, nothing else: ddmin must return it verbatim
        // (the empty-trace probe and the single chunk drop both fail).
        let scenario = CrashScenario;
        let trace: DecisionTrace = [Decision::Crash(ProcId(3))].into_iter().collect();
        let (violation, _) = replay(&scenario, 5, &trace);
        let found = found_with(trace.clone(), "crash-witness", 5);
        assert_eq!(violation.unwrap().oracle, "crash-witness");
        let result = shrink(&scenario, &found, 100);
        assert_eq!(result.minimized, trace, "already minimal: unchanged");
        assert_eq!(result.original_len, 1);
    }

    #[test]
    fn empty_traces_are_a_no_op() {
        // A violation whose recorded trace is already empty (the completion
        // rule alone reproduces it): the shrinker returns the empty trace
        // after the single probing replay, touching nothing.
        let found = found_with(DecisionTrace::new(), "always", 0);
        let result = shrink_with(&found, 100, |trace| {
            assert!(trace.is_empty(), "only the empty candidate is ever tried");
            (
                Some(Violation {
                    oracle: "always",
                    detail: "fires on any schedule".to_string(),
                    events_executed: 0,
                }),
                0,
            )
        });
        assert!(result.minimized.is_empty());
        assert_eq!(result.original_len, 0);
        assert_eq!(result.replays, 1, "one probe, no chunk loop");
    }

    #[test]
    fn candidates_where_the_oracle_stops_firing_are_rejected() {
        // Synthetic replay: the "witness" oracle fires iff the candidate
        // still contains the pivotal Crash(3); candidates that drop it (or
        // make a *different* oracle fire) must be rejected, so the pivotal
        // decision survives minimization.
        let pivotal = Decision::Crash(ProcId(3));
        let mut decisions = vec![Decision::Schedule(0); 10];
        decisions.push(pivotal);
        decisions.extend([Decision::Schedule(1); 5]);
        let found = found_with(decisions.into_iter().collect(), "witness", 0);
        let result = shrink_with(&found, 200, |candidate| {
            let position = candidate.decisions().iter().position(|d| *d == pivotal);
            match position {
                Some(at) => (
                    Some(Violation {
                        oracle: "witness",
                        detail: "pivotal crash present".to_string(),
                        events_executed: 0,
                    }),
                    at + 1,
                ),
                // Without the pivotal decision a *different* oracle fires —
                // the keep-predicate must reject this candidate too.
                None => (
                    Some(Violation {
                        oracle: "some-other-oracle",
                        detail: "wrong invariant".to_string(),
                        events_executed: 0,
                    }),
                    candidate.len(),
                ),
            }
        });
        assert_eq!(
            result.minimized.decisions(),
            &[pivotal],
            "only candidates refiring the same oracle are kept"
        );
    }

    #[test]
    fn shrink_with_minimizes_on_the_concurrent_backend() {
        // The backend-generic core pointed at a real gated replay: a
        // fail-stop fault plan violates election liveness on threads; the
        // ddmin core wired to `replay_shm` minimizes the trace and the
        // result still reproduces there.
        use crate::concurrent::{replay_shm, run_episode_shm, ShmConfig};
        use crate::explorer::EpisodeOutcome;
        use fle_runtime::{CrashSpec, FaultPlan};

        let scenario = crate::scenario::ElectionScenario { n: 4, k: 4 };
        let config = ShmConfig {
            faults: Some(FaultPlan::new(2).with_crash(CrashSpec::lose_all(2))),
            ..ShmConfig::default()
        };
        let plan = EpisodePlan {
            strategy: StrategySpec::SplitBrain { burst: 4 },
            sim_seed: 0,
            strategy_seed: 0,
        };
        let found = match run_episode_shm(&scenario, &plan, &config) {
            EpisodeOutcome::Violated(found) => *found,
            EpisodeOutcome::Clean { .. } => panic!("fail-stopping everyone violates liveness"),
        };
        let result = shrink_with(&found, 120, |trace| {
            replay_shm(&scenario, 0, trace, &config)
        });
        assert!(result.minimized.len() <= found.decisions.len());
        let (violation, _) = replay_shm(&scenario, 0, &result.minimized, &config);
        assert_eq!(violation.map(|v| v.oracle), Some(found.violation.oracle));
    }

    #[test]
    fn ratio_handles_empty_originals() {
        let result = ShrinkResult {
            minimized: DecisionTrace::new(),
            original_len: 0,
            replays: 1,
        };
        assert_eq!(result.ratio(), 0.0);
        let half = ShrinkResult {
            minimized: [Decision::Schedule(0); 2].into_iter().collect(),
            original_len: 4,
            replays: 3,
        };
        assert!((half.ratio() - 0.5).abs() < 1e-12);
    }
}
