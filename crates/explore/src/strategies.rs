//! The attack-strategy library: parameterized adversaries that hunt for
//! invariant violations.
//!
//! Every strategy implements the ordinary [`Adversary`] interface of
//! `fle_sim` against the indexed [`EnabledEvents`] view, so the engine pays
//! the same per-event cost as for the built-in schedulers. A strategy is
//! described by a [`StrategySpec`] — a small, cloneable value the explorer
//! can enumerate, fan out across cores and print in reports — and built
//! fresh (with a seed) for every episode.
//!
//! The library covers four attack families:
//!
//! * [`StrategySpec::FrontRunnerCrash`] — *adaptive crash timing*: watch the
//!   round counters the strong adversary may inspect and crash the strict
//!   front-runner right before its next computation step (the write that
//!   would publish its progress).
//! * [`StrategySpec::Starve`] — *targeted delay/starvation*: pick a seeded
//!   victim set and refuse to schedule anything that advances a victim while
//!   any other event is enabled, starving the victims for as long as the
//!   model allows.
//! * [`StrategySpec::SplitBrain`] — *split-brain delivery orderings*: divide
//!   the processors into two halves and schedule in alternating bursts,
//!   preferring events wholly inside the active half and delaying
//!   cross-partition traffic as long as possible.
//! * [`StrategySpec::WeightedWalk`] — *seeded weighted random walks*: biased
//!   random scheduling that over- or under-weights computation steps,
//!   request deliveries and reply deliveries, covering schedule shapes a
//!   uniform walk rarely visits.

use fle_model::ProcId;
use fle_sim::{Adversary, Decision, EnabledEvent, EnabledEvents, ProcessPhase, SystemObservation};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Whether the processor is a participant that has not yet returned.
fn is_live(phase: ProcessPhase) -> bool {
    matches!(
        phase,
        ProcessPhase::NotStarted | ProcessPhase::StepReady | ProcessPhase::AwaitingQuorum
    )
}

/// A description of an attack strategy: everything needed to build the
/// adversary for one episode, cheap to clone and meaningful to print.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategySpec {
    /// Crash the strict front-runner (the unique live participant with the
    /// highest visible round) right before its next computation step, up to
    /// `crashes` times; schedule uniformly at random otherwise.
    FrontRunnerCrash {
        /// Maximum number of victims this strategy will crash (the engine's
        /// crash budget still applies on top).
        crashes: usize,
    },
    /// Starve a seeded victim set of roughly `1/denominator` of the
    /// processors: events advancing a victim are scheduled only when nothing
    /// else is enabled.
    Starve {
        /// Victim density: each processor is a victim with probability
        /// `1/denominator` (at least one non-victim is always kept).
        denominator: u32,
    },
    /// Alternate bursts of `burst` decisions between the two halves of the
    /// processor space, preferring events wholly inside the active half.
    SplitBrain {
        /// Number of decisions per burst before the active half flips.
        burst: u32,
    },
    /// A seeded random walk with per-category weights for computation steps,
    /// request deliveries and reply deliveries.
    WeightedWalk {
        /// Weight of scheduling a computation step.
        steps: u32,
        /// Weight of delivering a request (`propagate`/`collect`).
        requests: u32,
        /// Weight of delivering a reply (`ack`/`collect-reply`).
        replies: u32,
    },
}

impl StrategySpec {
    /// The default attack library the explorer fans out over.
    pub fn library() -> Vec<StrategySpec> {
        vec![
            StrategySpec::FrontRunnerCrash { crashes: 2 },
            StrategySpec::Starve { denominator: 3 },
            StrategySpec::SplitBrain { burst: 16 },
            StrategySpec::WeightedWalk {
                steps: 1,
                requests: 4,
                replies: 1,
            },
            StrategySpec::WeightedWalk {
                steps: 6,
                requests: 1,
                replies: 1,
            },
        ]
    }

    /// Build the adversary this spec describes, seeded for one episode.
    pub fn build(&self, seed: u64) -> Box<dyn Adversary> {
        match *self {
            StrategySpec::FrontRunnerCrash { crashes } => {
                Box::new(FrontRunnerCrash::with_seed(seed, crashes))
            }
            StrategySpec::Starve { denominator } => Box::new(Starve::with_seed(seed, denominator)),
            StrategySpec::SplitBrain { burst } => Box::new(SplitBrain::with_seed(seed, burst)),
            StrategySpec::WeightedWalk {
                steps,
                requests,
                replies,
            } => Box::new(WeightedWalk::with_seed(seed, [steps, requests, replies])),
        }
    }
}

impl fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategySpec::FrontRunnerCrash { crashes } => {
                write!(f, "front-runner-crash({crashes})")
            }
            StrategySpec::Starve { denominator } => write!(f, "starve(1/{denominator})"),
            StrategySpec::SplitBrain { burst } => write!(f, "split-brain(burst={burst})"),
            StrategySpec::WeightedWalk {
                steps,
                requests,
                replies,
            } => write!(f, "weighted-walk({steps}:{requests}:{replies})"),
        }
    }
}

/// Adaptive crash timing: crash the strict front-runner at its next write.
///
/// The strong adversary may inspect every participant's visible round
/// counter. Whenever a *unique* live participant is ahead of everyone else
/// and is about to take a computation step (the write that would publish its
/// progress), this strategy spends one crash on it — decapitating the
/// execution at the most pivotal moment it can identify. Scheduling is
/// otherwise uniformly random.
#[derive(Debug, Clone)]
pub struct FrontRunnerCrash {
    rng: ChaCha8Rng,
    crashes_left: usize,
}

impl FrontRunnerCrash {
    /// A front-runner crasher spending at most `crashes` crashes.
    pub fn with_seed(seed: u64, crashes: usize) -> Self {
        FrontRunnerCrash {
            rng: ChaCha8Rng::seed_from_u64(seed),
            crashes_left: crashes,
        }
    }

    /// The unique live participant strictly ahead of every other live
    /// participant (by visible round), if any.
    fn strict_front_runner(observation: &SystemObservation) -> Option<(ProcId, ProcessPhase)> {
        let mut best: Option<(u64, ProcId, ProcessPhase)> = None;
        let mut strict = false;
        for process in &observation.processes {
            if !is_live(process.phase) {
                continue;
            }
            let round = process.local_state.as_ref().map_or(0, |s| s.round);
            match &best {
                Some((lead, _, _)) if *lead > round => {}
                Some((lead, _, _)) if *lead == round => strict = false,
                _ => {
                    best = Some((round, process.proc, process.phase));
                    strict = true;
                }
            }
        }
        match best {
            Some((_, proc, phase)) if strict => Some((proc, phase)),
            _ => None,
        }
    }
}

impl Adversary for FrontRunnerCrash {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        if self.crashes_left > 0 && observation.crash_budget_left > 0 {
            if let Some((victim, phase)) = Self::strict_front_runner(observation) {
                if phase == ProcessPhase::StepReady {
                    self.crashes_left -= 1;
                    return Decision::Crash(victim);
                }
            }
        }
        Decision::Schedule(self.rng.gen_range(0..enabled.len()))
    }

    fn name(&self) -> &'static str {
        "front-runner-crash"
    }
}

/// Targeted starvation: a seeded victim set whose progress is delayed as
/// long as any other event is enabled.
#[derive(Debug, Clone)]
pub struct Starve {
    seed: u64,
    denominator: u32,
    rng: ChaCha8Rng,
    /// Lazily initialised victim flags, indexed by processor id.
    victims: Vec<bool>,
}

impl Starve {
    /// A starver whose victim set is derived from `seed` with density
    /// `1/denominator` (clamped to at least 2 so somebody always runs).
    pub fn with_seed(seed: u64, denominator: u32) -> Self {
        Starve {
            seed,
            denominator: denominator.max(2),
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5f5f_5f5f),
            victims: Vec::new(),
        }
    }

    fn ensure_victims(&mut self, n: usize) {
        if self.victims.len() == n {
            return;
        }
        self.victims = (0..n)
            .map(|i| {
                // splitmix64 of (seed, processor): a fixed pseudo-random set.
                let mut z = self
                    .seed
                    .wrapping_add((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)).is_multiple_of(u64::from(self.denominator))
            })
            .collect();
        if self.victims.iter().all(|&v| v) {
            self.victims[0] = false;
        }
    }
}

impl Adversary for Starve {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        self.ensure_victims(observation.n);
        let preferred: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(_, event)| !self.victims[event.advances().index()])
            .map(|(index, _)| index)
            .collect();
        match preferred.len() {
            // Only victim-advancing events remain: the model forbids refusing
            // to schedule, so release the oldest one.
            0 => Decision::Schedule(0),
            len => Decision::Schedule(preferred[self.rng.gen_range(0..len)]),
        }
    }

    fn name(&self) -> &'static str {
        "starve"
    }
}

/// Split-brain scheduling: the processor space is split into two halves and
/// scheduled in alternating bursts, delaying cross-partition deliveries for
/// as long as possible.
#[derive(Debug, Clone)]
pub struct SplitBrain {
    rng: ChaCha8Rng,
    burst: u32,
    left_in_burst: u32,
    low_half_active: bool,
}

impl SplitBrain {
    /// A split-brain scheduler with the given burst length (clamped to ≥ 1).
    pub fn with_seed(seed: u64, burst: u32) -> Self {
        let burst = burst.max(1);
        SplitBrain {
            rng: ChaCha8Rng::seed_from_u64(seed),
            burst,
            left_in_burst: burst,
            low_half_active: true,
        }
    }

    fn in_active_half(&self, n: usize, p: ProcId) -> bool {
        (p.index() < n.div_ceil(2)) == self.low_half_active
    }

    /// Rank of an event for the current burst: 0 for events wholly inside
    /// the active half, 1 for cross-partition events that still advance the
    /// active half, 2 for everything else.
    fn rank(&self, n: usize, event: &EnabledEvent) -> u8 {
        if !self.in_active_half(n, event.advances()) {
            return 2;
        }
        match event {
            EnabledEvent::Step(_) => 0,
            EnabledEvent::Deliver { from, to, .. } => {
                if self.in_active_half(n, *from) && self.in_active_half(n, *to) {
                    0
                } else {
                    1
                }
            }
        }
    }
}

impl Adversary for SplitBrain {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        if self.left_in_burst == 0 {
            self.low_half_active = !self.low_half_active;
            self.left_in_burst = self.burst;
        }
        self.left_in_burst -= 1;
        let n = observation.n;
        let best = enabled
            .iter()
            .map(|event| self.rank(n, &event))
            .min()
            .unwrap_or(2);
        let candidates: Vec<usize> = enabled
            .iter()
            .enumerate()
            .filter(|(_, event)| self.rank(n, event) == best)
            .map(|(index, _)| index)
            .collect();
        Decision::Schedule(candidates[self.rng.gen_range(0..candidates.len())])
    }

    fn name(&self) -> &'static str {
        "split-brain"
    }
}

/// Caps how often an adversary may *preempt* — schedule an event advancing a
/// different processor while the previously advanced processor still has an
/// enabled event (the CHESS bounded-preemption heuristic: most concurrency
/// bugs need only a handful of preemptions, so exhausting a small budget
/// first concentrates the search).
///
/// While budget remains, the inner adversary's decisions pass through
/// unchanged (each genuine preemption spends one unit). Once it is spent,
/// the wrapper overrides *scheduling* decisions to keep running the last
/// advanced processor for as long as it has an enabled event; switching to
/// another processor when the last one has none (it finished, crashed or
/// blocked) is free, as in CHESS. The inner adversary is consulted on every
/// decision and its crash decisions pass through untouched even while
/// pinned — CHESS bounds preemptions, not fault injection (a crash neither
/// spends budget nor moves the pin).
///
/// The wrapper composes below [`fle_sim::RecordingAdversary`], so a recorded
/// trace contains the *bounded* decisions and replays faithfully without the
/// wrapper. It works against any [`EnabledEvents`] view — simulator events
/// or the concurrent backend's schedule points alike.
#[derive(Debug, Clone)]
pub struct PreemptionBound<A> {
    inner: A,
    left: u32,
    last: Option<ProcId>,
}

impl<A: Adversary> PreemptionBound<A> {
    /// Allow `inner` at most `bound` preemptions.
    pub fn new(inner: A, bound: u32) -> Self {
        PreemptionBound {
            inner,
            left: bound,
            last: None,
        }
    }

    /// Preemptions still available.
    pub fn left(&self) -> u32 {
        self.left
    }
}

impl<A: Adversary> Adversary for PreemptionBound<A> {
    fn decide(&mut self, observation: &SystemObservation, enabled: &EnabledEvents<'_>) -> Decision {
        let last_pos = self
            .last
            .and_then(|last| enabled.iter().position(|event| event.advances() == last));
        let decision = self.inner.decide(observation, enabled);
        let Decision::Schedule(index) = decision else {
            // Crashes are fault injection, not preemption: pass through.
            return decision;
        };
        if self.left == 0 {
            if let Some(pos) = last_pos {
                return Decision::Schedule(pos);
            }
        }
        if let Some(event) = enabled.get(index % enabled.len().max(1)) {
            let advanced = event.advances();
            if last_pos.is_some() && self.last != Some(advanced) {
                self.left = self.left.saturating_sub(1);
            }
            self.last = Some(advanced);
        }
        decision
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// A seeded weighted random walk over event categories.
#[derive(Debug, Clone)]
pub struct WeightedWalk {
    rng: ChaCha8Rng,
    /// Weights for steps, request deliveries and reply deliveries.
    weights: [u32; 3],
}

impl WeightedWalk {
    /// A weighted walk with `[steps, requests, replies]` weights (an all-zero
    /// weight vector degrades to the uniform walk).
    pub fn with_seed(seed: u64, weights: [u32; 3]) -> Self {
        WeightedWalk {
            rng: ChaCha8Rng::seed_from_u64(seed),
            weights,
        }
    }

    fn category(event: &EnabledEvent) -> usize {
        match event {
            EnabledEvent::Step(_) => 0,
            EnabledEvent::Deliver { is_request, .. } => {
                if *is_request {
                    1
                } else {
                    2
                }
            }
        }
    }
}

impl Adversary for WeightedWalk {
    fn decide(
        &mut self,
        _observation: &SystemObservation,
        enabled: &EnabledEvents<'_>,
    ) -> Decision {
        let mut total: u64 = 0;
        for event in enabled.iter() {
            total += u64::from(self.weights[Self::category(&event)]);
        }
        if total == 0 {
            return Decision::Schedule(self.rng.gen_range(0..enabled.len()));
        }
        let mut remaining = self.rng.gen_range(0..total);
        for (index, event) in enabled.iter().enumerate() {
            let weight = u64::from(self.weights[Self::category(&event)]);
            if remaining < weight {
                return Decision::Schedule(index);
            }
            remaining -= weight;
        }
        // Unreachable: the weights summed to `total` above. Stay safe anyway.
        Decision::Schedule(0)
    }

    fn name(&self) -> &'static str {
        "weighted-walk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::LocalStateView;
    use fle_sim::{MessageId, ProcessObservation};

    fn observation(rounds: Vec<(ProcessPhase, u64)>) -> SystemObservation {
        let n = rounds.len();
        SystemObservation {
            n,
            events_executed: 0,
            crash_budget_left: 1,
            processes: rounds
                .into_iter()
                .enumerate()
                .map(|(i, (phase, round))| ProcessObservation {
                    proc: ProcId(i),
                    phase,
                    local_state: Some(LocalStateView {
                        algorithm: "t",
                        phase: "t",
                        round,
                        coin: None,
                        details: Vec::new(),
                    }),
                })
                .collect(),
        }
    }

    fn step_events(n: usize) -> Vec<EnabledEvent> {
        (0..n).map(|i| EnabledEvent::Step(ProcId(i))).collect()
    }

    #[test]
    fn front_runner_crash_hits_the_strict_leader_before_its_step() {
        let obs = observation(vec![
            (ProcessPhase::StepReady, 1),
            (ProcessPhase::StepReady, 3),
            (ProcessPhase::StepReady, 2),
        ]);
        let enabled = step_events(3);
        let mut strategy = FrontRunnerCrash::with_seed(0, 1);
        assert_eq!(
            strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Crash(ProcId(1))
        );
        // The single crash is spent; afterwards it only schedules.
        assert!(matches!(
            strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(_)
        ));
    }

    #[test]
    fn front_runner_crash_waits_for_a_strict_leader() {
        // Two processors share the lead: no crash.
        let obs = observation(vec![
            (ProcessPhase::StepReady, 2),
            (ProcessPhase::StepReady, 2),
        ]);
        let enabled = step_events(2);
        let mut strategy = FrontRunnerCrash::with_seed(0, 1);
        assert!(matches!(
            strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(_)
        ));
        // A leader that is awaiting a quorum (not about to write) is spared.
        let obs = observation(vec![
            (ProcessPhase::StepReady, 1),
            (ProcessPhase::AwaitingQuorum, 3),
        ]);
        assert!(matches!(
            strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(_)
        ));
    }

    #[test]
    fn starve_avoids_victims_while_possible() {
        let mut strategy = Starve::with_seed(7, 2);
        let obs = observation(vec![(ProcessPhase::StepReady, 0); 6]);
        strategy.ensure_victims(6);
        let victims = strategy.victims.clone();
        assert!(victims.iter().any(|&v| !v), "someone always runs");
        let enabled = step_events(6);
        for _ in 0..50 {
            match strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)) {
                Decision::Schedule(i) => {
                    assert!(!victims[i], "victim {i} must not be scheduled")
                }
                Decision::Crash(_) => panic!("starvation never crashes"),
            }
        }
        // When only victim events remain the oldest is released.
        let first_victim = victims.iter().position(|&v| v).unwrap();
        let only_victims = vec![EnabledEvent::Step(ProcId(first_victim))];
        assert_eq!(
            strategy.decide(&obs, &EnabledEvents::from_slice(&only_victims)),
            Decision::Schedule(0)
        );
    }

    #[test]
    fn split_brain_prefers_the_active_half_and_alternates() {
        let mut strategy = SplitBrain::with_seed(3, 2);
        let obs = observation(vec![(ProcessPhase::StepReady, 0); 4]);
        let enabled = step_events(4);
        // Burst 1 (low half active): only processors 0-1.
        for _ in 0..2 {
            match strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)) {
                Decision::Schedule(i) => assert!(i < 2, "low half first, got {i}"),
                Decision::Crash(_) => panic!("split-brain never crashes"),
            }
        }
        // Burst 2: the high half.
        match strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)) {
            Decision::Schedule(i) => assert!(i >= 2, "high half second, got {i}"),
            Decision::Crash(_) => panic!("split-brain never crashes"),
        }
    }

    #[test]
    fn split_brain_delays_cross_partition_deliveries() {
        let strategy = SplitBrain::with_seed(0, 8);
        let intra = EnabledEvent::Deliver {
            id: MessageId(0),
            from: ProcId(0),
            to: ProcId(1),
            is_request: true,
        };
        let cross = EnabledEvent::Deliver {
            id: MessageId(1),
            from: ProcId(3),
            to: ProcId(0),
            is_request: false,
        };
        assert_eq!(strategy.rank(4, &intra), 0);
        assert!(strategy.rank(4, &cross) > strategy.rank(4, &intra));
    }

    #[test]
    fn weighted_walk_respects_zero_weight_categories() {
        let obs = observation(vec![(ProcessPhase::StepReady, 0); 2]);
        let enabled = vec![
            EnabledEvent::Step(ProcId(0)),
            EnabledEvent::Deliver {
                id: MessageId(0),
                from: ProcId(0),
                to: ProcId(1),
                is_request: true,
            },
        ];
        // Steps have weight 0: the delivery must always be picked.
        let mut strategy = WeightedWalk::with_seed(1, [0, 5, 5]);
        for _ in 0..30 {
            assert_eq!(
                strategy.decide(&obs, &EnabledEvents::from_slice(&enabled)),
                Decision::Schedule(1)
            );
        }
        // All-zero weights degrade to uniform rather than dividing by zero.
        let mut zero = WeightedWalk::with_seed(1, [0, 0, 0]);
        assert!(matches!(
            zero.decide(&obs, &EnabledEvents::from_slice(&enabled)),
            Decision::Schedule(_)
        ));
    }

    #[test]
    fn preemption_bound_pins_the_last_processor_once_spent() {
        /// Schedules 0, 1, 2, … in turn: every pick wants to preempt.
        struct Cycle(usize);
        impl Adversary for Cycle {
            fn decide(
                &mut self,
                _observation: &SystemObservation,
                enabled: &EnabledEvents<'_>,
            ) -> Decision {
                let pick = Decision::Schedule(self.0 % enabled.len());
                self.0 += 1;
                pick
            }
            fn name(&self) -> &'static str {
                "cycle"
            }
        }

        let obs = observation(vec![(ProcessPhase::StepReady, 0); 3]);
        let enabled = step_events(3);
        let view = EnabledEvents::from_slice(&enabled);
        let mut bounded = PreemptionBound::new(Cycle(0), 1);
        // First pick is free (no previous processor), the second spends the
        // only preemption, after which the walk is pinned to processor 1.
        assert_eq!(bounded.decide(&obs, &view), Decision::Schedule(0));
        assert_eq!(bounded.decide(&obs, &view), Decision::Schedule(1));
        assert_eq!(bounded.decide(&obs, &view), Decision::Schedule(1));
        assert_eq!(bounded.decide(&obs, &view), Decision::Schedule(1));
        assert_eq!(bounded.left(), 0);
        assert_eq!(bounded.name(), "cycle");
        // Once processor 1 has no enabled event, switching away is free.
        let remaining = vec![EnabledEvent::Step(ProcId(0)), EnabledEvent::Step(ProcId(2))];
        assert!(matches!(
            bounded.decide(&obs, &EnabledEvents::from_slice(&remaining)),
            Decision::Schedule(_)
        ));
        assert_eq!(bounded.left(), 0, "free switches never refund the budget");
    }

    #[test]
    fn preemption_bound_lets_crashes_through_while_pinned() {
        /// Schedules once (forming the pin), then always wants to crash 2.
        struct ScheduleThenCrash(bool);
        impl Adversary for ScheduleThenCrash {
            fn decide(
                &mut self,
                _observation: &SystemObservation,
                _enabled: &EnabledEvents<'_>,
            ) -> Decision {
                if !self.0 {
                    self.0 = true;
                    Decision::Schedule(0)
                } else {
                    Decision::Crash(ProcId(2))
                }
            }
            fn name(&self) -> &'static str {
                "schedule-then-crash"
            }
        }

        let obs = observation(vec![(ProcessPhase::StepReady, 0); 3]);
        let enabled = step_events(3);
        let view = EnabledEvents::from_slice(&enabled);
        // Budget 0: scheduling is pinned to processor 0 after the first
        // grant, but fault injection is not preemption and passes through.
        let mut bounded = PreemptionBound::new(ScheduleThenCrash(false), 0);
        assert_eq!(bounded.decide(&obs, &view), Decision::Schedule(0));
        assert_eq!(bounded.decide(&obs, &view), Decision::Crash(ProcId(2)));
        assert_eq!(bounded.decide(&obs, &view), Decision::Crash(ProcId(2)));
    }

    #[test]
    fn specs_build_and_display() {
        for spec in StrategySpec::library() {
            let adversary = spec.build(5);
            assert!(!adversary.name().is_empty());
            assert!(!spec.to_string().is_empty());
        }
        assert_eq!(
            StrategySpec::Starve { denominator: 3 }.to_string(),
            "starve(1/3)"
        );
    }
}
