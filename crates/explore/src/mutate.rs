//! The mutation engine of the coverage-guided explorer: seeded, structural
//! edits over [`DecisionTrace`]s.
//!
//! Every operator leans on the *tolerance* of [`fle_sim::ReplayAdversary`]
//! (and its gate-runner twin): out-of-range `Schedule` indices clamp to the
//! newest enabled event, illegal crashes degrade to scheduling the oldest
//! one, and an exhausted trace completes deterministically. A mutated trace
//! is therefore **always** a valid schedule — the engine never has to know
//! how many events will be enabled at any point, which is what makes the
//! same operators work unchanged on all four exploration backends.
//!
//! The engine is a pure function of its seed: the `k`-th mutation of the
//! same `(base, donor)` pair under the same seed is always the same trace,
//! so a coverage hunt replays bit-for-bit from `(scenario, config,
//! master_seed)` alone.

use fle_model::{splitmix64, ProcId};
use fle_sim::{Decision, DecisionTrace};

/// Seeded structural mutations over decision traces.
///
/// The five operators — truncate, extend, perturb, splice, duplicate — are
/// chosen uniformly; an empty base degrades to *extend* so seeding a corpus
/// with empty traces (the partitioned backend's replay token) still
/// explores.
#[derive(Debug, Clone)]
pub struct MutationEngine {
    state: u64,
    /// System size: crash victims are drawn from `0..n` and fresh schedule
    /// indices from `0..4n` (anything larger only clamps harder).
    n: usize,
}

impl MutationEngine {
    /// An engine over systems of `n` processors, seeded with `seed`.
    pub fn new(seed: u64, n: usize) -> Self {
        MutationEngine {
            // Pre-mix so seeds 0, 1, 2… do not share low-bit prefixes.
            state: splitmix64(seed ^ 0x636f_7665_7261_6765),
            n: n.max(1),
        }
    }

    /// Next value of the engine's splitmix64 stream.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// A random value in `0..bound` (`bound` ≥ 1).
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    /// Draw a value in `0..bound` from the engine's stream (`bound` is
    /// clamped to at least 1). The coverage driver uses this for corpus
    /// sampling so the whole hunt consumes **one** deterministic stream.
    pub fn choose(&mut self, bound: usize) -> usize {
        self.below(bound)
    }

    /// One fresh decision: mostly schedules over a `4n` index span (replay
    /// clamps), occasionally a crash of a random processor.
    fn fresh_decision(&mut self) -> Decision {
        if self.next().is_multiple_of(4) {
            Decision::Crash(ProcId(self.below(self.n)))
        } else {
            Decision::Schedule(self.below(4 * self.n))
        }
    }

    /// `base` with 1..=8 fresh decisions appended.
    fn extend(&mut self, base: &DecisionTrace) -> DecisionTrace {
        let extra = 1 + self.below(8);
        let mut decisions = base.decisions().to_vec();
        decisions.extend((0..extra).map(|_| self.fresh_decision()));
        DecisionTrace::from_decisions(decisions)
    }

    /// Mutate `base`, drawing splice material from `donor`. Deterministic in
    /// the engine state; the result is always replayable (see module docs).
    pub fn mutate(&mut self, base: &DecisionTrace, donor: &DecisionTrace) -> DecisionTrace {
        if base.is_empty() {
            // Truncate/perturb/duplicate are no-ops on an empty trace and a
            // splice of two empties is empty: force growth instead.
            return self.extend(base);
        }
        let len = base.len();
        match self.next() % 5 {
            // Truncate: keep a strict prefix.
            0 => base.truncated(self.below(len)),
            // Extend: append fresh decisions past the recorded end.
            1 => self.extend(base),
            // Perturb: rewrite one decision in place.
            2 => {
                let at = self.below(len);
                let mut decisions = base.decisions().to_vec();
                decisions[at] = self.fresh_decision();
                DecisionTrace::from_decisions(decisions)
            }
            // Splice: a prefix of `base` continued by a suffix of `donor`.
            3 => {
                let cut = self.below(len + 1);
                let from = self.below(donor.len() + 1);
                base.spliced(cut, donor, from)
            }
            // Duplicate: replay a window of `base` twice (prefix up to `j`,
            // then resume from `i` ≤ `j`, repeating `i..j`).
            _ => {
                let j = self.below(len + 1);
                let i = self.below(j + 1);
                base.spliced(j, base, i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(indices: &[usize]) -> DecisionTrace {
        indices.iter().map(|&i| Decision::Schedule(i)).collect()
    }

    #[test]
    fn mutation_is_deterministic_in_the_seed() {
        let base = trace(&[0, 1, 2, 3, 4, 5]);
        let donor = trace(&[9, 8, 7]);
        let mut a = MutationEngine::new(42, 4);
        let mut b = MutationEngine::new(42, 4);
        for _ in 0..64 {
            assert_eq!(a.mutate(&base, &donor), b.mutate(&base, &donor));
        }
        let mut c = MutationEngine::new(43, 4);
        let differs = (0..64)
            .any(|_| MutationEngine::new(42, 4).mutate(&base, &donor) != c.mutate(&base, &donor));
        assert!(
            differs,
            "different seeds produce different mutation streams"
        );
    }

    #[test]
    fn empty_bases_always_grow() {
        let empty = DecisionTrace::new();
        let mut engine = MutationEngine::new(7, 3);
        for _ in 0..32 {
            let mutated = engine.mutate(&empty, &empty);
            assert!(!mutated.is_empty(), "empty bases must degrade to extend");
            assert!(mutated.len() <= 8);
        }
    }

    #[test]
    fn every_operator_shows_up_and_crash_victims_stay_in_range() {
        let base = trace(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let donor = trace(&[100, 200]);
        let mut engine = MutationEngine::new(0, 4);
        let (mut shorter, mut longer, mut same_len) = (false, false, false);
        for _ in 0..256 {
            let mutated = engine.mutate(&base, &donor);
            shorter |= mutated.len() < base.len();
            longer |= mutated.len() > base.len();
            same_len |= mutated.len() == base.len();
            for decision in mutated.decisions() {
                if let Decision::Crash(victim) = decision {
                    assert!(victim.index() < 4, "crash victims are drawn from 0..n");
                }
            }
        }
        assert!(
            shorter && longer && same_len,
            "truncation, growth and rewrites all occur"
        );
    }
}
