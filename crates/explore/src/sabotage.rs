//! Intentionally broken protocol variants — mutation tests for the oracles.
//!
//! An explorer that never fires is indistinguishable from one that cannot
//! fire. This module provides *sabotaged* variants of the paper's protocols
//! built from a generic write-dropping wrapper ([`DropWrites`]): the
//! underlying state machine is untouched, but chosen register writes are
//! silently removed from its `propagate` calls — the classic "skip the
//! write" mutation. Each sabotage provably falsifies one of the guarantees
//! the oracles watch, so the integration suite can assert the whole pipeline
//! (strategy → oracle → recorded trace → shrinker) end to end:
//!
//! * [`SabotagedElectionScenario`] drops every `Round` write, blinding the
//!   `PreRound` filter of Figure 4: every processor that reaches round 2
//!   observes `R = 0 < r − 1` and returns `WIN`, so any schedule in which
//!   two processors survive sifting round 1 elects two leaders — caught by
//!   the unique-leader oracle.
//! * [`SabotagedSiftScenario`] drops the resolved-priority status write of
//!   the PoisonPill (Figure 1, line 7): processors still announce `Commit`
//!   but never publish their coin, so in an all-low execution every
//!   processor observes some commit with no low report and swallows the
//!   pill — a wipeout, caught by the survivor-bound oracle.

use crate::oracles::{Oracle, SurvivorBoundOracle, UniqueLeaderOracle};
use crate::scenario::Scenario;
use fle_model::{Action, Key, LocalStateView, ProcId, Protocol, Response, Value};

/// A protocol wrapper that drops matching entries from every `Propagate`
/// action of the inner protocol — "skip the write" as a combinator.
///
/// Everything else (collects, coin flips, returns, the adversary view) is
/// forwarded untouched, so the mutation is exactly the missing writes.
#[derive(Debug)]
pub struct DropWrites<P> {
    inner: P,
    drop_if: fn(&Key, &Value) -> bool,
    dropped: u64,
}

impl<P: Protocol> DropWrites<P> {
    /// Wrap `inner`, dropping every propagated entry for which `drop_if`
    /// holds.
    pub fn new(inner: P, drop_if: fn(&Key, &Value) -> bool) -> Self {
        DropWrites {
            inner,
            drop_if,
            dropped: 0,
        }
    }

    /// How many entries have been dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl<P: Protocol> Protocol for DropWrites<P> {
    fn step(&mut self, response: Response) -> Action {
        match self.inner.step(response) {
            Action::Propagate { entries } => {
                let kept: Vec<(Key, Value)> = entries
                    .into_iter()
                    .filter(|(key, value)| {
                        let doomed = (self.drop_if)(key, value);
                        if doomed {
                            self.dropped += 1;
                        }
                        !doomed
                    })
                    .collect();
                Action::Propagate { entries: kept }
            }
            other => other,
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        self.inner.adversary_view()
    }
}

/// Leader election whose `Round` writes are dropped (see the module docs):
/// two leaders are elected whenever two processors survive sifting round 1.
#[derive(Debug, Clone, Copy)]
pub struct SabotagedElectionScenario {
    /// System size.
    pub n: usize,
    /// Number of participants (`k ≤ n`, clamped).
    pub k: usize,
}

fn is_round_write(_key: &Key, value: &Value) -> bool {
    matches!(value, Value::Round(_))
}

impl Scenario for SabotagedElectionScenario {
    fn name(&self) -> String {
        format!(
            "sabotaged-election-no-round-writes(n={}, k={})",
            self.n, self.k
        )
    }

    fn n(&self) -> usize {
        self.n
    }

    fn participants(&self) -> Vec<ProcId> {
        (0..self.k.min(self.n)).map(ProcId).collect()
    }

    fn protocols(&self) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
        self.participants()
            .into_iter()
            .map(|p| {
                (
                    p,
                    Box::new(DropWrites::new(
                        fle_core::LeaderElection::new(p),
                        is_round_write,
                    )) as Box<dyn Protocol + Send>,
                )
            })
            .collect()
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        // Only the invariant this mutation falsifies: liveness and
        // linearizability still hold for the mutant and would only add noise.
        vec![Box::new(UniqueLeaderOracle)]
    }
}

/// A fixed-bias PoisonPill phase whose resolved-priority writes are dropped
/// (the issue's "skip the PoisonPill write"): an all-low execution wipes out
/// every participant.
///
/// The wipeout needs every coin to land low, and the coin draws depend only
/// on the simulator seed (one `Flip` per participant, in schedule order), so
/// the bias is a parameter: hunting with a small `bias` makes most seeds
/// produce the all-low coin pattern the mutation is vulnerable to, while the
/// *healthy* protocol survives those same executions (Claim 3.1 holds for
/// every bias).
#[derive(Debug, Clone, Copy)]
pub struct SabotagedSiftScenario {
    /// System size (= participant count).
    pub n: usize,
    /// Probability of flipping high (the healthy default is `1/√n`).
    pub bias: f64,
}

fn is_priority_write(_key: &Key, value: &Value) -> bool {
    value
        .as_status()
        .is_some_and(|status| status.priority().is_some())
}

impl Scenario for SabotagedSiftScenario {
    fn name(&self) -> String {
        format!(
            "sabotaged-poison-pill-no-priority-writes(n={}, bias={})",
            self.n, self.bias
        )
    }

    fn n(&self) -> usize {
        self.n
    }

    fn participants(&self) -> Vec<ProcId> {
        (0..self.n).map(ProcId).collect()
    }

    fn protocols(&self) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
        self.participants()
            .into_iter()
            .map(|p| {
                (
                    p,
                    Box::new(DropWrites::new(
                        fle_core::PoisonPill::with_bias(p, self.bias),
                        is_priority_write,
                    )) as Box<dyn Protocol + Send>,
                )
            })
            .collect()
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        vec![Box::new(SurvivorBoundOracle)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::{InstanceId, Priority, Status};

    /// A protocol emitting one mixed propagate, for wrapper testing.
    struct TwoWrites;

    impl Protocol for TwoWrites {
        fn step(&mut self, _response: Response) -> Action {
            Action::Propagate {
                entries: vec![
                    (
                        Key::proc(InstanceId::custom(1, 1), ProcId(0)),
                        Value::Round(3),
                    ),
                    (Key::global(InstanceId::custom(1, 1)), Value::Flag(true)),
                ],
            }
        }

        fn adversary_view(&self) -> LocalStateView {
            LocalStateView::new("two-writes", "t")
        }
    }

    #[test]
    fn drop_writes_filters_exactly_the_matching_entries() {
        let mut wrapped = DropWrites::new(TwoWrites, is_round_write);
        let Action::Propagate { entries } = wrapped.step(Response::Start) else {
            panic!("the inner protocol propagates");
        };
        assert_eq!(entries.len(), 1);
        assert!(matches!(entries[0].1, Value::Flag(true)));
        assert_eq!(wrapped.dropped(), 1);
        assert_eq!(wrapped.adversary_view().algorithm, "two-writes");
    }

    #[test]
    fn priority_writes_are_identified() {
        let key = Key::proc(InstanceId::custom(1, 1), ProcId(0));
        assert!(is_priority_write(
            &key,
            &Value::Status(Status::resolved(Priority::Low))
        ));
        assert!(is_priority_write(
            &key,
            &Value::Status(Status::resolved(Priority::High))
        ));
        assert!(!is_priority_write(&key, &Value::Status(Status::Commit)));
        assert!(!is_priority_write(&key, &Value::Flag(true)));
    }

    #[test]
    fn sabotaged_scenarios_install_and_return() {
        // The mutants must still *terminate* under a benign scheduler —
        // sabotage breaks safety, not the state machines.
        use fle_sim::{RandomAdversary, SimConfig, Simulator};
        let election = SabotagedElectionScenario { n: 4, k: 4 };
        let mut sim = Simulator::new(SimConfig::new(4).with_seed(3));
        election.install(&mut sim);
        let report = sim
            .run(&mut RandomAdversary::with_seed(3))
            .expect("the mutant still terminates");
        assert_eq!(report.outcomes.len(), 4);

        let sift = SabotagedSiftScenario { n: 4, bias: 0.1 };
        let mut sim = Simulator::new(SimConfig::new(4).with_seed(3));
        sift.install(&mut sim);
        let report = sim
            .run(&mut RandomAdversary::with_seed(3))
            .expect("the mutant still terminates");
        assert_eq!(report.outcomes.len(), 4);
    }
}
