//! Coverage-guided schedule search: feedback-driven adversarial hunts with a
//! trace corpus and a mutation engine.
//!
//! The blind explorer ([`crate::Explorer`]) sweeps a fixed
//! `strategy × seed` grid; every episode is as likely as the last to probe a
//! behaviour the oracles have already cleared. This module closes the loop
//! the way coverage-guided fuzzers do:
//!
//! 1. **Signal** ([`SignalProbe`]): every episode is observed at each oracle
//!    check point (per event on the simulator, per grant on the gated
//!    backends, per super-round barrier on the partitioned engine) and
//!    condensed into a set of *feature codes* — per-round sifting-survivor
//!    profiles, phase footprints, outcome multisets and oracle near-miss
//!    buckets — plus an interleaving-class hash over the decision sequence.
//! 2. **Corpus** ([`crate::corpus::Corpus`]): episodes that produced a novel
//!    feature are retained, deduplicated by interleaving class, and persist
//!    through the existing compact trace codec.
//! 3. **Mutation** ([`crate::mutate::MutationEngine`]): retained traces are
//!    truncated, extended, perturbed, spliced and duplicated; the tolerant
//!    replayers guarantee every mutant is a valid schedule on every backend.
//! 4. **Driver** ([`CoverageExplorer`]): seeds the corpus from the strategy
//!    library, then fans mutate→run→evaluate batches across cores with
//!    [`fle_bench::BatchRunner`]. Batches are folded in job order, so a hunt
//!    is a pure function of `(scenario, backend, config)` — independent of
//!    the worker-thread count, like everything else in this crate.
//!
//! [`compare_kill_time`] runs the blind grid and a guided hunt under the
//! same episode budget and reports how many episodes each needed to first
//! kill a mutant — the honesty check behind the numbers in EXPERIMENTS.md.

use crate::concurrent::{drive_gated, GatedSubstrate};
use crate::corpus::Corpus;
use crate::explorer::{drive, DriveOutcome, EpisodePlan, ExploreBackend};
use crate::mutate::MutationEngine;
use crate::oracles::{OracleCtx, Violation};
use crate::partitioned::drive_partitioned;
use crate::scenario::Scenario;
use crate::strategies::StrategySpec;
use fle_bench::BatchRunner;
use fle_model::{splitmix64, Outcome};
use fle_sim::{
    Adversary, Decision, DecisionTrace, ProcessPhase, RecordingAdversary, ReplayAdversary,
};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Coverage signal
// ---------------------------------------------------------------------------

/// Observes an episode at every oracle check point. The driver threads a
/// probe through each backend's drive loop; [`NullProbe`] keeps the blind
/// paths zero-cost.
pub trait CoverageProbe {
    /// Called with the same [`OracleCtx`] the oracles see.
    fn observe(&mut self, ctx: &OracleCtx<'_>);
}

/// The no-op probe used by every non-coverage code path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl CoverageProbe for NullProbe {
    fn observe(&mut self, _ctx: &OracleCtx<'_>) {}
}

/// What one episode contributed to coverage: its interleaving class and the
/// feature codes it exhibited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageSignal {
    /// Hash of `(decision sequence, sim_seed)` — the dedup key of the corpus.
    pub class: u64,
    /// Feature codes (tag in the top byte, payload below; see the
    /// `TAG_*` constants).
    pub features: Vec<u64>,
}

/// Feature tag: phase footprint — some processor was observed in a given
/// `(algorithm, phase, round bucket)` local state.
pub const TAG_PHASE: u64 = 1;
/// Feature tag: per-round survivor profile — how many processors ever
/// reached sifting round `r` (count bucketed).
pub const TAG_ROUND_PROFILE: u64 = 2;
/// Feature tag: final outcome multiset — the episode's
/// `(wins, losses, survivors, deaths, names, crashes)` census.
pub const TAG_OUTCOMES: u64 = 3;
/// Feature tag: oracle near-miss — how close `unique-leader` (a winner
/// decided while contenders were still live), `survivor-bound` (survivor
/// count) or the termination budget (event-count magnitude) came to firing.
pub const TAG_NEAR_MISS: u64 = 4;

/// Near-miss oracle codes inside [`TAG_NEAR_MISS`] payloads.
const NEAR_MISS_UNIQUE_LEADER: u64 = 1;
const NEAR_MISS_SURVIVOR_BOUND: u64 = 2;
const NEAR_MISS_TERMINATION: u64 = 3;

fn feature(tag: u64, payload: u64) -> u64 {
    (tag << 56) | (payload & ((1 << 56) - 1))
}

/// Exact for small counts, logarithmic beyond 8 — distinguishes "2 vs 3
/// survivors" (where the paper's bounds live) without exploding the feature
/// space for large systems.
fn bucket(count: usize) -> u64 {
    if count <= 8 {
        count as u64
    } else {
        8 + (usize::BITS - count.leading_zeros()) as u64
    }
}

fn hash_str(text: &str) -> u64 {
    // FNV-1a, folded through splitmix64 for avalanche.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// The interleaving-class hash of a `(trace, sim_seed)` pair: the corpus
/// dedup key. Order-sensitive over the decision sequence, so two schedules
/// that permute the same decisions land in different classes.
pub fn trace_class(trace: &DecisionTrace, sim_seed: u64) -> u64 {
    let mut h = splitmix64(sim_seed ^ 0x7472_6163_655f_636c);
    for decision in trace.decisions() {
        let code = match *decision {
            Decision::Schedule(index) => (index as u64) << 1,
            Decision::Crash(victim) => ((victim.index() as u64) << 1) | 1,
        };
        h = splitmix64(h ^ code);
    }
    h
}

/// Accumulates the coverage signal of one episode.
#[derive(Debug, Default)]
pub struct SignalProbe {
    /// Max sifting round ever observed per processor index.
    rounds: Vec<u64>,
    /// Features earned during the run (phase footprints, near-misses).
    features: BTreeSet<u64>,
    /// Final outcome census `(win, lose, survive, die, proceed, name,
    /// crashed)`, refreshed at every observation.
    census: [usize; 7],
}

impl SignalProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        SignalProbe::default()
    }

    /// Condense the accumulated observations into the episode's signal.
    /// `events` is the episode's final event/grant count (feeds the
    /// termination near-miss bucket).
    pub fn into_signal(self, class: u64, events: u64) -> CoverageSignal {
        let mut features = self.features;
        // Per-round survivor profile: how many processors ever reached round
        // r, for every round anyone reached.
        let max_round = self.rounds.iter().copied().max().unwrap_or(0);
        for round in 1..=max_round.min(255) {
            let reached = self.rounds.iter().filter(|&&r| r >= round).count();
            features.insert(feature(TAG_ROUND_PROFILE, (round << 16) | bucket(reached)));
        }
        // Outcome multiset: one feature for the whole census.
        let mut census_hash = CENSUS_SEED;
        for count in self.census {
            census_hash = splitmix64(census_hash ^ bucket(count));
        }
        features.insert(feature(TAG_OUTCOMES, census_hash >> 8));
        // Termination near-miss: event-count magnitude.
        features.insert(feature(
            TAG_NEAR_MISS,
            (NEAR_MISS_TERMINATION << 16) | (64 - events.leading_zeros() as u64),
        ));
        CoverageSignal {
            class,
            features: features.into_iter().collect(),
        }
    }
}

/// Seed of the outcome-census hash (`b"census"` as an integer).
const CENSUS_SEED: u64 = 0x6365_6e73_7573;

impl CoverageProbe for SignalProbe {
    fn observe(&mut self, ctx: &OracleCtx<'_>) {
        if self.rounds.len() < ctx.observation.n {
            self.rounds.resize(ctx.observation.n, 0);
        }
        let mut live = 0usize;
        for process in &ctx.observation.processes {
            if matches!(process.phase, ProcessPhase::StepReady) {
                live += 1;
            }
            if let Some(state) = &process.local_state {
                let index = process.proc.index();
                if index < self.rounds.len() && state.round > self.rounds[index] {
                    self.rounds[index] = state.round;
                }
                // Phase footprint: which (algorithm, phase, round bucket)
                // local states the schedule ever exposed.
                let payload = splitmix64(
                    hash_str(state.algorithm)
                        ^ hash_str(state.phase).rotate_left(17)
                        ^ bucket(state.round as usize),
                ) >> 8;
                self.features.insert(feature(TAG_PHASE, payload));
            }
        }
        let mut census = [0usize; 7];
        for outcome in ctx.report.outcomes.values() {
            let slot = match outcome {
                Outcome::Win => 0,
                Outcome::Lose => 1,
                Outcome::Survive => 2,
                Outcome::Die => 3,
                Outcome::Proceed => 4,
                Outcome::Name(_) => 5,
            };
            census[slot] += 1;
        }
        census[6] = ctx.report.crashed.len();
        // Unique-leader near-miss: a winner exists while contenders are
        // still live — one more win fires the oracle. Bucket by how many
        // contenders could still deliver it.
        if census[0] >= 1 {
            self.features.insert(feature(
                TAG_NEAR_MISS,
                (NEAR_MISS_UNIQUE_LEADER << 16) | ((census[0] as u64) << 8) | bucket(live),
            ));
        }
        // Survivor-bound near-miss: the survivor count itself (the bound
        // oracle fires when it exceeds the scenario's cap).
        if census[2] >= 1 {
            self.features.insert(feature(
                TAG_NEAR_MISS,
                (NEAR_MISS_SURVIVOR_BOUND << 16) | bucket(census[2]),
            ));
        }
        self.census = census;
    }
}

// ---------------------------------------------------------------------------
// Probed episodes
// ---------------------------------------------------------------------------

/// One unit of work in a coverage hunt.
#[derive(Debug, Clone)]
enum CoverageJob {
    /// A strategy-library episode seeding the corpus.
    Seed(EpisodePlan),
    /// A mutated corpus trace replayed under `sim_seed`.
    Mutant { trace: DecisionTrace, sim_seed: u64 },
}

/// Degrades crash decisions the partitioned engine would reject. A
/// partition may only crash processors it owns, and remote processors
/// appear [`ProcessPhase::Idle`] in its observation — so crashes of
/// anything but a live local processor (or with no budget left) degrade to
/// scheduling the oldest enabled event, the same tolerance rule the
/// replayers apply to illegal crashes everywhere else.
struct PartitionSafe<A> {
    inner: A,
}

impl<A: Adversary> Adversary for PartitionSafe<A> {
    fn decide(
        &mut self,
        observation: &fle_sim::SystemObservation,
        enabled: &fle_sim::EnabledEvents<'_>,
    ) -> Decision {
        match self.inner.decide(observation, enabled) {
            Decision::Crash(victim) => {
                let local_live = victim.index() < observation.n
                    && matches!(
                        observation.process(victim).phase,
                        ProcessPhase::NotStarted
                            | ProcessPhase::StepReady
                            | ProcessPhase::AwaitingQuorum
                    );
                if local_live && observation.crash_budget_left > 0 {
                    Decision::Crash(victim)
                } else {
                    Decision::Schedule(0)
                }
            }
            decision => decision,
        }
    }

    fn name(&self) -> &'static str {
        "partition-safe"
    }
}

/// The outcome of one probed episode.
struct ProbedEpisode {
    violation: Option<Violation>,
    /// The executed schedule: the recording of the (strategy or replay)
    /// adversary on trace-carrying backends; the *installed* trace on the
    /// partitioned backend (empty for seed episodes — the plan is the
    /// replay token there).
    trace: DecisionTrace,
    sim_seed: u64,
    signal: CoverageSignal,
}

/// Run one job on `backend` with a [`SignalProbe`] attached.
fn run_probed(
    scenario: &dyn Scenario,
    backend: ExploreBackend,
    job: &CoverageJob,
) -> ProbedEpisode {
    let mut probe = SignalProbe::new();
    let sim_seed = match job {
        CoverageJob::Seed(plan) => plan.sim_seed,
        CoverageJob::Mutant { sim_seed, .. } => *sim_seed,
    };
    let (violation, trace, events) = if let ExploreBackend::Partitioned(config) = backend {
        let (violation, events) = match job {
            CoverageJob::Seed(plan) => {
                let strategy = plan.strategy;
                let strategy_seed = plan.strategy_seed;
                drive_partitioned(
                    scenario,
                    sim_seed,
                    |_part, seed| strategy.build(splitmix64(seed ^ strategy_seed)),
                    &config,
                    &mut probe,
                )
            }
            CoverageJob::Mutant { trace, .. } => drive_partitioned(
                scenario,
                sim_seed,
                |_part, _seed| {
                    Box::new(PartitionSafe {
                        inner: ReplayAdversary::new(trace),
                    })
                },
                &config,
                &mut probe,
            ),
        };
        let trace = match job {
            CoverageJob::Seed(_) => DecisionTrace::new(),
            CoverageJob::Mutant { trace, .. } => trace.clone(),
        };
        (violation, trace, events)
    } else {
        let adversary: Box<dyn Adversary> = match job {
            CoverageJob::Seed(plan) => {
                let strategy = plan.strategy.build(plan.strategy_seed);
                match backend {
                    // Honor the gated backends' preemption bound for
                    // strategy episodes, like the blind explorer does.
                    ExploreBackend::Concurrent(cfg) | ExploreBackend::Async(cfg) => {
                        match cfg.preemption_bound {
                            Some(bound) => {
                                Box::new(crate::strategies::PreemptionBound::new(strategy, bound))
                            }
                            None => strategy,
                        }
                    }
                    _ => strategy,
                }
            }
            CoverageJob::Mutant { trace, .. } => Box::new(ReplayAdversary::new(trace)),
        };
        let mut recording = RecordingAdversary::new(adversary);
        let (violation, events) = match backend {
            ExploreBackend::Sim => match drive(scenario, sim_seed, &mut recording, &mut probe) {
                DriveOutcome::Clean { events } => (None, events),
                DriveOutcome::Violated(violation) => {
                    let events = violation.events_executed;
                    (Some(violation), events)
                }
            },
            ExploreBackend::Concurrent(config) => drive_gated(
                scenario,
                sim_seed,
                &mut recording,
                &config,
                GatedSubstrate::Threads,
                &mut probe,
            ),
            ExploreBackend::Async(config) => drive_gated(
                scenario,
                sim_seed,
                &mut recording,
                &config,
                GatedSubstrate::Tasks,
                &mut probe,
            ),
            ExploreBackend::Partitioned(_) => unreachable!("handled above"),
        };
        (violation, recording.into_trace(), events)
    };
    let class = trace_class(&trace, sim_seed);
    let signal = probe.into_signal(class, events);
    ProbedEpisode {
        violation,
        trace,
        sim_seed,
        signal,
    }
}

// ---------------------------------------------------------------------------
// The coverage-guided driver
// ---------------------------------------------------------------------------

/// Knobs of a coverage-guided hunt.
#[derive(Debug, Clone)]
pub struct CoverageConfig {
    /// Total episode budget (seeding + mutation).
    pub budget: usize,
    /// Episodes per parallel batch (corpus updates fold between batches).
    pub batch: usize,
    /// Seed of the mutation engine and all corpus-sampling choices.
    pub master_seed: u64,
    /// Simulator seeds: seeding sweeps them seed-major; mutant episodes
    /// mostly inherit their base entry's seed and occasionally rotate.
    pub sim_seeds: Vec<u64>,
    /// Strategies that seed the corpus (default: the standard library).
    pub strategies: Vec<StrategySpec>,
    /// Stop launching batches once a violation has been found.
    pub stop_on_violation: bool,
}

impl Default for CoverageConfig {
    fn default() -> Self {
        CoverageConfig {
            budget: 192,
            batch: 12,
            master_seed: 0,
            sim_seeds: (0..4).collect(),
            strategies: StrategySpec::library(),
            stop_on_violation: false,
        }
    }
}

/// Where a coverage-hunt violation came from.
#[derive(Debug, Clone)]
pub enum EpisodeOrigin {
    /// A strategy-library seeding episode.
    Seeded(EpisodePlan),
    /// A mutated corpus trace.
    Mutated,
}

/// A violation found by a coverage hunt, replayable from
/// `(scenario, sim_seed, decisions)` alone on the trace-carrying backends
/// (on the partitioned backend `decisions` is the trace installed into every
/// partition: re-running the mutant episode is the replay).
#[derive(Debug, Clone)]
pub struct CoverageViolation {
    /// Which invariant broke, and when.
    pub violation: Violation,
    /// The executed schedule that broke it.
    pub decisions: DecisionTrace,
    /// The simulator seed of the episode.
    pub sim_seed: u64,
    /// 1-based index of the episode in the hunt's deterministic order.
    pub episode: usize,
    /// Seeded or mutated.
    pub origin: EpisodeOrigin,
}

/// The result of one coverage-guided hunt.
#[derive(Debug, Default)]
pub struct CoverageReport {
    /// Episodes executed (seeding + mutation).
    pub episodes: usize,
    /// Violations in deterministic episode order.
    pub violations: Vec<CoverageViolation>,
    /// The final corpus (retained traces + global coverage map).
    pub corpus: Corpus,
    /// Coverage growth curve: `(episodes so far, distinct features)`
    /// sampled after every batch.
    pub growth: Vec<(usize, usize)>,
    /// 1-based index of the first violating episode, if any.
    pub first_violation_episode: Option<usize>,
}

impl CoverageReport {
    /// Distinct feature codes in the global coverage map.
    pub fn distinct_features(&self) -> usize {
        self.corpus.distinct_features()
    }

    /// Whether the growth curve is monotone non-decreasing (it must be: the
    /// coverage map only ever gains features — this is the CI sanity gate).
    pub fn growth_is_monotone(&self) -> bool {
        self.growth.windows(2).all(|w| w[0].1 <= w[1].1)
    }
}

/// The coverage-guided hunt driver. See the module docs for the loop shape.
pub struct CoverageExplorer<'a> {
    scenario: &'a dyn Scenario,
    backend: ExploreBackend,
    config: CoverageConfig,
    runner: BatchRunner,
}

impl<'a> CoverageExplorer<'a> {
    /// A coverage hunt over `scenario` on the simulator backend with the
    /// default config and one worker per core.
    pub fn new(scenario: &'a dyn Scenario) -> Self {
        CoverageExplorer {
            scenario,
            backend: ExploreBackend::Sim,
            config: CoverageConfig::default(),
            runner: BatchRunner::new(),
        }
    }

    /// Hunt on a different execution substrate.
    #[must_use]
    pub fn with_backend(mut self, backend: ExploreBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replace the hunt config.
    #[must_use]
    pub fn with_config(mut self, config: CoverageConfig) -> Self {
        self.config = config;
        self
    }

    /// Use an explicit worker-thread count (cannot affect the outcome, only
    /// the wall clock).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.runner = BatchRunner::with_threads(threads);
        self
    }

    /// The seeding plans, seed-major (all strategies at `sim_seeds[0]`
    /// first): the corpus earns entries for every simulator seed before
    /// mutation starts, and a kill that needs a later seed is reached after
    /// `seeds × strategies` episodes instead of the blind grid's
    /// strategy-major sweep.
    fn seed_plans(&self) -> Vec<EpisodePlan> {
        let mut plans = Vec::new();
        for &sim_seed in &self.config.sim_seeds {
            for &strategy in &self.config.strategies {
                plans.push(EpisodePlan {
                    strategy,
                    sim_seed,
                    strategy_seed: 0,
                });
            }
        }
        plans
    }

    /// Run the hunt: seed, then mutate→run→evaluate batches until the
    /// budget is spent (or the first violation under `stop_on_violation`).
    /// Deterministic in `(scenario, backend, config)`; thread count and
    /// machine load cannot change the report.
    pub fn explore(&self) -> CoverageReport {
        let scenario = self.scenario;
        let backend = self.backend;
        let config = &self.config;
        let mut corpus = Corpus::new();
        let mut engine = MutationEngine::new(config.master_seed, scenario.n().max(1));
        let mut report = CoverageReport::default();
        let mut pending_seeds = self.seed_plans().into_iter();
        let empty = DecisionTrace::new();

        while report.episodes < config.budget {
            if config.stop_on_violation && report.first_violation_episode.is_some() {
                break;
            }
            // Build the next batch from the current corpus snapshot.
            let mut jobs: Vec<CoverageJob> = Vec::new();
            while jobs.len() < config.batch && report.episodes + jobs.len() < config.budget {
                if let Some(plan) = pending_seeds.next() {
                    jobs.push(CoverageJob::Seed(plan));
                } else if corpus.is_empty() {
                    // Every considered episode earns *some* feature, so this
                    // only happens with an empty strategy list: grow from
                    // nothing.
                    let sim_seed = config
                        .sim_seeds
                        .get(engine.choose(config.sim_seeds.len()))
                        .copied()
                        .unwrap_or(0);
                    jobs.push(CoverageJob::Mutant {
                        trace: engine.mutate(&empty, &empty),
                        sim_seed,
                    });
                } else {
                    let base = &corpus.entries()[engine.choose(corpus.len())];
                    let donor = &corpus.entries()[engine.choose(corpus.len())];
                    let trace = engine.mutate(&base.trace, &donor.trace);
                    // Mostly re-run under the base's own seed (stay in the
                    // behaviour neighbourhood), sometimes rotate to carry a
                    // good schedule shape to a fresh coin stream.
                    let sim_seed = if engine.choose(4) == 0 && !config.sim_seeds.is_empty() {
                        config.sim_seeds[engine.choose(config.sim_seeds.len())]
                    } else {
                        base.sim_seed
                    };
                    jobs.push(CoverageJob::Mutant { trace, sim_seed });
                }
            }
            if jobs.is_empty() {
                break;
            }
            let results = self
                .runner
                .map(&jobs, |job| run_probed(scenario, backend, job));
            // Fold in job order: the corpus (and therefore the next batch)
            // is independent of which worker finished first.
            for (job, episode) in jobs.iter().zip(results) {
                report.episodes += 1;
                corpus.consider(&episode.trace, episode.sim_seed, &episode.signal);
                if let Some(violation) = episode.violation {
                    if report.first_violation_episode.is_none() {
                        report.first_violation_episode = Some(report.episodes);
                    }
                    report.violations.push(CoverageViolation {
                        violation,
                        decisions: episode.trace,
                        sim_seed: episode.sim_seed,
                        episode: report.episodes,
                        origin: match job {
                            CoverageJob::Seed(plan) => EpisodeOrigin::Seeded(*plan),
                            CoverageJob::Mutant { .. } => EpisodeOrigin::Mutated,
                        },
                    });
                }
            }
            report
                .growth
                .push((report.episodes, corpus.distinct_features()));
        }
        report.corpus = corpus;
        report
    }
}

// ---------------------------------------------------------------------------
// Kill-time comparison: blind grid vs. guided hunt
// ---------------------------------------------------------------------------

/// Episodes-to-first-kill of the blind grid and the guided hunt under one
/// shared budget. `None` means the mutant survived the whole budget.
#[derive(Debug, Clone, Copy)]
pub struct KillComparison {
    /// 1-based episode index of the blind grid's first kill.
    pub blind: Option<usize>,
    /// 1-based episode index of the guided hunt's first kill.
    pub guided: Option<usize>,
    /// The shared episode budget.
    pub budget: usize,
}

impl KillComparison {
    /// The CI gate: the guided hunt killed the mutant, no more than
    /// `factor ×` the blind episode count (a blind miss counts as the full
    /// budget).
    pub fn guided_within(&self, factor: usize) -> bool {
        match (self.guided, self.blind) {
            (Some(guided), Some(blind)) => guided <= factor * blind,
            (Some(guided), None) => guided <= factor * self.budget,
            (None, _) => false,
        }
    }
}

/// Run the blind strategy grid and a guided hunt over the same scenario,
/// backend, seeds and budget; report episodes-to-first-kill for both.
///
/// The blind grid is the [`crate::Explorer`] enumeration (strategy-major,
/// then sim seed, then strategy seeds 0..2) truncated to the budget; its
/// kill time is the 1-based grid index of the first violating episode. The
/// guided kill time is [`CoverageReport::first_violation_episode`]. Both
/// sides run the *same* episode primitives, so the comparison is apples to
/// apples.
pub fn compare_kill_time(
    scenario: &dyn Scenario,
    backend: ExploreBackend,
    config: &CoverageConfig,
    threads: usize,
) -> KillComparison {
    // Blind side: the Explorer grid order, evaluated in batches so an early
    // kill does not cost the whole budget.
    let mut plans = Vec::new();
    'grid: for &strategy in &config.strategies {
        for &sim_seed in &config.sim_seeds {
            for strategy_seed in 0..2 {
                plans.push(EpisodePlan {
                    strategy,
                    sim_seed,
                    strategy_seed,
                });
                if plans.len() >= config.budget {
                    break 'grid;
                }
            }
        }
    }
    let runner = BatchRunner::with_threads(threads);
    let mut blind = None;
    'batches: for (chunk_index, chunk) in plans.chunks(config.batch.max(1)).enumerate() {
        let outcomes = runner.map(chunk, |plan| {
            let job = CoverageJob::Seed(*plan);
            run_probed(scenario, backend, &job).violation.is_some()
        });
        for (offset, violated) in outcomes.iter().enumerate() {
            if *violated {
                blind = Some(chunk_index * config.batch.max(1) + offset + 1);
                break 'batches;
            }
        }
    }

    // Guided side: the coverage loop with the same budget, stopping at the
    // first kill.
    let mut guided_config = config.clone();
    guided_config.stop_on_violation = true;
    let guided = CoverageExplorer::new(scenario)
        .with_backend(backend)
        .with_config(guided_config)
        .with_threads(threads)
        .explore()
        .first_violation_episode;

    KillComparison {
        blind,
        guided,
        budget: config.budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sabotage::SabotagedElectionScenario;
    use crate::scenario::ElectionScenario;
    use fle_model::ProcId;

    fn trace(indices: &[usize]) -> DecisionTrace {
        indices.iter().map(|&i| Decision::Schedule(i)).collect()
    }

    #[test]
    fn trace_class_is_order_and_seed_sensitive() {
        let a = trace(&[0, 1, 2]);
        let b = trace(&[2, 1, 0]);
        assert_ne!(trace_class(&a, 0), trace_class(&b, 0), "order matters");
        assert_ne!(trace_class(&a, 0), trace_class(&a, 1), "seed matters");
        assert_eq!(trace_class(&a, 3), trace_class(&a, 3), "pure function");
        let crashy: DecisionTrace = vec![Decision::Crash(ProcId(1)), Decision::Schedule(0)]
            .into_iter()
            .collect();
        assert_ne!(
            trace_class(&crashy, 0),
            trace_class(&trace(&[1, 0]), 0),
            "crashes and schedules of the same index differ"
        );
    }

    #[test]
    fn buckets_are_exact_then_logarithmic() {
        for count in 0..=8 {
            assert_eq!(bucket(count), count as u64);
        }
        assert_eq!(bucket(9), bucket(15));
        assert!(bucket(16) > bucket(15));
        assert!(bucket(1 << 20) > bucket(1 << 10));
    }

    #[test]
    fn probed_sim_episodes_produce_features_and_match_blind_outcomes() {
        // The probe is an observer: a probed episode's violation verdict must
        // equal the blind episode's, and a real run earns a non-trivial
        // feature set (phase footprints, round profile, outcome census).
        let scenario = ElectionScenario { n: 4, k: 4 };
        let plan = EpisodePlan {
            strategy: StrategySpec::SplitBrain { burst: 4 },
            sim_seed: 0,
            strategy_seed: 0,
        };
        let probed = run_probed(&scenario, ExploreBackend::Sim, &CoverageJob::Seed(plan));
        assert!(probed.violation.is_none(), "healthy election stays clean");
        assert!(
            probed.signal.features.len() >= 4,
            "a full episode earns several features, got {:?}",
            probed.signal.features.len()
        );
        assert!(
            !probed.trace.is_empty(),
            "the executed schedule is recorded"
        );
        assert_eq!(probed.signal.class, trace_class(&probed.trace, 0));
    }

    #[test]
    fn coverage_hunts_are_deterministic_across_thread_counts() {
        let scenario = ElectionScenario { n: 4, k: 4 };
        let config = CoverageConfig {
            budget: 24,
            batch: 6,
            sim_seeds: vec![0, 1],
            ..CoverageConfig::default()
        };
        let serial = CoverageExplorer::new(&scenario)
            .with_config(config.clone())
            .with_threads(1)
            .explore();
        let parallel = CoverageExplorer::new(&scenario)
            .with_config(config)
            .with_threads(8)
            .explore();
        assert_eq!(serial.episodes, parallel.episodes);
        assert_eq!(serial.distinct_features(), parallel.distinct_features());
        assert_eq!(serial.corpus.len(), parallel.corpus.len());
        assert_eq!(serial.growth, parallel.growth);
        assert_eq!(serial.violations.len(), parallel.violations.len());
        assert!(serial.growth_is_monotone());
    }

    #[test]
    fn guided_hunt_kills_the_sabotaged_election_and_replays_the_kill() {
        let scenario = SabotagedElectionScenario { n: 4, k: 4 };
        let config = CoverageConfig {
            budget: 96,
            batch: 8,
            sim_seeds: (0..4).collect(),
            stop_on_violation: true,
            ..CoverageConfig::default()
        };
        let report = CoverageExplorer::new(&scenario)
            .with_config(config)
            .with_threads(4)
            .explore();
        let kill = report
            .first_violation_episode
            .expect("the sabotaged election must be killed within the budget");
        assert!(kill <= report.episodes);
        let found = &report.violations[0];
        assert_eq!(found.violation.oracle, crate::oracles::UNIQUE_LEADER);
        // The executed schedule is a genuine counterexample: replaying it
        // against the same scenario and sim seed refires the same oracle.
        let (violation, _) = crate::explorer::replay(&scenario, found.sim_seed, &found.decisions);
        assert_eq!(
            violation.map(|v| v.oracle),
            Some(crate::oracles::UNIQUE_LEADER),
            "coverage-hunt counterexamples replay from (sim_seed, decisions)"
        );
    }

    #[test]
    fn empty_strategy_lists_still_explore_from_nothing() {
        // With no seeding strategies the driver grows traces from the empty
        // base; the hunt must still make progress (features > 0) and stay
        // within budget.
        let scenario = ElectionScenario { n: 3, k: 3 };
        let config = CoverageConfig {
            budget: 8,
            batch: 4,
            strategies: Vec::new(),
            sim_seeds: vec![0],
            ..CoverageConfig::default()
        };
        let report = CoverageExplorer::new(&scenario)
            .with_config(config)
            .with_threads(2)
            .explore();
        assert_eq!(report.episodes, 8);
        assert!(report.distinct_features() > 0);
        assert!(report.growth_is_monotone());
    }
}
