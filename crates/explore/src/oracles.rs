//! Safety oracles: invariant monitors evaluated *online*, after every
//! executed event.
//!
//! An [`Oracle`] watches one of the paper's guarantees over the in-progress
//! execution (via [`OracleCtx`]) and reports a [`Violation`] the moment the
//! guarantee is falsified, so the explorer can stop the episode at the first
//! bad event — which also makes the recorded counterexample as short as
//! possible before shrinking even starts. The predicates themselves live in
//! `fle_core::checks`; the oracles add the online-evaluation discipline
//! (when a check is meaningful, how to phrase the violation).
//!
//! The standard library:
//!
//! * [`UniqueLeaderOracle`] — at most one `WIN` per election instance
//!   (Section 2's test-and-set uniqueness); fires the moment a second
//!   winner returns.
//! * [`LinearizabilityOracle`] — the test-and-set linearizability condition:
//!   no loser may finish before the eventual winner started.
//! * [`NameUniquenessOracle`] — renaming names are distinct and inside
//!   `1..=namespace` (Lemma A.6); fires on the first duplicate or
//!   out-of-range name.
//! * [`SurvivorBoundOracle`] — a sifting phase never eliminates everyone
//!   (Claim 3.1); fires when the last participant returns and nobody
//!   survived.
//! * [`ElectionLivenessOracle`] — a crash-free election elects somebody;
//!   fires when every participant returned and nobody won.
//! * [`TerminationBudgetOracle`] — quiescence: the execution must finish
//!   within an event budget; fires when the budget is crossed (the explorer
//!   also maps the engine's own budget error onto this oracle).

use fle_core::checks;
use fle_model::ProcId;
use fle_sim::{ExecutionReport, SystemObservation};
use std::fmt;

/// What an oracle may inspect after an event: the in-progress report (the
/// outcomes and intervals of participants that returned so far), the
/// adversary-visible observation, the participant list and the event count.
#[derive(Debug, Clone, Copy)]
pub struct OracleCtx<'a> {
    /// Outcomes, intervals, metrics and trace accumulated so far.
    pub report: &'a ExecutionReport,
    /// The adversary-visible system state.
    pub observation: &'a SystemObservation,
    /// The processors participating in the scenario's protocol.
    pub participants: &'a [ProcId],
    /// Events executed so far (the in-progress report does not carry this).
    pub events_executed: u64,
}

/// A falsified invariant: which oracle fired, why, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the oracle that fired (e.g. `"unique-leader"`).
    pub oracle: &'static str,
    /// Human-readable description of the violation.
    pub detail: String,
    /// Events executed when the oracle fired.
    pub events_executed: u64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} (after {} events)",
            self.oracle, self.detail, self.events_executed
        )
    }
}

/// An online invariant monitor. `check` runs after **every** executed event;
/// returning `Some` aborts the episode with that violation.
pub trait Oracle {
    /// Stable oracle name used in reports and by the shrinker to re-identify
    /// the violation under replay.
    fn name(&self) -> &'static str;

    /// Inspect the execution after one event.
    fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation>;
}

/// At most one participant wins the election (test-and-set uniqueness).
#[derive(Debug, Clone, Copy, Default)]
pub struct UniqueLeaderOracle;

/// Stable name of [`UniqueLeaderOracle`].
pub const UNIQUE_LEADER: &str = "unique-leader";

impl Oracle for UniqueLeaderOracle {
    fn name(&self) -> &'static str {
        UNIQUE_LEADER
    }

    fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation> {
        if checks::unique_winner(ctx.report) {
            return None;
        }
        Some(Violation {
            oracle: UNIQUE_LEADER,
            detail: format!("multiple winners: {:?}", ctx.report.winners()),
            events_executed: ctx.events_executed,
        })
    }
}

/// The linearizability condition of Section 2: no loser finishes before the
/// eventual winner started.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearizabilityOracle;

/// Stable name of [`LinearizabilityOracle`].
pub const LINEARIZABILITY: &str = "linearizability";

impl Oracle for LinearizabilityOracle {
    fn name(&self) -> &'static str {
        LINEARIZABILITY
    }

    fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation> {
        // The check is monotone once the winner has returned: a loser that
        // already finished before the winner started stays finished. Before
        // any winner exists the condition is vacuous (given uniqueness,
        // which UniqueLeaderOracle polices separately).
        if checks::linearizable_test_and_set(ctx.report) || !checks::unique_winner(ctx.report) {
            return None;
        }
        Some(Violation {
            oracle: LINEARIZABILITY,
            detail: format!(
                "a loser's interval ended before winner {:?} started",
                ctx.report.winners()
            ),
            events_executed: ctx.events_executed,
        })
    }
}

/// Renaming validity: names handed out so far are distinct and inside
/// `1..=namespace`.
#[derive(Debug, Clone, Copy)]
pub struct NameUniquenessOracle {
    /// The target namespace (names must fall in `1..=namespace`).
    pub namespace: usize,
}

/// Stable name of [`NameUniquenessOracle`].
pub const NAME_UNIQUENESS: &str = "name-uniqueness";

impl Oracle for NameUniquenessOracle {
    fn name(&self) -> &'static str {
        NAME_UNIQUENESS
    }

    fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation> {
        let (proc, name) = checks::first_name_violation(ctx.report, self.namespace)?;
        Some(Violation {
            oracle: NAME_UNIQUENESS,
            detail: format!(
                "{proc} holds name {name}, which is duplicated or outside 1..={}",
                self.namespace
            ),
            events_executed: ctx.events_executed,
        })
    }
}

/// Claim 3.1: a sifting phase in which every participant returned must have
/// at least one survivor. (A crashed participant never returns, so the
/// oracle is automatically mute in executions where the claim's crash-free
/// precondition fails.)
#[derive(Debug, Clone, Copy, Default)]
pub struct SurvivorBoundOracle;

/// Stable name of [`SurvivorBoundOracle`].
pub const SURVIVOR_BOUND: &str = "survivor-bound";

impl Oracle for SurvivorBoundOracle {
    fn name(&self) -> &'static str {
        SURVIVOR_BOUND
    }

    fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation> {
        if !checks::sifting_wipeout(ctx.report, ctx.participants) {
            return None;
        }
        Some(Violation {
            oracle: SURVIVOR_BOUND,
            detail: format!(
                "all {} participants returned and nobody survived",
                ctx.participants.len()
            ),
            events_executed: ctx.events_executed,
        })
    }
}

/// Liveness of a crash-free election: when every participant returned,
/// somebody must have won.
#[derive(Debug, Clone, Copy, Default)]
pub struct ElectionLivenessOracle;

/// Stable name of [`ElectionLivenessOracle`].
pub const ELECTION_LIVENESS: &str = "election-liveness";

impl Oracle for ElectionLivenessOracle {
    fn name(&self) -> &'static str {
        ELECTION_LIVENESS
    }

    fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation> {
        if !checks::election_stalled(ctx.report, ctx.participants) {
            return None;
        }
        Some(Violation {
            oracle: ELECTION_LIVENESS,
            detail: format!(
                "all {} participants returned and nobody won",
                ctx.participants.len()
            ),
            events_executed: ctx.events_executed,
        })
    }
}

/// Quiescence: the execution must complete within an event budget. The
/// explorer also maps the engine's [`fle_sim::SimError::EventBudgetExhausted`]
/// onto this oracle, so runaway schedules are reported as violations rather
/// than as errors.
#[derive(Debug, Clone, Copy)]
pub struct TerminationBudgetOracle {
    /// Maximum events the execution may take.
    pub budget: u64,
}

/// Stable name of [`TerminationBudgetOracle`].
pub const TERMINATION_BUDGET: &str = "termination-budget";

/// The violation reported when an execution exceeds `budget` events.
pub fn budget_violation(budget: u64, events_executed: u64) -> Violation {
    Violation {
        oracle: TERMINATION_BUDGET,
        detail: format!("still running after {events_executed} events (budget {budget})"),
        events_executed,
    }
}

impl Oracle for TerminationBudgetOracle {
    fn name(&self) -> &'static str {
        TERMINATION_BUDGET
    }

    fn check(&mut self, ctx: &OracleCtx<'_>) -> Option<Violation> {
        (ctx.events_executed > self.budget)
            .then(|| budget_violation(self.budget, ctx.events_executed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::Outcome;
    use fle_sim::{ExecutionReport, SystemObservation};

    fn ctx_with<'a>(
        report: &'a ExecutionReport,
        observation: &'a SystemObservation,
        participants: &'a [ProcId],
    ) -> OracleCtx<'a> {
        OracleCtx {
            report,
            observation,
            participants,
            events_executed: 10,
        }
    }

    fn empty_observation() -> SystemObservation {
        SystemObservation {
            n: 2,
            events_executed: 10,
            crash_budget_left: 0,
            processes: Vec::new(),
        }
    }

    #[test]
    fn unique_leader_fires_on_the_second_win() {
        let observation = empty_observation();
        let participants = [ProcId(0), ProcId(1)];
        let mut report = ExecutionReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Win);
        let mut oracle = UniqueLeaderOracle;
        assert!(oracle
            .check(&ctx_with(&report, &observation, &participants))
            .is_none());
        report.outcomes.insert(ProcId(1), Outcome::Win);
        let violation = oracle
            .check(&ctx_with(&report, &observation, &participants))
            .expect("two winners violate uniqueness");
        assert_eq!(violation.oracle, UNIQUE_LEADER);
        assert_eq!(violation.events_executed, 10);
        assert!(violation.to_string().contains("unique-leader"));
    }

    #[test]
    fn survivor_bound_waits_for_everyone() {
        let observation = empty_observation();
        let participants = [ProcId(0), ProcId(1)];
        let mut report = ExecutionReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Die);
        let mut oracle = SurvivorBoundOracle;
        assert!(
            oracle
                .check(&ctx_with(&report, &observation, &participants))
                .is_none(),
            "one participant still out: claim not yet applicable"
        );
        report.outcomes.insert(ProcId(1), Outcome::Die);
        assert!(oracle
            .check(&ctx_with(&report, &observation, &participants))
            .is_some());
    }

    #[test]
    fn name_uniqueness_reports_the_clashing_processor() {
        let observation = empty_observation();
        let participants = [ProcId(0), ProcId(1)];
        let mut report = ExecutionReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Name(2));
        report.outcomes.insert(ProcId(1), Outcome::Name(2));
        let mut oracle = NameUniquenessOracle { namespace: 4 };
        let violation = oracle
            .check(&ctx_with(&report, &observation, &participants))
            .expect("duplicate names violate renaming");
        assert_eq!(violation.oracle, NAME_UNIQUENESS);
    }

    #[test]
    fn termination_budget_fires_past_the_budget() {
        let observation = empty_observation();
        let participants = [ProcId(0)];
        let report = ExecutionReport::default();
        let mut oracle = TerminationBudgetOracle { budget: 9 };
        let violation = oracle.check(&ctx_with(&report, &observation, &participants));
        assert!(violation.is_some(), "10 events exceed a budget of 9");
        let mut generous = TerminationBudgetOracle { budget: 10 };
        assert!(generous
            .check(&ctx_with(&report, &observation, &participants))
            .is_none());
    }

    #[test]
    fn election_liveness_fires_when_everyone_lost() {
        let observation = empty_observation();
        let participants = [ProcId(0), ProcId(1)];
        let mut report = ExecutionReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Lose);
        report.outcomes.insert(ProcId(1), Outcome::Lose);
        let mut oracle = ElectionLivenessOracle;
        assert!(oracle
            .check(&ctx_with(&report, &observation, &participants))
            .is_some());
    }

    #[test]
    fn linearizability_oracle_spots_early_losers() {
        let observation = empty_observation();
        let participants = [ProcId(0), ProcId(1)];
        let mut report = ExecutionReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Win);
        report.outcomes.insert(ProcId(1), Outcome::Lose);
        report.intervals.insert(ProcId(0), (10, Some(20)));
        report.intervals.insert(ProcId(1), (0, Some(5)));
        let mut oracle = LinearizabilityOracle;
        assert!(oracle
            .check(&ctx_with(&report, &observation, &participants))
            .is_some());
    }
}
