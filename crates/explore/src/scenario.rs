//! Scenarios: what protocol runs, on how many processors, and which oracles
//! guard it.
//!
//! A [`Scenario`] bundles the system description (size, participant set,
//! protocol registration) with the safety oracles that must hold for it, so
//! the explorer can fan `scenario × strategy × seed` episodes across cores
//! without caring what is being executed. The built-in scenarios cover the
//! paper's three protocol families; `crate::sabotage` adds intentionally
//! broken variants used to validate that the oracles actually catch bugs.

use crate::oracles::{
    ElectionLivenessOracle, LinearizabilityOracle, NameUniquenessOracle, Oracle,
    SurvivorBoundOracle, UniqueLeaderOracle,
};
use fle_core::{HeterogeneousPoisonPill, LeaderElection, PoisonPill, Renaming, RenamingConfig};
use fle_model::{ProcId, Protocol};
use fle_sim::Simulator;

/// A reproducible system-under-test: builds fresh protocol instances for any
/// backend and names the oracles that must hold over the execution.
///
/// A scenario is deliberately backend-agnostic: [`Scenario::protocols`]
/// returns plain [`fle_model::Protocol`] state machines, which the explorer
/// either installs into a discrete-event simulator
/// ([`Scenario::install`], the default implementation) or hands to the
/// schedule-controlled concurrent runner (`crate::concurrent`) — the same
/// oracles guard both.
///
/// Implementations must be `Sync` because the explorer shares one scenario
/// across its worker threads (each worker builds its own protocol instances
/// and oracles from it).
pub trait Scenario: Sync {
    /// Human-readable scenario name for reports.
    fn name(&self) -> String;

    /// Number of processors in the system.
    fn n(&self) -> usize;

    /// The processors that participate in the protocol.
    fn participants(&self) -> Vec<ProcId>;

    /// Fresh protocol instances, one per participant — the backend-agnostic
    /// system description.
    fn protocols(&self) -> Vec<(ProcId, Box<dyn Protocol + Send>)>;

    /// Register the protocol instances with a freshly built simulator.
    /// The default installs exactly [`Scenario::protocols`].
    fn install(&self, sim: &mut Simulator) {
        for (proc, protocol) in self.protocols() {
            sim.add_participant(proc, protocol);
        }
    }

    /// Fresh oracle instances guarding one episode.
    fn oracles(&self) -> Vec<Box<dyn Oracle>>;

    /// Optional override of the engine's event budget (`None` keeps the
    /// default `O(n²)` budget of [`fle_sim::SimConfig`] on the simulator and
    /// the [`fle_runtime::ScheduleConfig`] grant budget on the concurrent
    /// backend).
    fn max_events(&self) -> Option<u64> {
        None
    }
}

/// The paper's leader election with `k` of `n` processors participating.
#[derive(Debug, Clone, Copy)]
pub struct ElectionScenario {
    /// System size.
    pub n: usize,
    /// Number of participants (`k ≤ n`, clamped).
    pub k: usize,
}

impl Scenario for ElectionScenario {
    fn name(&self) -> String {
        format!("election(n={}, k={})", self.n, self.k)
    }

    fn n(&self) -> usize {
        self.n
    }

    fn participants(&self) -> Vec<ProcId> {
        (0..self.k.min(self.n)).map(ProcId).collect()
    }

    fn protocols(&self) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
        self.participants()
            .into_iter()
            .map(|p| {
                (
                    p,
                    Box::new(LeaderElection::new(p)) as Box<dyn Protocol + Send>,
                )
            })
            .collect()
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        vec![
            Box::new(UniqueLeaderOracle),
            Box::new(LinearizabilityOracle),
            Box::new(ElectionLivenessOracle),
        ]
    }
}

/// One sifting phase: the plain fixed-bias PoisonPill or the heterogeneous
/// variant, with every processor participating.
#[derive(Debug, Clone, Copy)]
pub struct SiftScenario {
    /// System size (= participant count).
    pub n: usize,
    /// `true` for the Heterogeneous PoisonPill (Figure 2), `false` for the
    /// fixed-bias PoisonPill (Figure 1) with the paper's `1/√n` bias.
    pub heterogeneous: bool,
    /// Optional bias override for the fixed-bias PoisonPill (ignored by the
    /// heterogeneous variant); `None` keeps the paper's `1/√n`. Claim 3.1
    /// holds for *every* bias, so the oracle applies unchanged.
    pub bias: Option<f64>,
}

impl SiftScenario {
    /// The fixed-bias PoisonPill with the paper's `1/√n` bias.
    pub fn plain(n: usize) -> Self {
        SiftScenario {
            n,
            heterogeneous: false,
            bias: None,
        }
    }

    /// The Heterogeneous PoisonPill (Figure 2).
    pub fn heterogeneous(n: usize) -> Self {
        SiftScenario {
            n,
            heterogeneous: true,
            bias: None,
        }
    }
}

impl Scenario for SiftScenario {
    fn name(&self) -> String {
        let family = if self.heterogeneous {
            "het-poison-pill"
        } else {
            "poison-pill"
        };
        match self.bias {
            Some(bias) => format!("{family}(n={}, bias={bias})", self.n),
            None => format!("{family}(n={})", self.n),
        }
    }

    fn n(&self) -> usize {
        self.n
    }

    fn participants(&self) -> Vec<ProcId> {
        (0..self.n).map(ProcId).collect()
    }

    fn protocols(&self) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
        self.participants()
            .into_iter()
            .map(|p| {
                let protocol: Box<dyn Protocol + Send> = if self.heterogeneous {
                    Box::new(HeterogeneousPoisonPill::new(p))
                } else {
                    match self.bias {
                        Some(bias) => Box::new(PoisonPill::with_bias(p, bias)),
                        None => Box::new(PoisonPill::new(p, self.n)),
                    }
                };
                (p, protocol)
            })
            .collect()
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        vec![Box::new(SurvivorBoundOracle)]
    }
}

/// Tight renaming of `k` participants into the namespace `1..=n`.
#[derive(Debug, Clone, Copy)]
pub struct RenamingScenario {
    /// System size (= namespace size).
    pub n: usize,
    /// Number of participants (`k ≤ n`, clamped).
    pub k: usize,
}

impl Scenario for RenamingScenario {
    fn name(&self) -> String {
        format!("renaming(n={}, k={})", self.n, self.k)
    }

    fn n(&self) -> usize {
        self.n
    }

    fn participants(&self) -> Vec<ProcId> {
        (0..self.k.min(self.n)).map(ProcId).collect()
    }

    fn protocols(&self) -> Vec<(ProcId, Box<dyn Protocol + Send>)> {
        let config = RenamingConfig::new(self.n);
        self.participants()
            .into_iter()
            .map(|p| {
                (
                    p,
                    Box::new(Renaming::new(p, config)) as Box<dyn Protocol + Send>,
                )
            })
            .collect()
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        vec![Box::new(NameUniquenessOracle { namespace: self.n })]
    }
}

/// Every built-in (healthy) scenario at the given system sizes — the matrix
/// the CI smoke job sweeps.
pub fn standard_scenarios(sizes: &[usize]) -> Vec<Box<dyn Scenario + Send>> {
    let mut scenarios: Vec<Box<dyn Scenario + Send>> = Vec::new();
    for &n in sizes {
        scenarios.push(Box::new(ElectionScenario { n, k: n }));
        scenarios.push(Box::new(ElectionScenario {
            n,
            k: n.div_ceil(2),
        }));
        scenarios.push(Box::new(SiftScenario::plain(n)));
        scenarios.push(Box::new(SiftScenario::heterogeneous(n)));
        scenarios.push(Box::new(RenamingScenario { n, k: n }));
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_sim::SimConfig;

    #[test]
    fn scenarios_install_their_participants() {
        let scenarios: Vec<Box<dyn Scenario + Send>> = vec![
            Box::new(ElectionScenario { n: 4, k: 3 }),
            Box::new(SiftScenario::heterogeneous(4)),
            Box::new(SiftScenario::plain(4)),
            Box::new(SiftScenario {
                n: 4,
                heterogeneous: false,
                bias: Some(0.25),
            }),
            Box::new(RenamingScenario { n: 4, k: 4 }),
        ];
        for scenario in scenarios {
            let mut sim = Simulator::new(SimConfig::new(scenario.n()));
            scenario.install(&mut sim);
            assert!(!scenario.participants().is_empty());
            assert!(!scenario.oracles().is_empty());
            assert!(!scenario.name().is_empty());
            assert_eq!(scenario.max_events(), None);
        }
    }

    #[test]
    fn standard_matrix_covers_every_family() {
        let scenarios = standard_scenarios(&[4, 8]);
        assert_eq!(scenarios.len(), 10);
        let names: Vec<String> = scenarios.iter().map(|s| s.name()).collect();
        assert!(names.iter().any(|n| n.starts_with("election")));
        assert!(names.iter().any(|n| n.starts_with("poison-pill")));
        assert!(names.iter().any(|n| n.starts_with("het-poison-pill")));
        assert!(names.iter().any(|n| n.starts_with("renaming")));
    }
}
