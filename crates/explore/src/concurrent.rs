//! Hunting the **gate-serialized backends**: the same strategies, oracles,
//! traces and shrinker as the simulator, pointed at real threads
//! ([`run_episode_shm`]) or at cooperative tasks on the shared
//! [`Executor`] ([`run_episode_exec`]).
//!
//! `fle_runtime::run_scheduled` serializes the participant threads of a
//! [`fle_runtime::SharedRegisters`] run at their [`fle_model::SchedulePoint`]
//! gates and lets a picker choose the interleaving. This module adapts that
//! picker interface to the simulator's [`Adversary`] so the entire PR 3
//! pipeline transfers unchanged:
//!
//! * every attack strategy ([`crate::strategies`]) sees a synthetic
//!   [`SystemObservation`] + [`EnabledEvents`] view in which each gated
//!   participant appears as one enabled `Step` event carrying its live
//!   [`fle_model::LocalStateView`] — the exact shape the strategies already
//!   consume;
//! * every safety oracle ([`crate::oracles`]) is evaluated online after each
//!   grant, over an [`ExecutionReport`] assembled from the runner's
//!   progress, and aborts the episode at the first bad grant;
//! * every violation is recorded by [`RecordingAdversary`] as a
//!   [`DecisionTrace`] (`s<i>` = grant the i-th waiting participant,
//!   `c<p>` = crash processor p — same codec as the simulator), replayed by
//!   [`ReplayAdversary`] and minimized by [`crate::shrink_shm`]'s ddmin.
//!
//! Determinism: one episode = fresh register bank + seeded per-participant
//! coin streams + fully serialized grants, so the execution is a pure
//! function of `(scenario, sim_seed, decision sequence)` — independent of
//! machine load, OS scheduling and explorer thread count. That is what makes
//! a counterexample found on real threads replayable from its compact text
//! form alone.
//!
//! # Example
//!
//! Point a hunt at the concurrent backend (the healthy election survives):
//!
//! ```
//! use fle_explore::{ElectionScenario, ExploreBackend, Explorer, ShmConfig};
//!
//! let scenario = ElectionScenario { n: 3, k: 3 };
//! let report = Explorer::new(&scenario)
//!     .with_backend(ExploreBackend::Concurrent(ShmConfig::default()))
//!     .with_sim_seeds(0..1)
//!     .with_strategy_seeds(0..1)
//!     .with_threads(2)
//!     .hunt();
//! assert_eq!(report.clean, report.episodes);
//! assert!(report.violations.is_empty());
//! ```

use crate::coverage::{CoverageProbe, NullProbe};
use crate::explorer::{EpisodeOutcome, EpisodePlan, FoundViolation};
use crate::oracles::{budget_violation, Oracle, OracleCtx, Violation};
use crate::scenario::Scenario;
use crate::strategies::PreemptionBound;
use fle_model::{CancelToken, ProcId};
use fle_runtime::{
    run_gated, run_scheduled_faulty, Executor, FaultPlan, GateCommand, GateObservation,
    GateScheduler, ScheduleConfig, ScheduledReport, SharedRegisters,
};
use fle_sim::{
    Adversary, Decision, DecisionTrace, EnabledEvent, EnabledEvents, ExecutionReport,
    ProcessObservation, ProcessPhase, RecordingAdversary, ReplayAdversary, SystemObservation,
};
use std::sync::Arc;

/// How the concurrent backend is exercised during a hunt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShmConfig {
    /// Lock shards of the per-episode register bank.
    pub shards: usize,
    /// Cap on schedule preemptions per episode (`None` = unbounded): wraps
    /// the strategy in [`PreemptionBound`] *below* the recorder, so recorded
    /// traces contain the bounded decisions and replay without the wrapper.
    pub preemption_bound: Option<u32>,
    /// Grant budget per episode (`None` defers to
    /// [`Scenario::max_events`], then to the
    /// [`ScheduleConfig::for_participants`] default). Exceeding it is
    /// reported as a termination-budget violation, like the simulator's
    /// event budget.
    pub max_grants: Option<u64>,
    /// Deterministic fault injection under every episode (`None` = fault
    /// free): a [`fle_runtime::FaultyMemory`] decorator between the gated
    /// register bank and each participant. The whole exploration stack —
    /// strategies, oracles, recorded traces, replay, ddmin — works unchanged
    /// against the service-under-faults; episodes stay a pure function of
    /// `(scenario, sim_seed, decisions, plan)` because the fault stream is
    /// seeded by the plan, not the clock.
    pub faults: Option<FaultPlan>,
}

impl Default for ShmConfig {
    fn default() -> Self {
        ShmConfig {
            shards: 4,
            preemption_bound: None,
            max_grants: None,
            faults: None,
        }
    }
}

/// The [`GateScheduler`] that closes the loop: builds the simulator-shaped
/// observation, checks the oracles online, then lets an [`Adversary`] pick.
struct OnlineAdversaryScheduler<'a> {
    /// System size reported to strategies (`scenario.n()`, which may exceed
    /// the participant count — absent processors appear `Idle`).
    n: usize,
    participants: &'a [ProcId],
    adversary: &'a mut dyn Adversary,
    /// Coverage observer, fed the same per-grant [`OracleCtx`] as the
    /// oracles ([`NullProbe`] outside coverage hunts).
    probe: &'a mut dyn CoverageProbe,
    oracles: Vec<Box<dyn Oracle>>,
    /// The first oracle violation, once found (the episode stops there).
    violation: Option<Violation>,
    /// The simulator-shaped report the oracles consume, kept in sync with
    /// the runner's progress (re-cloned only when the progress changed).
    report: ExecutionReport,
}

impl OnlineAdversaryScheduler<'_> {
    /// Sync the cached report with the runner's progress. Every progress
    /// mutation grows one of the three collections (a first grant inserts an
    /// interval; a return inserts an outcome *and* completes its interval in
    /// the same harvest; a crash pushes onto `crashed`), so comparing
    /// lengths detects all of them without cloning three maps per grant.
    fn sync_report(&mut self, obs: &GateObservation<'_>) {
        if self.report.outcomes.len() != obs.progress.outcomes.len()
            || self.report.intervals.len() != obs.progress.intervals.len()
            || self.report.crashed.len() != obs.progress.crashed.len()
        {
            self.report.outcomes = obs.progress.outcomes.clone();
            self.report.intervals = obs.progress.intervals.clone();
            self.report.crashed = obs.progress.crashed.clone();
        }
        self.report.events_executed = obs.grants_made;
    }

    /// Assemble the strategy-facing observation: gated participants are
    /// `StepReady` with their gate-time local state, returned ones
    /// `Finished`, crashed ones `Crashed`, non-participants `Idle`.
    fn observation(&self, obs: &GateObservation<'_>) -> SystemObservation {
        let mut processes: Vec<ProcessObservation> = (0..self.n)
            .map(|index| ProcessObservation {
                proc: ProcId(index),
                phase: ProcessPhase::Idle,
                local_state: None,
            })
            .collect();
        for &proc in self.participants {
            processes[proc.index()].phase = ProcessPhase::Finished;
        }
        for &proc in &obs.progress.crashed {
            processes[proc.index()].phase = ProcessPhase::Crashed;
        }
        for entry in obs.waiting {
            let process = &mut processes[entry.proc.index()];
            process.phase = ProcessPhase::StepReady;
            process.local_state = Some(entry.state.clone());
        }
        SystemObservation {
            n: self.n,
            events_executed: obs.grants_made,
            crash_budget_left: obs.crash_budget_left,
            processes,
        }
    }
}

impl GateScheduler for OnlineAdversaryScheduler<'_> {
    fn pick(&mut self, obs: &GateObservation<'_>) -> GateCommand {
        self.sync_report(obs);
        let observation = self.observation(obs);
        let ctx = OracleCtx {
            report: &self.report,
            observation: &observation,
            participants: self.participants,
            events_executed: obs.grants_made,
        };
        self.probe.observe(&ctx);
        for oracle in &mut self.oracles {
            if let Some(violation) = oracle.check(&ctx) {
                self.violation = Some(violation);
                return GateCommand::Stop;
            }
        }
        let enabled: Vec<EnabledEvent> = obs
            .waiting
            .iter()
            .map(|entry| EnabledEvent::Step(entry.proc))
            .collect();
        match self
            .adversary
            .decide(&observation, &EnabledEvents::from_slice(&enabled))
        {
            Decision::Schedule(index) => GateCommand::Run(index),
            // The runner sanitizes illegal crashes to `Run(0)`, mirroring
            // the simulator's tolerant replay semantics.
            Decision::Crash(victim) => GateCommand::Crash(victim),
        }
    }
}

/// Which gate-serialized substrate hosts the participants of an episode:
/// one OS thread per participant (`run_scheduled_faulty`) or cooperative
/// tasks on the shared task [`Executor`] (`run_gated`). Both present the
/// identical [`GateScheduler`] interface, so everything above the gate —
/// strategies, oracles, traces, replay, ddmin — is substrate-blind.
#[derive(Debug, Clone, Copy)]
pub(crate) enum GatedSubstrate {
    /// One OS thread per participant.
    Threads,
    /// Cooperative tasks on the shared executor.
    Tasks,
}

/// The process-wide executor hosting every task-backed episode. Episodes
/// hunted in parallel share the pool safely: each episode's control loop
/// serializes only its own gate, and a gated schedule admits one task at a
/// time, so determinism per episode is unaffected by pool sharing.
fn explore_executor() -> &'static Executor {
    static EXECUTOR: std::sync::OnceLock<Executor> = std::sync::OnceLock::new();
    EXECUTOR.get_or_init(Executor::with_default_config)
}

/// Drive one scenario on a gate-serialized backend under `adversary`,
/// checking the scenario's oracles after every grant. Returns the violation
/// (if any) and the number of grants executed. The probe sees every ctx the
/// oracles see, including the post-run final check.
pub(crate) fn drive_gated(
    scenario: &dyn Scenario,
    sim_seed: u64,
    adversary: &mut dyn Adversary,
    config: &ShmConfig,
    substrate: GatedSubstrate,
    probe: &mut dyn CoverageProbe,
) -> (Option<Violation>, u64) {
    let participants = scenario.participants();
    let k = participants.len();
    let mut sched_config = ScheduleConfig::for_participants(k)
        .with_crash_budget(scenario.n().div_ceil(2).saturating_sub(1));
    if let Some(max_grants) = config.max_grants.or_else(|| scenario.max_events()) {
        sched_config = sched_config.with_max_grants(max_grants);
    }
    let max_grants = sched_config.max_grants;

    let registers = Arc::new(SharedRegisters::new(config.shards));
    let mut scheduler = OnlineAdversaryScheduler {
        n: scenario.n(),
        participants: &participants,
        adversary,
        probe,
        oracles: scenario.oracles(),
        violation: None,
        report: ExecutionReport::default(),
    };
    let report: ScheduledReport = match substrate {
        GatedSubstrate::Threads => run_scheduled_faulty(
            &registers,
            0,
            sim_seed,
            scenario.protocols(),
            sched_config,
            &mut scheduler,
            config.faults,
        ),
        GatedSubstrate::Tasks => run_gated(
            explore_executor(),
            &registers,
            0,
            sim_seed,
            scenario.protocols(),
            sched_config,
            &mut scheduler,
            config.faults,
            &CancelToken::none(),
        ),
    };

    let mut oracles = scheduler.oracles;
    let probe = scheduler.probe;
    if let Some(violation) = scheduler.violation {
        return (Some(violation), report.grants);
    }
    if report.budget_exhausted {
        return (
            Some(budget_violation(max_grants, report.grants)),
            report.grants,
        );
    }
    // The scheduler is never consulted after the final grant (the runner
    // stops once nobody is waiting), so give the oracles one last look at
    // the completed execution — the grant that retires the last participant
    // is exactly where unique-leader and liveness violations surface.
    let final_report = ExecutionReport {
        outcomes: report.progress.outcomes.clone(),
        intervals: report.progress.intervals.clone(),
        crashed: report.progress.crashed.clone(),
        events_executed: report.grants,
        ..ExecutionReport::default()
    };
    let observation = SystemObservation {
        n: scenario.n(),
        events_executed: report.grants,
        crash_budget_left: 0,
        processes: (0..scenario.n())
            .map(|index| {
                let proc = ProcId(index);
                let phase = if report.progress.crashed.contains(&proc) {
                    ProcessPhase::Crashed
                } else if report.progress.outcomes.contains_key(&proc) {
                    ProcessPhase::Finished
                } else {
                    ProcessPhase::Idle
                };
                ProcessObservation {
                    proc,
                    phase,
                    local_state: None,
                }
            })
            .collect(),
    };
    let ctx = OracleCtx {
        report: &final_report,
        observation: &observation,
        participants: &participants,
        events_executed: report.grants,
    };
    probe.observe(&ctx);
    for oracle in &mut oracles {
        if let Some(violation) = oracle.check(&ctx) {
            return (Some(violation), report.grants);
        }
    }
    (None, report.grants)
}

/// [`drive_gated`] on participant threads (the concurrent backend).
pub(crate) fn drive_shm(
    scenario: &dyn Scenario,
    sim_seed: u64,
    adversary: &mut dyn Adversary,
    config: &ShmConfig,
) -> (Option<Violation>, u64) {
    drive_gated(
        scenario,
        sim_seed,
        adversary,
        config,
        GatedSubstrate::Threads,
        &mut NullProbe,
    )
}

/// Run one episode of `plan` against `scenario` on a gate-serialized
/// substrate: build the strategy (preemption-bounded if configured), record
/// its decisions, evaluate the oracles online after every grant.
fn run_episode_gated(
    scenario: &dyn Scenario,
    plan: &EpisodePlan,
    config: &ShmConfig,
    substrate: GatedSubstrate,
) -> EpisodeOutcome {
    let strategy = plan.strategy.build(plan.strategy_seed);
    let bounded: Box<dyn Adversary> = match config.preemption_bound {
        Some(bound) => Box::new(PreemptionBound::new(strategy, bound)),
        None => strategy,
    };
    let mut recording = RecordingAdversary::new(bounded);
    let (violation, grants) = drive_gated(
        scenario,
        plan.sim_seed,
        &mut recording,
        config,
        substrate,
        &mut NullProbe,
    );
    match violation {
        None => EpisodeOutcome::Clean { events: grants },
        Some(violation) => EpisodeOutcome::Violated(Box::new(FoundViolation {
            violation,
            decisions: recording.into_trace(),
            scenario: scenario.name(),
            plan: *plan,
        })),
    }
}

/// Run one episode of `plan` against `scenario` on the concurrent backend:
/// build the strategy (preemption-bounded if configured), record its
/// decisions, evaluate the oracles online after every grant.
pub fn run_episode_shm(
    scenario: &dyn Scenario,
    plan: &EpisodePlan,
    config: &ShmConfig,
) -> EpisodeOutcome {
    run_episode_gated(scenario, plan, config, GatedSubstrate::Threads)
}

/// Run one episode of `plan` against `scenario` on the task executor: same
/// strategies, oracles and trace codec as [`run_episode_shm`], but the
/// participants are cooperative tasks multiplexed on the process-wide
/// [`Executor`] instead of one OS thread each.
pub fn run_episode_exec(
    scenario: &dyn Scenario,
    plan: &EpisodePlan,
    config: &ShmConfig,
) -> EpisodeOutcome {
    run_episode_gated(scenario, plan, config, GatedSubstrate::Tasks)
}

/// Replay a decision trace against the scenario on the concurrent backend;
/// returns the violation it reproduces (if any) and how many trace decisions
/// were consumed before it fired. The concurrent twin of
/// [`crate::explorer::replay`].
pub fn replay_shm(
    scenario: &dyn Scenario,
    sim_seed: u64,
    decisions: &DecisionTrace,
    config: &ShmConfig,
) -> (Option<Violation>, usize) {
    let mut replayer = ReplayAdversary::new(decisions);
    let (violation, _grants) = drive_shm(scenario, sim_seed, &mut replayer, config);
    let consumed = replayer.consumed();
    (violation, consumed)
}

/// Replay a decision trace against the scenario on the task executor. A
/// trace recorded by [`run_episode_exec`] replays here decision-for-decision
/// — and, because the gate interface is substrate-blind, traces recorded on
/// participant threads replay on tasks (and vice versa) too.
pub fn replay_exec(
    scenario: &dyn Scenario,
    sim_seed: u64,
    decisions: &DecisionTrace,
    config: &ShmConfig,
) -> (Option<Violation>, usize) {
    let mut replayer = ReplayAdversary::new(decisions);
    let (violation, _grants) = drive_gated(
        scenario,
        sim_seed,
        &mut replayer,
        config,
        GatedSubstrate::Tasks,
        &mut NullProbe,
    );
    let consumed = replayer.consumed();
    (violation, consumed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ElectionScenario;
    use crate::strategies::StrategySpec;

    fn plan(strategy: StrategySpec, sim_seed: u64) -> EpisodePlan {
        EpisodePlan {
            strategy,
            sim_seed,
            strategy_seed: 0,
        }
    }

    #[test]
    fn healthy_election_episodes_are_clean_on_the_concurrent_backend() {
        let scenario = ElectionScenario { n: 4, k: 4 };
        let config = ShmConfig::default();
        for strategy in StrategySpec::library() {
            for sim_seed in 0..2 {
                match run_episode_shm(&scenario, &plan(strategy, sim_seed), &config) {
                    EpisodeOutcome::Clean { events } => assert!(events > 0),
                    EpisodeOutcome::Violated(found) => {
                        panic!("healthy election violated on shm: {found}")
                    }
                }
            }
        }
    }

    #[test]
    fn preemption_bound_zero_is_the_sequential_schedule() {
        // With zero preemptions, every strategy degrades to run-to-
        // completion order and the election still elects exactly one leader.
        let scenario = ElectionScenario { n: 4, k: 4 };
        let config = ShmConfig {
            preemption_bound: Some(0),
            ..ShmConfig::default()
        };
        for sim_seed in 0..3 {
            let outcome = run_episode_shm(
                &scenario,
                &plan(StrategySpec::SplitBrain { burst: 4 }, sim_seed),
                &config,
            );
            assert!(matches!(outcome, EpisodeOutcome::Clean { .. }));
        }
    }

    #[test]
    fn benign_faults_are_masked_and_fail_stop_crashes_are_caught() {
        use fle_runtime::{CrashSpec, FaultPlan};
        let scenario = ElectionScenario { n: 4, k: 4 };
        // Delays and transient collect failures are masked: still clean.
        let benign = ShmConfig {
            faults: Some(
                FaultPlan::new(1)
                    .with_delays(300, 30)
                    .with_collect_failures(300, 2),
            ),
            ..ShmConfig::default()
        };
        let outcome = run_episode_shm(
            &scenario,
            &plan(StrategySpec::SplitBrain { burst: 4 }, 0),
            &benign,
        );
        assert!(matches!(outcome, EpisodeOutcome::Clean { .. }));

        // Fail-stopping every participant after two ops leaves everyone a
        // loser: the election-liveness oracle must fire.
        let crashing = ShmConfig {
            faults: Some(FaultPlan::new(2).with_crash(CrashSpec::lose_all(2))),
            ..ShmConfig::default()
        };
        match run_episode_shm(
            &scenario,
            &plan(StrategySpec::SplitBrain { burst: 4 }, 0),
            &crashing,
        ) {
            EpisodeOutcome::Violated(found) => {
                assert_eq!(found.violation.oracle, crate::oracles::ELECTION_LIVENESS);
            }
            EpisodeOutcome::Clean { .. } => {
                panic!("a fail-stop of every participant must violate liveness")
            }
        }
    }

    #[test]
    fn healthy_election_episodes_are_clean_on_the_task_executor() {
        let scenario = ElectionScenario { n: 4, k: 4 };
        let config = ShmConfig::default();
        for strategy in StrategySpec::library() {
            for sim_seed in 0..2 {
                match run_episode_exec(&scenario, &plan(strategy, sim_seed), &config) {
                    EpisodeOutcome::Clean { events } => assert!(events > 0),
                    EpisodeOutcome::Violated(found) => {
                        panic!("healthy election violated on the executor: {found}")
                    }
                }
            }
        }
    }

    #[test]
    fn executor_episodes_are_deterministic_and_match_the_thread_substrate() {
        // The gate fully serializes both substrates, so for the same plan
        // the thread-backed and task-backed episodes execute the identical
        // schedule — grant counts and outcomes included.
        let scenario = ElectionScenario { n: 4, k: 4 };
        let config = ShmConfig::default();
        for sim_seed in 0..3 {
            let p = plan(StrategySpec::SplitBrain { burst: 4 }, sim_seed);
            let threads = run_episode_shm(&scenario, &p, &config);
            let tasks = run_episode_exec(&scenario, &p, &config);
            let tasks_again = run_episode_exec(&scenario, &p, &config);
            match (&threads, &tasks, &tasks_again) {
                (
                    EpisodeOutcome::Clean { events: a },
                    EpisodeOutcome::Clean { events: b },
                    EpisodeOutcome::Clean { events: c },
                ) => {
                    assert_eq!(a, b, "seed {sim_seed}: substrates agree on grant count");
                    assert_eq!(b, c, "seed {sim_seed}: the executor repeats itself");
                }
                other => panic!("seed {sim_seed}: unexpected outcomes {other:?}"),
            }
        }
    }

    #[test]
    fn crash_faults_are_caught_replayed_and_shrunk_on_the_task_executor() {
        // The full counterexample pipeline on the async substrate: a
        // fail-stop-everyone plan violates election liveness; the recorded
        // trace replays on the executor; ddmin minimizes it there too.
        let scenario = ElectionScenario { n: 4, k: 4 };
        let crashing = ShmConfig {
            faults: Some(FaultPlan::new(2).with_crash(fle_runtime::CrashSpec::lose_all(2))),
            ..ShmConfig::default()
        };
        let found = match run_episode_exec(
            &scenario,
            &plan(StrategySpec::SplitBrain { burst: 4 }, 0),
            &crashing,
        ) {
            EpisodeOutcome::Violated(found) => found,
            EpisodeOutcome::Clean { .. } => {
                panic!("a fail-stop of every participant must violate liveness")
            }
        };
        assert_eq!(found.violation.oracle, crate::oracles::ELECTION_LIVENESS);
        let (violation, _) = replay_exec(&scenario, 0, &found.decisions, &crashing);
        assert_eq!(
            violation.map(|v| v.oracle),
            Some(crate::oracles::ELECTION_LIVENESS),
            "the recorded trace reproduces on the executor"
        );
        let minimal = crate::shrink::shrink_exec(&scenario, &found, 200, &crashing);
        assert!(minimal.minimized.len() <= found.decisions.len());
        let (violation, _) = replay_exec(&scenario, 0, &minimal.minimized, &crashing);
        assert_eq!(
            violation.map(|v| v.oracle),
            Some(crate::oracles::ELECTION_LIVENESS),
            "the minimized trace still reproduces"
        );
    }

    #[test]
    fn tiny_grant_budgets_surface_as_termination_violations() {
        let scenario = ElectionScenario { n: 4, k: 4 };
        let config = ShmConfig {
            max_grants: Some(3),
            ..ShmConfig::default()
        };
        let outcome = run_episode_shm(
            &scenario,
            &plan(StrategySpec::SplitBrain { burst: 4 }, 0),
            &config,
        );
        match outcome {
            EpisodeOutcome::Violated(found) => {
                assert_eq!(found.violation.oracle, crate::oracles::TERMINATION_BUDGET);
            }
            EpisodeOutcome::Clean { .. } => panic!("3 grants cannot finish an election"),
        }
    }
}
