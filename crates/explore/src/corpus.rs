//! The trace corpus of the coverage-guided explorer: episodes that produced
//! **new coverage** are retained (deduplicated by interleaving-class hash)
//! and become the bases the mutation engine splices, extends and perturbs.
//!
//! Persistence reuses the existing compact text codec
//! ([`DecisionTrace::to_compact_string`] / [`DecisionTrace::parse`]): one
//! corpus entry per line, `<sim_seed> s0 c2 s1 …`. The codec round-trips
//! (property-tested in `fle-sim`), so a corpus written by one hunt reseeds
//! the next bit-for-bit. Coverage *features* are deliberately **not**
//! persisted — they describe executions, not traces, and are re-earned by
//! replaying the reloaded entries.

use crate::coverage::{trace_class, CoverageSignal};
use fle_sim::DecisionTrace;
use std::collections::BTreeSet;

/// One retained trace: enough to re-run the episode that earned it.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The decision trace (on the partitioned backend: the trace *installed
    /// into every partition*, empty for plan-seeded episodes).
    pub trace: DecisionTrace,
    /// The simulator seed the episode ran under.
    pub sim_seed: u64,
    /// The interleaving-class hash of `(trace, sim_seed)`.
    pub class: u64,
}

/// The set of interesting traces, with the global coverage map that decides
/// what "interesting" means.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    entries: Vec<CorpusEntry>,
    classes: BTreeSet<u64>,
    features: BTreeSet<u64>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Retained entries, in retention order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Size of the global coverage map: distinct feature codes observed
    /// across **all** considered episodes (retained or not).
    pub fn distinct_features(&self) -> usize {
        self.features.len()
    }

    /// Offer one episode's trace and coverage signal to the corpus.
    ///
    /// The episode's features are merged into the global map
    /// unconditionally; the trace is retained iff it produced at least one
    /// **novel** feature *and* its interleaving class is not already
    /// represented. Returns whether the trace was retained.
    pub fn consider(
        &mut self,
        trace: &DecisionTrace,
        sim_seed: u64,
        signal: &CoverageSignal,
    ) -> bool {
        let mut novel = false;
        for &feature in &signal.features {
            novel |= self.features.insert(feature);
        }
        if novel && self.classes.insert(signal.class) {
            self.entries.push(CorpusEntry {
                trace: trace.clone(),
                sim_seed,
                class: signal.class,
            });
            true
        } else {
            false
        }
    }

    /// Serialize the retained entries, one `<sim_seed> <compact trace>` line
    /// each (the trace part is empty for empty traces).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            out.push_str(&entry.sim_seed.to_string());
            let compact = entry.trace.to_compact_string();
            if !compact.is_empty() {
                out.push(' ');
                out.push_str(&compact);
            }
            out.push('\n');
        }
        out
    }

    /// Parse a corpus written by [`Corpus::to_text`]. Blank lines are
    /// skipped; class hashes are recomputed; the feature map starts empty
    /// (see the module docs). Duplicate classes in the input are dropped.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut corpus = Corpus::new();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (seed_text, trace_text) = match line.split_once(' ') {
                Some((seed, rest)) => (seed, rest),
                None => (line, ""),
            };
            let sim_seed: u64 = seed_text.parse().map_err(|e| {
                format!(
                    "corpus line {}: bad sim seed {seed_text:?}: {e}",
                    number + 1
                )
            })?;
            let trace = DecisionTrace::parse(trace_text)
                .map_err(|e| format!("corpus line {}: {e}", number + 1))?;
            let class = trace_class(&trace, sim_seed);
            if corpus.classes.insert(class) {
                corpus.entries.push(CorpusEntry {
                    trace,
                    sim_seed,
                    class,
                });
            }
        }
        Ok(corpus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_sim::Decision;

    fn signal(class: u64, features: &[u64]) -> CoverageSignal {
        CoverageSignal {
            class,
            features: features.to_vec(),
        }
    }

    fn trace(indices: &[usize]) -> DecisionTrace {
        indices.iter().map(|&i| Decision::Schedule(i)).collect()
    }

    #[test]
    fn novel_features_retain_and_duplicates_are_dropped() {
        let mut corpus = Corpus::new();
        let t = trace(&[0, 1]);
        assert!(corpus.consider(&t, 0, &signal(10, &[1, 2])));
        // Same class again: features merge but the trace is not re-retained.
        assert!(!corpus.consider(&t, 0, &signal(10, &[3])));
        // New class but no novel feature: not interesting.
        assert!(!corpus.consider(&trace(&[2]), 0, &signal(11, &[1, 3])));
        // New class with a novel feature: retained.
        assert!(corpus.consider(&trace(&[3]), 1, &signal(12, &[4])));
        assert_eq!(corpus.len(), 2);
        assert_eq!(corpus.distinct_features(), 4);
    }

    #[test]
    fn text_round_trips_entries_and_seeds() {
        let mut corpus = Corpus::new();
        corpus.consider(
            &trace(&[0, 3, 1]),
            7,
            &signal(trace_class(&trace(&[0, 3, 1]), 7), &[1]),
        );
        corpus.consider(
            &DecisionTrace::new(),
            9,
            &signal(trace_class(&DecisionTrace::new(), 9), &[2]),
        );
        let crashy: DecisionTrace =
            vec![Decision::Schedule(5), Decision::Crash(fle_model::ProcId(2))]
                .into_iter()
                .collect();
        corpus.consider(&crashy, 0, &signal(trace_class(&crashy, 0), &[3]));

        let text = corpus.to_text();
        let reloaded = Corpus::from_text(&text).expect("corpus text parses");
        assert_eq!(reloaded.len(), corpus.len());
        for (a, b) in corpus.entries().iter().zip(reloaded.entries()) {
            assert_eq!(a.trace, b.trace);
            assert_eq!(a.sim_seed, b.sim_seed);
            assert_eq!(a.class, b.class);
        }
        // Features are execution facts, not trace facts: not persisted.
        assert_eq!(reloaded.distinct_features(), 0);
    }

    #[test]
    fn malformed_corpus_lines_are_rejected_with_line_numbers() {
        assert!(Corpus::from_text("x s0").unwrap_err().contains("line 1"));
        assert!(Corpus::from_text("3 s0\n4 zz")
            .unwrap_err()
            .contains("line 2"));
        assert!(Corpus::from_text("").unwrap().is_empty());
        assert!(Corpus::from_text("\n  \n").unwrap().is_empty());
    }
}
