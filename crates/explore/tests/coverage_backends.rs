//! The coverage-guided driver works on every [`ExploreBackend`]: healthy
//! scenarios stay clean while coverage grows, sabotage mutants get killed,
//! and the partitioned backend (whose episodes carry no recorded trace)
//! still participates through installed mutant traces.

use fle_explore::sabotage::SabotagedElectionScenario;
use fle_explore::{
    CoverageConfig, CoverageExplorer, ElectionScenario, ExploreBackend, PartitionedConfig,
    ShmConfig,
};

fn small(budget: usize) -> CoverageConfig {
    CoverageConfig {
        budget,
        batch: 6,
        sim_seeds: vec![0, 1],
        ..CoverageConfig::default()
    }
}

#[test]
fn healthy_elections_stay_clean_while_coverage_grows_on_every_backend() {
    let scenario = ElectionScenario { n: 4, k: 4 };
    let backends = [
        ExploreBackend::Sim,
        ExploreBackend::Concurrent(ShmConfig::default()),
        ExploreBackend::Partitioned(PartitionedConfig::default()),
        ExploreBackend::Async(ShmConfig::default()),
    ];
    for backend in backends {
        let report = CoverageExplorer::new(&scenario)
            .with_backend(backend)
            .with_config(small(18))
            .with_threads(4)
            .explore();
        assert_eq!(report.episodes, 18, "{backend:?}: full budget spent");
        assert!(
            report.violations.is_empty(),
            "{backend:?}: healthy election flagged: {:?}",
            report.violations.first().map(|v| &v.violation)
        );
        assert!(
            report.distinct_features() > 0,
            "{backend:?}: coverage map stayed empty"
        );
        assert!(
            report.growth_is_monotone(),
            "{backend:?}: coverage growth must be monotone"
        );
        assert!(
            !report.corpus.is_empty(),
            "{backend:?}: interesting traces were retained"
        );
    }
}

#[test]
fn the_guided_hunt_kills_the_mutant_on_the_concurrent_backend() {
    let scenario = SabotagedElectionScenario { n: 4, k: 4 };
    let report = CoverageExplorer::new(&scenario)
        .with_backend(ExploreBackend::Concurrent(ShmConfig::default()))
        .with_config(CoverageConfig {
            budget: 64,
            batch: 8,
            sim_seeds: (0..4).collect(),
            stop_on_violation: true,
            ..CoverageConfig::default()
        })
        .with_threads(4)
        .explore();
    let kill = report
        .first_violation_episode
        .expect("the DropWrites mutant must be killed on the gated backend");
    assert!(kill <= report.episodes);
    assert_eq!(report.violations[0].violation.oracle, "unique-leader");
}

#[test]
fn coverage_hunts_on_the_partitioned_backend_are_deterministic() {
    // The partitioned backend has no recorded traces (episodes replay by
    // plan); the coverage loop must still be a pure function of the config —
    // including across worker-thread counts of both the engine and the
    // batch runner.
    let scenario = ElectionScenario { n: 8, k: 8 };
    let backend = ExploreBackend::Partitioned(PartitionedConfig {
        partitions: 2,
        workers: 0,
    });
    let a = CoverageExplorer::new(&scenario)
        .with_backend(backend)
        .with_config(small(12))
        .with_threads(1)
        .explore();
    let b = CoverageExplorer::new(&scenario)
        .with_backend(backend)
        .with_config(small(12))
        .with_threads(8)
        .explore();
    assert_eq!(a.episodes, b.episodes);
    assert_eq!(a.growth, b.growth);
    assert_eq!(a.distinct_features(), b.distinct_features());
    assert_eq!(a.corpus.len(), b.corpus.len());
}
