//! Cross-backend corpus-replay differential: traces recorded on the
//! simulator are *valid schedules* on the gate-serialized backends (the
//! tolerant replayers guarantee it), and the two gated substrates — one OS
//! thread per participant vs. cooperative tasks — are decision-for-decision
//! identical behind the gate, so a corpus trace must replay to the **same
//! oracle verdict** on Concurrent and Async, whatever that verdict is.
//!
//! Two layers:
//!
//! * healthy corpus entries (recorded by a Sim coverage hunt over the real
//!   election) replay clean on both gated substrates;
//! * sabotage counterexamples found on Sim replay to substrate-identical
//!   verdicts on Concurrent and Async — and at least one of them *transfers*
//!   (refires `unique-leader` on both), which is what makes a Sim-built
//!   corpus worth seeding gated hunts with.

use fle_explore::sabotage::SabotagedElectionScenario;
use fle_explore::{
    replay_exec, replay_shm, CoverageConfig, CoverageExplorer, ElectionScenario, Explorer,
    ShmConfig,
};

#[test]
fn healthy_sim_corpus_traces_replay_clean_on_both_gated_substrates() {
    let scenario = ElectionScenario { n: 4, k: 4 };
    let report = CoverageExplorer::new(&scenario)
        .with_config(CoverageConfig {
            budget: 24,
            batch: 8,
            sim_seeds: vec![0, 1],
            ..CoverageConfig::default()
        })
        .with_threads(4)
        .explore();
    assert!(
        report.corpus.len() >= 2,
        "the hunt retains several healthy traces, got {}",
        report.corpus.len()
    );
    let config = ShmConfig::default();
    for entry in report.corpus.entries() {
        let (shm, shm_consumed) = replay_shm(&scenario, entry.sim_seed, &entry.trace, &config);
        let (exec, exec_consumed) = replay_exec(&scenario, entry.sim_seed, &entry.trace, &config);
        assert!(
            shm.is_none(),
            "healthy corpus trace flagged on threads: {shm:?}"
        );
        assert!(
            exec.is_none(),
            "healthy corpus trace flagged on tasks: {exec:?}"
        );
        assert_eq!(
            shm_consumed, exec_consumed,
            "the gate makes both substrates consume the identical prefix"
        );
    }
}

#[test]
fn sabotage_counterexamples_get_substrate_identical_verdicts_and_some_transfer() {
    let scenario = SabotagedElectionScenario { n: 4, k: 4 };
    // Sim-side hunt: the DropWrites mutant yields a pile of unique-leader
    // counterexamples across the seed grid.
    let report = Explorer::new(&scenario).with_sim_seeds(0..8).hunt();
    assert!(
        report.violations.len() >= 10,
        "the sabotaged election is easy to kill on the simulator"
    );
    let config = ShmConfig::default();
    let mut transferred = 0usize;
    for found in &report.violations {
        assert_eq!(found.violation.oracle, "unique-leader");
        let seed = found.plan.sim_seed;
        let (shm, _) = replay_shm(&scenario, seed, &found.decisions, &config);
        let (exec, _) = replay_exec(&scenario, seed, &found.decisions, &config);
        // The gate interface is substrate-blind: threads and tasks must
        // agree on every trace, transferred or not.
        assert_eq!(
            shm.as_ref().map(|v| v.oracle),
            exec.as_ref().map(|v| v.oracle),
            "threads and tasks disagree on seed {seed}"
        );
        if shm.as_ref().map(|v| v.oracle) == Some("unique-leader") {
            transferred += 1;
        }
    }
    // Pinned empirically (seeds 0..8, default library): starve@1,
    // split-brain@4 and several weighted walks refire on the gated
    // substrates. A regression here means Sim decision indices stopped
    // mapping onto gated grant indices closely enough to transfer.
    assert!(
        transferred >= 2,
        "expected at least two Sim counterexamples to transfer, got {transferred}"
    );
}
