//! End-to-end validation of the exploration pipeline: the sabotaged protocol
//! variants must be caught by the oracles, the recorded decision trace must
//! replay to the same violation, and the shrinker must minimize it to a
//! small fraction of the original schedule.

use fle_explore::sabotage::{SabotagedElectionScenario, SabotagedSiftScenario};
use fle_explore::{oracles, replay, shrink, Explorer};
use fle_sim::DecisionTrace;

/// The issue's acceptance bar: a sabotaged protocol ("skip the write") is
/// caught by the explorer and the counterexample shrinks to ≤ 25% of the
/// original schedule length, ending up replayable from its text form alone.
#[test]
fn sabotaged_election_is_caught_shrunk_and_replayable() {
    let scenario = SabotagedElectionScenario { n: 8, k: 8 };
    let report = Explorer::new(&scenario)
        .with_sim_seeds(0..8)
        .with_strategy_seeds(0..2)
        .hunt();
    let found = report
        .first_violation()
        .expect("dropping the Round writes must elect two leaders under some schedule");
    assert_eq!(found.violation.oracle, oracles::UNIQUE_LEADER);
    let original_len = found.decisions.len();
    assert!(original_len > 0, "a violation implies a non-empty schedule");

    // The recorded trace replays to the same violation, deterministically.
    let (replayed, _) = replay(&scenario, found.plan.sim_seed, &found.decisions);
    assert_eq!(
        replayed.as_ref().map(|v| v.oracle),
        Some(oracles::UNIQUE_LEADER),
        "the recorded decision trace must reproduce the violation"
    );

    // Shrink and check the acceptance bound.
    let minimal = shrink(&scenario, found, 400);
    assert_eq!(minimal.original_len, original_len);
    assert!(
        minimal.minimized.len() * 4 <= original_len,
        "shrunk trace of {} decisions is more than 25% of the original {}",
        minimal.minimized.len(),
        original_len
    );

    // The minimized trace still reproduces the violation...
    let (confirmed, _) = replay(&scenario, found.plan.sim_seed, &minimal.minimized);
    assert_eq!(confirmed.map(|v| v.oracle), Some(oracles::UNIQUE_LEADER));

    // ...and survives a round trip through its serialized text form.
    let text = minimal.minimized.to_compact_string();
    let parsed = DecisionTrace::parse(&text).expect("the compact form parses back");
    assert_eq!(parsed, minimal.minimized);
    let (from_text, _) = replay(&scenario, found.plan.sim_seed, &parsed);
    assert_eq!(
        from_text.map(|v| v.oracle),
        Some(oracles::UNIQUE_LEADER),
        "a counterexample must replay from its serialized form alone"
    );
}

/// The issue's example mutation — skip the PoisonPill (priority) write —
/// is caught by the survivor-bound oracle.
#[test]
fn sabotaged_poison_pill_wipeout_is_caught() {
    let scenario = SabotagedSiftScenario { n: 4, bias: 0.1 };
    let report = Explorer::new(&scenario)
        .with_sim_seeds(0..8)
        .with_strategy_seeds(0..2)
        .hunt();
    let found = report
        .first_violation()
        .expect("an all-low execution with no priority writes wipes everyone out");
    assert_eq!(found.violation.oracle, oracles::SURVIVOR_BOUND);
    // Replayable here too.
    let (replayed, _) = replay(&scenario, found.plan.sim_seed, &found.decisions);
    assert_eq!(replayed.map(|v| v.oracle), Some(oracles::SURVIVOR_BOUND));
}

/// Negative control: the healthy protocols survive the identical hunts that
/// catch the mutants.
#[test]
fn healthy_counterparts_survive_the_same_hunts() {
    let election = fle_explore::ElectionScenario { n: 8, k: 8 };
    let report = Explorer::new(&election)
        .with_sim_seeds(0..4)
        .with_strategy_seeds(0..1)
        .hunt();
    assert!(
        report.violations.is_empty(),
        "healthy election violated: {:?}",
        report.violations
    );

    // The healthy PoisonPill at the *same* low bias survives the exact coin
    // patterns that wipe out the mutant: Claim 3.1 holds for every bias.
    let sift = fle_explore::SiftScenario {
        n: 4,
        heterogeneous: false,
        bias: Some(0.1),
    };
    let report = Explorer::new(&sift)
        .with_sim_seeds(0..8)
        .with_strategy_seeds(0..1)
        .hunt();
    assert!(
        report.violations.is_empty(),
        "healthy poison pill violated: {:?}",
        report.violations
    );
}
