//! End-to-end exploration of the **concurrent backend**: the PR 3 pipeline
//! (strategies → online oracles → recorded trace → ddmin shrinker) pointed
//! at `SharedRegisters` behind schedule gates instead of the simulator.

use fle_explore::sabotage::{SabotagedElectionScenario, SabotagedSiftScenario};
use fle_explore::{
    replay_shm, shrink_shm, standard_scenarios, ExploreBackend, Explorer, ShmConfig,
};

const SHM: ExploreBackend = ExploreBackend::Concurrent(ShmConfig {
    shards: 4,
    preemption_bound: None,
    max_grants: None,
    faults: None,
});

#[test]
fn healthy_scenarios_survive_every_strategy_on_the_concurrent_backend() {
    for scenario in standard_scenarios(&[4]) {
        let report = Explorer::new(scenario.as_ref())
            .with_backend(SHM)
            .with_sim_seeds(0..2)
            .with_strategy_seeds(0..1)
            .hunt();
        assert_eq!(report.clean, report.episodes, "{}", scenario.name());
        assert!(
            report.violations.is_empty(),
            "{}: {:?}",
            scenario.name(),
            report.violations
        );
        assert!(report.clean_events > 0);
    }
}

#[test]
fn sabotaged_election_is_caught_replayed_and_shrunk_on_real_threads() {
    let config = ShmConfig::default();
    let scenario = SabotagedElectionScenario { n: 4, k: 4 };
    let hunt = Explorer::new(&scenario)
        .with_backend(ExploreBackend::Concurrent(config))
        .with_sim_seeds(0..8)
        .hunt();
    let found = hunt
        .first_violation()
        .expect("the write-dropping election mutant must be caught on the concurrent backend");
    assert_eq!(found.violation.oracle, "unique-leader");

    // The recorded trace replays deterministically: two independent replays
    // re-execute the threads and reach the identical verdict at the
    // identical decision.
    let first = replay_shm(&scenario, found.plan.sim_seed, &found.decisions, &config);
    let second = replay_shm(&scenario, found.plan.sim_seed, &found.decisions, &config);
    let violation = first.0.as_ref().expect("replay reproduces the violation");
    assert_eq!(violation.oracle, "unique-leader");
    assert_eq!(first.0, second.0, "replay verdicts must be identical");
    assert_eq!(first.1, second.1, "replay consumption must be identical");

    // ddmin minimizes the real-thread counterexample; the result is itself
    // a replayable counterexample.
    let minimal = shrink_shm(&scenario, found, 300, &config);
    assert!(minimal.minimized.len() <= found.decisions.len());
    assert!(
        minimal.ratio() <= 0.25,
        "trace {} -> {} decisions (ratio {})",
        minimal.original_len,
        minimal.minimized.len(),
        minimal.ratio()
    );
    let (replayed, _) = replay_shm(&scenario, found.plan.sim_seed, &minimal.minimized, &config);
    assert_eq!(
        replayed.expect("the minimized trace still fails").oracle,
        "unique-leader"
    );
}

#[test]
fn sabotaged_sift_wipeout_is_caught_on_real_threads() {
    let scenario = SabotagedSiftScenario { n: 4, bias: 0.1 };
    let hunt = Explorer::new(&scenario)
        .with_backend(SHM)
        .with_sim_seeds(0..8)
        .hunt();
    let found = hunt
        .first_violation()
        .expect("the priority-write-dropping sift mutant must be caught");
    assert_eq!(found.violation.oracle, "survivor-bound");
}

#[test]
fn concurrent_hunts_are_deterministic_across_worker_thread_counts() {
    // The explorer's worker-thread count must not influence what a hunt
    // finds: episodes are deterministic and results come back in grid order.
    let scenario = SabotagedElectionScenario { n: 4, k: 4 };
    let hunt = |threads: usize| {
        Explorer::new(&scenario)
            .with_backend(SHM)
            .with_sim_seeds(0..4)
            .with_threads(threads)
            .hunt()
    };
    let serial = hunt(1);
    let parallel = hunt(8);
    assert_eq!(serial.clean, parallel.clean);
    assert_eq!(serial.clean_events, parallel.clean_events);
    assert_eq!(serial.violations.len(), parallel.violations.len());
    for (a, b) in serial.violations.iter().zip(parallel.violations.iter()) {
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.decisions, b.decisions);
        assert_eq!(a.plan, b.plan);
    }
}

#[test]
fn preemption_bounded_hunts_still_catch_the_mutant() {
    // CHESS-style: even 2 preemptions per episode are enough to elect two
    // leaders from the write-dropping mutant, and the bounded decisions are
    // what the trace records, so replay needs no bound.
    let config = ShmConfig {
        preemption_bound: Some(2),
        ..ShmConfig::default()
    };
    let scenario = SabotagedElectionScenario { n: 4, k: 4 };
    let hunt = Explorer::new(&scenario)
        .with_backend(ExploreBackend::Concurrent(config))
        .with_sim_seeds(0..8)
        .hunt();
    let found = hunt
        .first_violation()
        .expect("bounded preemption still finds the double election");
    let (replayed, _) = replay_shm(&scenario, found.plan.sim_seed, &found.decisions, &config);
    assert_eq!(
        replayed.expect("replays without the bound").oracle,
        "unique-leader"
    );
}
