//! The PoisonPill sifting technique (Figure 1 of the paper).
//!
//! Each participating processor:
//!
//! 1. moves to the `Commit` state and propagates it ("takes the poison
//!    pill"),
//! 2. flips a biased coin to adopt either low priority (0) or high priority
//!    (1) and propagates the new status,
//! 3. collects the `Status` array from a quorum, and
//! 4. returns `DIE` exactly when it has low priority and it observes some
//!    processor that is seen as `Commit` or `High-Pri` in some view and as
//!    `Low-Pri` in none (line 10–11 of Figure 1); otherwise it returns
//!    `SURVIVE`.
//!
//! The catch-22 at the heart of the technique: for the adversary to learn a
//! coin flip it must first let the processor propagate `Commit`, but any
//! low-priority processor that later observes that `Commit` kills itself.
//! Claim 3.1 (at least one survivor) and Claim 3.2 (O(√n) expected survivors
//! with bias 1/√n) both follow; the experiment suite reproduces them.

use fle_model::{
    Action, ElectionContext, InstanceId, Key, LocalStateView, Outcome, Priority, ProcId, Protocol,
    Response, Slot, Status, Value,
};

/// Internal control state of the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting for the first activation.
    Init,
    /// `Commit` propagation outstanding.
    Committing,
    /// Waiting for the coin flip result.
    Flipping,
    /// Priority propagation outstanding.
    PropagatingPriority,
    /// Status collection outstanding.
    Collecting,
    /// Returned.
    Done,
}

/// One PoisonPill sifting phase (Figure 1).
///
/// The coin bias is a constructor parameter so that the experiment harness
/// can explore the trade-off of Section 3.2: the paper proves `1/√n` is the
/// optimal fixed bias, and the E8 ablation sweeps other exponents.
#[derive(Debug)]
pub struct PoisonPill {
    me: ProcId,
    instance: InstanceId,
    prob_high: f64,
    stage: Stage,
    coin: Option<bool>,
    round: u32,
}

impl PoisonPill {
    /// A PoisonPill phase for processor `me` with the paper's fixed bias
    /// `1/√n`, where `n` is the number of potential participants.
    pub fn new(me: ProcId, n: usize) -> Self {
        let n = n.max(1) as f64;
        Self::with_bias(me, 1.0 / n.sqrt())
    }

    /// A PoisonPill phase with an explicit probability of flipping high.
    ///
    /// `prob_high` is clamped into `[0, 1]`.
    pub fn with_bias(me: ProcId, prob_high: f64) -> Self {
        Self::for_round(me, ElectionContext::Standalone, 1, prob_high)
    }

    /// A PoisonPill phase bound to a specific election context and round,
    /// so that several phases can coexist without sharing registers.
    pub fn for_round(me: ProcId, ctx: ElectionContext, round: u32, prob_high: f64) -> Self {
        PoisonPill {
            me,
            instance: InstanceId::status(ctx, round),
            prob_high: prob_high.clamp(0.0, 1.0),
            stage: Stage::Init,
            coin: None,
            round,
        }
    }

    /// The probability of flipping high priority.
    pub fn bias(&self) -> f64 {
        self.prob_high
    }

    fn my_key(&self) -> Key {
        Key::proc(self.instance, self.me)
    }

    /// The death rule of Figure 1, line 10: some processor `j` is seen as
    /// `Commit` or `High-Pri` in some view and as `Low-Pri` in none.
    ///
    /// One pass over every view entry, accumulating per-processor "seen
    /// committed-or-high" and "seen low" bitmaps — equivalent to probing
    /// `exists_without` for every observed processor, but O(quorum × entries)
    /// instead of O(observed × quorum) slot probes.
    fn should_die(views: &fle_model::CollectedViews) -> bool {
        let mut committed_or_high = fle_model::BitRow::new();
        let mut low = fle_model::BitRow::new();
        for (_, view) in views.responses() {
            view.for_each(|slot, value| {
                let (Slot::Proc(j), Some(status)) = (slot, value.as_status()) else {
                    return;
                };
                match status.priority() {
                    None | Some(Priority::High) => {
                        committed_or_high.set(j.index());
                    }
                    Some(Priority::Low) => {
                        low.set(j.index());
                    }
                }
            });
        }
        // Bound to a local because the iterator temporary in tail position
        // would otherwise outlive the bitmaps it borrows (E0597).
        let dies = committed_or_high.iter().any(|j| !low.contains(j));
        dies
    }
}

impl Protocol for PoisonPill {
    fn step(&mut self, response: Response) -> Action {
        match self.stage {
            Stage::Init => {
                debug_assert_eq!(response, Response::Start);
                self.stage = Stage::Committing;
                // Line 2-3: commit to the coin flip and propagate.
                Action::Propagate {
                    entries: vec![(self.my_key(), Value::Status(Status::Commit))],
                }
            }
            Stage::Committing => {
                // Line 4: flip the biased coin.
                self.stage = Stage::Flipping;
                Action::Flip {
                    prob_one: self.prob_high,
                }
            }
            Stage::Flipping => {
                let coin = response.expect_coin();
                self.coin = Some(coin);
                self.stage = Stage::PropagatingPriority;
                let priority = if coin { Priority::High } else { Priority::Low };
                // Lines 5-7: adopt the priority and propagate it.
                Action::Propagate {
                    entries: vec![(self.my_key(), Value::Status(Status::resolved(priority)))],
                }
            }
            Stage::PropagatingPriority => {
                // Line 8: collect the Status array from a quorum.
                self.stage = Stage::Collecting;
                Action::Collect {
                    instance: self.instance,
                }
            }
            Stage::Collecting => {
                let views = response.expect_views();
                self.stage = Stage::Done;
                let survived = match self.coin {
                    Some(true) => true,
                    // Lines 9-11: a low-priority processor dies when it sees
                    // a committed-or-high processor with no low report.
                    _ => !Self::should_die(&views),
                };
                Action::Return(if survived {
                    Outcome::Survive
                } else {
                    Outcome::Die
                })
            }
            Stage::Done => Action::Return(Outcome::Die),
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let phase = match self.stage {
            Stage::Init => "init",
            Stage::Committing => "committing",
            Stage::Flipping => "flipping",
            Stage::PropagatingPriority => "propagating-priority",
            Stage::Collecting => "collecting",
            Stage::Done => "done",
        };
        LocalStateView::new("poison-pill", phase)
            .with_round(u64::from(self.round))
            .with_coin(self.coin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::{CollectedViews, View};
    use fle_sim::{CoinAwareAdversary, RandomAdversary, SequentialAdversary, SimConfig, Simulator};

    fn run_phase(
        n: usize,
        prob_high: f64,
        seed: u64,
        adversary: &mut dyn fle_sim::Adversary,
    ) -> fle_sim::ExecutionReport {
        let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
        for i in 0..n {
            sim.add_participant(
                ProcId(i),
                Box::new(PoisonPill::with_bias(ProcId(i), prob_high)),
            );
        }
        sim.run(adversary).expect("phase terminates")
    }

    #[test]
    fn at_least_one_survivor_under_every_adversary() {
        for n in [1usize, 2, 3, 5, 9, 16] {
            for seed in 0..5u64 {
                let prob = 1.0 / (n as f64).sqrt();
                let adversaries: Vec<Box<dyn fle_sim::Adversary>> = vec![
                    Box::new(RandomAdversary::with_seed(seed)),
                    Box::new(SequentialAdversary::new()),
                    Box::new(CoinAwareAdversary::with_seed(seed)),
                ];
                for mut adversary in adversaries {
                    let report = run_phase(n, prob, seed, adversary.as_mut());
                    assert!(
                        !report.survivors().is_empty(),
                        "n={n} seed={seed} adversary={} must keep at least one survivor",
                        adversary.name()
                    );
                    assert_eq!(report.outcomes.len(), n, "all participants return");
                }
            }
        }
    }

    #[test]
    fn all_low_flips_means_everyone_survives() {
        // With bias 0 every processor flips low; nobody ever observes a
        // commit-without-low or a high priority... except that the adversary
        // can interleave so a processor observes another's Commit before its
        // Low arrives — in which case that processor must die. The guaranteed
        // part is that at least one survives; under the *sequential* schedule
        // every collect sees the earlier processors' Low statuses, and the
        // paper's Claim 3.1 argument makes everyone survive.
        let report = run_phase(6, 0.0, 3, &mut SequentialAdversary::new());
        assert_eq!(report.survivors().len(), 6);
    }

    #[test]
    fn all_high_flips_means_everyone_survives() {
        let report = run_phase(5, 1.0, 1, &mut RandomAdversary::with_seed(8));
        assert_eq!(
            report.survivors().len(),
            5,
            "high-priority processors never die"
        );
    }

    #[test]
    fn sequential_adversary_forces_many_survivors() {
        // Section 3.2: under the sequential schedule the expected number of
        // survivors is Ω(√n) — the 0-flippers before the first 1-flipper all
        // survive, and all 1-flippers survive. With n=64 and 20 trials the
        // average must be comfortably above 2 survivors.
        let n = 64;
        let mut total = 0usize;
        let trials = 20;
        for seed in 0..trials {
            let report = run_phase(
                n,
                1.0 / (n as f64).sqrt(),
                seed,
                &mut SequentialAdversary::new(),
            );
            total += report.survivors().len();
        }
        let average = total as f64 / trials as f64;
        assert!(
            average >= 3.0,
            "sequential adversary should force Ω(√n) survivors, got average {average}"
        );
    }

    #[test]
    fn death_rule_matches_figure_one() {
        // j committed, never seen low: death.
        let views = CollectedViews::new(vec![(
            ProcId(5),
            [(Slot::Proc(ProcId(2)), Value::Status(Status::Commit))]
                .into_iter()
                .collect::<View>(),
        )]);
        assert!(PoisonPill::should_die(&views));

        // j seen low in another view: no death.
        let views = CollectedViews::new(vec![
            (
                ProcId(5),
                [(Slot::Proc(ProcId(2)), Value::Status(Status::Commit))]
                    .into_iter()
                    .collect::<View>(),
            ),
            (
                ProcId(6),
                [(
                    Slot::Proc(ProcId(2)),
                    Value::Status(Status::resolved(Priority::Low)),
                )]
                .into_iter()
                .collect::<View>(),
            ),
        ]);
        assert!(!PoisonPill::should_die(&views));

        // Empty views: survive.
        assert!(!PoisonPill::should_die(&CollectedViews::default()));
    }

    #[test]
    fn bias_is_clamped() {
        assert_eq!(PoisonPill::with_bias(ProcId(0), 7.0).bias(), 1.0);
        assert_eq!(PoisonPill::with_bias(ProcId(0), -1.0).bias(), 0.0);
        let pp = PoisonPill::new(ProcId(0), 16);
        assert!((pp.bias() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn adversary_view_exposes_coin_after_flip() {
        let mut pp = PoisonPill::with_bias(ProcId(0), 0.5);
        assert_eq!(pp.adversary_view().coin, None);
        let _ = pp.step(Response::Start);
        let _ = pp.step(Response::AckQuorum);
        let _ = pp.step(Response::Coin(true));
        assert_eq!(pp.adversary_view().coin, Some(true));
        assert_eq!(pp.adversary_view().algorithm, "poison-pill");
    }
}
