//! Correctness validators used by the test suite and the experiment harness.
//!
//! These encode the problem statements of Section 2 of the paper:
//!
//! * leader election (test-and-set): every correct participant returns, at
//!   most one returns `WIN`, and the operations are linearizable — in
//!   particular no processor may lose before the eventual winner has started
//!   its execution;
//! * sifting phases: at least one participant survives;
//! * strong (tight) renaming: every correct participant returns a distinct
//!   name in `1..=n`.

use fle_model::{Outcome, ProcId};
use fle_sim::ExecutionReport;
use std::collections::BTreeSet;

/// At most one participant returned [`Outcome::Win`].
pub fn unique_winner(report: &ExecutionReport) -> bool {
    report.winners().len() <= 1
}

/// At least one participant returned [`Outcome::Win`]. Only meaningful when
/// every participant returned (no crashes among participants).
pub fn someone_won(report: &ExecutionReport) -> bool {
    !report.winners().is_empty()
}

/// At least one participant of a sifting phase returned
/// [`Outcome::Survive`] (Claim 3.1).
pub fn at_least_one_survivor(report: &ExecutionReport) -> bool {
    !report.survivors().is_empty()
}

/// The test-and-set linearizability condition of Section 2: there is at most
/// one winner, and no loser's operation interval ends before the winner's
/// interval starts (otherwise the loser's LOSE could not be linearized after
/// a WIN).
///
/// Executions without a winner (e.g. because the winner-to-be crashed) are
/// vacuously linearizable as long as at most one WIN was returned.
pub fn linearizable_test_and_set(report: &ExecutionReport) -> bool {
    if !unique_winner(report) {
        return false;
    }
    let Some(winner) = report.winners().first().copied() else {
        return true;
    };
    let Some((winner_start, _)) = report.intervals.get(&winner).copied() else {
        return false;
    };
    report
        .with_outcome(Outcome::Lose)
        .into_iter()
        .all(|loser| match report.intervals.get(&loser) {
            Some((_, Some(loser_end))) => *loser_end >= winner_start,
            // A loser with no recorded end never returned, which cannot
            // happen for an outcome to be present; treat as a violation.
            _ => false,
        })
}

/// Strong renaming validity: each of the `k` participants that returned got a
/// distinct name within `1..=namespace`.
///
/// When `require_all` participants have returned (no crashes), pass `k` as
/// the participant count; the function also checks that exactly `k` names
/// were handed out.
pub fn valid_tight_renaming(report: &ExecutionReport, k: usize, namespace: usize) -> bool {
    let names = report.names();
    if names.len() != k {
        return false;
    }
    let mut seen = BTreeSet::new();
    for (_proc, name) in names {
        if name == 0 || name > namespace {
            return false;
        }
        if !seen.insert(name) {
            return false;
        }
    }
    true
}

/// Renaming validity for executions with crashes: every participant that
/// returned holds a distinct in-range name (no completeness requirement).
pub fn valid_partial_renaming(report: &ExecutionReport, namespace: usize) -> bool {
    first_name_violation(report, namespace).is_none()
}

/// Every processor in `participants` returned some outcome.
pub fn all_returned(report: &ExecutionReport, participants: &[ProcId]) -> bool {
    participants.iter().all(|p| report.outcome(*p).is_some())
}

/// Sifting wipeout: every listed participant returned and **none** survived
/// — the negation of Claim 3.1, and the condition the explorer's
/// survivor-bound oracle fires on.
///
/// Because a crashed participant never returns, "every participant returned"
/// doubles as a crash-freedom certificate for the participants; the claim is
/// only guaranteed in that case, so the predicate is conservative (`false`)
/// while anyone is still out.
pub fn sifting_wipeout(report: &ExecutionReport, participants: &[ProcId]) -> bool {
    !participants.is_empty() && all_returned(report, participants) && report.survivors().is_empty()
}

/// Election stall: every listed participant returned and **nobody** won —
/// the negation of the test-and-set liveness guarantee for crash-free
/// executions (like [`sifting_wipeout`], "everyone returned" certifies that
/// no participant crashed).
pub fn election_stalled(report: &ExecutionReport, participants: &[ProcId]) -> bool {
    !participants.is_empty() && all_returned(report, participants) && report.winners().is_empty()
}

/// The first renaming violation among the outcomes so far: a processor
/// holding a name outside `1..=namespace`, or the second holder of a
/// duplicated name. `None` while every returned name is a valid partial
/// renaming — so the predicate is usable *online*, after every return.
pub fn first_name_violation(report: &ExecutionReport, namespace: usize) -> Option<(ProcId, usize)> {
    let mut holders: BTreeSet<usize> = BTreeSet::new();
    for (proc, name) in report.names() {
        if name == 0 || name > namespace || !holders.insert(name) {
            return Some((proc, name));
        }
    }
    None
}

/// Every *correct* (non-crashed) processor in `participants` returned.
pub fn all_correct_returned(report: &ExecutionReport, participants: &[ProcId]) -> bool {
    participants
        .iter()
        .filter(|p| !report.crashed.contains(p))
        .all(|p| report.outcome(*p).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_sim::ExecutionReport;

    fn report_with(outcomes: &[(usize, Outcome)]) -> ExecutionReport {
        let mut report = ExecutionReport::default();
        for (i, outcome) in outcomes {
            report.outcomes.insert(ProcId(*i), *outcome);
            report.intervals.insert(ProcId(*i), (0, Some(1)));
        }
        report
    }

    #[test]
    fn unique_winner_detects_double_wins() {
        assert!(unique_winner(&report_with(&[
            (0, Outcome::Win),
            (1, Outcome::Lose)
        ])));
        assert!(!unique_winner(&report_with(&[
            (0, Outcome::Win),
            (1, Outcome::Win)
        ])));
        assert!(unique_winner(&report_with(&[(0, Outcome::Lose)])));
        assert!(!someone_won(&report_with(&[(0, Outcome::Lose)])));
    }

    #[test]
    fn linearizability_rejects_losers_that_finish_before_the_winner_starts() {
        let mut report = ExecutionReport::default();
        report.outcomes.insert(ProcId(0), Outcome::Win);
        report.outcomes.insert(ProcId(1), Outcome::Lose);
        // Loser's interval [0, 5] ends before winner's start at 10: invalid.
        report.intervals.insert(ProcId(0), (10, Some(20)));
        report.intervals.insert(ProcId(1), (0, Some(5)));
        assert!(!linearizable_test_and_set(&report));

        // Overlapping intervals are fine.
        report.intervals.insert(ProcId(1), (0, Some(15)));
        assert!(linearizable_test_and_set(&report));
    }

    #[test]
    fn linearizability_without_winner_is_vacuous() {
        let report = report_with(&[(0, Outcome::Lose), (1, Outcome::Lose)]);
        assert!(linearizable_test_and_set(&report));
    }

    #[test]
    fn renaming_validators() {
        let good = report_with(&[(0, Outcome::Name(1)), (1, Outcome::Name(3))]);
        assert!(valid_tight_renaming(&good, 2, 3));
        assert!(valid_partial_renaming(&good, 3));
        assert!(!valid_tight_renaming(&good, 3, 3), "a name is missing");

        let dup = report_with(&[(0, Outcome::Name(2)), (1, Outcome::Name(2))]);
        assert!(!valid_tight_renaming(&dup, 2, 3));
        assert!(!valid_partial_renaming(&dup, 3));

        let out_of_range = report_with(&[(0, Outcome::Name(9))]);
        assert!(!valid_tight_renaming(&out_of_range, 1, 3));
        assert!(!valid_partial_renaming(&out_of_range, 3));
    }

    #[test]
    fn wipeout_and_stall_require_everyone_back() {
        let participants = [ProcId(0), ProcId(1)];
        let all_dead = report_with(&[(0, Outcome::Die), (1, Outcome::Die)]);
        assert!(sifting_wipeout(&all_dead, &participants));
        let one_out = report_with(&[(0, Outcome::Die)]);
        assert!(
            !sifting_wipeout(&one_out, &participants),
            "an unreturned (possibly crashed) participant mutes the oracle"
        );
        let one_lives = report_with(&[(0, Outcome::Die), (1, Outcome::Survive)]);
        assert!(!sifting_wipeout(&one_lives, &participants));
        assert!(!sifting_wipeout(&all_dead, &[]));

        let no_winner = report_with(&[(0, Outcome::Lose), (1, Outcome::Lose)]);
        assert!(election_stalled(&no_winner, &participants));
        let won = report_with(&[(0, Outcome::Win), (1, Outcome::Lose)]);
        assert!(!election_stalled(&won, &participants));
        assert!(!election_stalled(
            &report_with(&[(0, Outcome::Lose)]),
            &participants
        ));
    }

    #[test]
    fn first_name_violation_finds_duplicates_and_range_errors() {
        let good = report_with(&[(0, Outcome::Name(1)), (1, Outcome::Name(3))]);
        assert_eq!(first_name_violation(&good, 3), None);

        let dup = report_with(&[(0, Outcome::Name(2)), (2, Outcome::Name(2))]);
        assert_eq!(first_name_violation(&dup, 3), Some((ProcId(2), 2)));

        let out_of_range = report_with(&[(0, Outcome::Name(9))]);
        assert_eq!(first_name_violation(&out_of_range, 3), Some((ProcId(0), 9)));
        let zero = report_with(&[(0, Outcome::Name(0))]);
        assert_eq!(first_name_violation(&zero, 3), Some((ProcId(0), 0)));
    }

    #[test]
    fn returned_checks_respect_crashes() {
        let mut report = report_with(&[(0, Outcome::Win)]);
        report.crashed.push(ProcId(1));
        let participants = [ProcId(0), ProcId(1)];
        assert!(!all_returned(&report, &participants));
        assert!(all_correct_returned(&report, &participants));
        assert!(at_least_one_survivor(&report_with(&[(
            0,
            Outcome::Survive
        )])));
    }
}
