//! The `PreRound` procedure (Figure 4 of the paper).
//!
//! Before participating in sifting round `r`, a processor propagates `r` as
//! its current round to a quorum and then collects the round numbers of the
//! other processors. With `R` the maximum round observed for *another*
//! processor (Saks–Shavit–Woll):
//!
//! * `r < R`       ⇒ someone is already ahead, return `LOSE`,
//! * `R < r − 1`   ⇒ everyone else is at least two rounds behind, return
//!   `WIN`,
//! * otherwise     ⇒ `PROCEED` to the sifting round.

use fle_model::{
    Action, ElectionContext, InstanceId, Key, LocalStateView, Outcome, ProcId, Protocol, Response,
    Value,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Init,
    PropagatingRound,
    CollectingRounds,
    Done,
}

/// The `PreRound` filter of Figure 4. Returns [`Outcome::Win`],
/// [`Outcome::Lose`] or [`Outcome::Proceed`].
#[derive(Debug)]
pub struct PreRound {
    me: ProcId,
    instance: InstanceId,
    round: u32,
    stage: Stage,
}

impl PreRound {
    /// The pre-round check of processor `me` for round `round` of election
    /// `ctx`.
    pub fn new(me: ProcId, ctx: ElectionContext, round: u32) -> Self {
        PreRound {
            me,
            instance: InstanceId::round(ctx),
            round,
            stage: Stage::Init,
        }
    }

    /// The decision rule of lines 48–53.
    pub fn classify(own_round: u32, max_other_round: u32) -> Outcome {
        if own_round < max_other_round {
            Outcome::Lose
        } else if max_other_round + 1 < own_round {
            Outcome::Win
        } else {
            Outcome::Proceed
        }
    }
}

impl Protocol for PreRound {
    fn step(&mut self, response: Response) -> Action {
        match self.stage {
            Stage::Init => {
                debug_assert_eq!(response, Response::Start);
                self.stage = Stage::PropagatingRound;
                // Lines 45-46: record and propagate the own round.
                Action::Propagate {
                    entries: vec![(Key::proc(self.instance, self.me), Value::Round(self.round))],
                }
            }
            Stage::PropagatingRound => {
                // Line 47: collect the Round array.
                self.stage = Stage::CollectingRounds;
                Action::Collect {
                    instance: self.instance,
                }
            }
            Stage::CollectingRounds => {
                let views = response.expect_views();
                self.stage = Stage::Done;
                // Line 48: maximum round of *other* processors.
                let max_other = views.max_round_excluding(self.me);
                Action::Return(Self::classify(self.round, max_other))
            }
            Stage::Done => Action::Return(Outcome::Lose),
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let phase = match self.stage {
            Stage::Init => "init",
            Stage::PropagatingRound => "propagating-round",
            Stage::CollectingRounds => "collecting-rounds",
            Stage::Done => "done",
        };
        LocalStateView::new("pre-round", phase).with_round(u64::from(self.round))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_sim::{RandomAdversary, SimConfig, Simulator};

    #[test]
    fn classify_implements_the_ssw_rule() {
        // r < R: lose.
        assert_eq!(PreRound::classify(1, 3), Outcome::Lose);
        // R < r - 1: win.
        assert_eq!(PreRound::classify(3, 1), Outcome::Win);
        assert_eq!(PreRound::classify(2, 0), Outcome::Win);
        // Otherwise proceed.
        assert_eq!(PreRound::classify(3, 2), Outcome::Proceed);
        assert_eq!(PreRound::classify(3, 3), Outcome::Proceed);
        assert_eq!(PreRound::classify(1, 0), Outcome::Proceed);
    }

    #[test]
    fn lone_processor_proceeds_in_round_one_and_wins_in_round_two() {
        let ctx = ElectionContext::Standalone;
        // Round 1: nobody else has propagated anything, R = 0, 0 >= 1-1 ⇒ proceed.
        let mut sim = Simulator::new(SimConfig::new(3));
        sim.add_participant(ProcId(0), Box::new(PreRound::new(ProcId(0), ctx, 1)));
        let report = sim.run(&mut RandomAdversary::with_seed(0)).unwrap();
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Proceed));

        // Round 2 with nobody else: R = 0 < 1 ⇒ win.
        let mut sim = Simulator::new(SimConfig::new(3));
        sim.add_participant(ProcId(0), Box::new(PreRound::new(ProcId(0), ctx, 2)));
        let report = sim.run(&mut RandomAdversary::with_seed(0)).unwrap();
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
    }

    #[test]
    fn laggard_loses_against_a_processor_two_rounds_ahead() {
        let ctx = ElectionContext::Standalone;
        let mut sim = Simulator::new(SimConfig::new(4));
        sim.add_participant(ProcId(0), Box::new(PreRound::new(ProcId(0), ctx, 4)));
        sim.add_participant(ProcId(1), Box::new(PreRound::new(ProcId(1), ctx, 1)));
        let report = sim.run(&mut fle_sim::SequentialAdversary::new()).unwrap();
        // Processor 0 runs first, propagates round 4 and sees nothing newer:
        // R = 0 < 3 ⇒ WIN. Processor 1 then sees round 4 ⇒ LOSE.
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
        assert_eq!(report.outcome(ProcId(1)), Some(Outcome::Lose));
    }

    #[test]
    fn equal_rounds_proceed() {
        let ctx = ElectionContext::Standalone;
        let mut sim = Simulator::new(SimConfig::new(4));
        for i in 0..2 {
            sim.add_participant(ProcId(i), Box::new(PreRound::new(ProcId(i), ctx, 1)));
        }
        let report = sim.run(&mut fle_sim::SequentialAdversary::new()).unwrap();
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Proceed));
        assert_eq!(report.outcome(ProcId(1)), Some(Outcome::Proceed));
    }
}
