//! One-call helpers that wire the paper's protocols into the simulator.
//!
//! Tests, benchmarks, experiment drivers and examples all need the same
//! boilerplate: build a [`Simulator`], register one protocol instance per
//! participant, and run it under some adversary. The functions here provide
//! that, parameterised by an [`ElectionSetup`] / [`RenamingSetup`] /
//! [`SiftSetup`] describing the system.

use crate::het_poison_pill::HeterogeneousPoisonPill;
use crate::leader_election::{ElectionConfig, LeaderElection};
use crate::poison_pill::PoisonPill;
use crate::renaming::{Renaming, RenamingConfig};
use fle_model::ProcId;
use fle_sim::{Adversary, ExecutionReport, SimConfig, SimError, Simulator};

/// Description of a leader-election experiment: system size, participants and
/// seed.
#[derive(Debug, Clone)]
pub struct ElectionSetup {
    /// Number of processors in the system.
    pub n: usize,
    /// The processors that call `LeaderElect` (the paper's `k ≤ n`).
    pub participants: Vec<ProcId>,
    /// Seed driving every protocol coin flip.
    pub seed: u64,
    /// Election configuration shared by all participants.
    pub config: ElectionConfig,
}

impl ElectionSetup {
    /// All `n` processors participate.
    pub fn all_participate(n: usize) -> Self {
        ElectionSetup {
            n,
            participants: (0..n).map(ProcId).collect(),
            seed: 0,
            config: ElectionConfig::standalone(),
        }
    }

    /// Only the first `k` processors participate (contention-adaptivity
    /// experiments).
    pub fn first_k_participate(n: usize, k: usize) -> Self {
        ElectionSetup {
            n,
            participants: (0..k.min(n)).map(ProcId).collect(),
            seed: 0,
            config: ElectionConfig::standalone(),
        }
    }

    /// Set the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Description of a single sifting-phase experiment.
#[derive(Debug, Clone)]
pub struct SiftSetup {
    /// Number of processors in the system.
    pub n: usize,
    /// The processors participating in the phase.
    pub participants: Vec<ProcId>,
    /// Seed driving the coin flips.
    pub seed: u64,
}

impl SiftSetup {
    /// All `n` processors participate.
    pub fn all_participate(n: usize) -> Self {
        SiftSetup {
            n,
            participants: (0..n).map(ProcId).collect(),
            seed: 0,
        }
    }

    /// Set the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Description of a renaming experiment.
#[derive(Debug, Clone)]
pub struct RenamingSetup {
    /// Number of processors in the system (also the namespace size).
    pub n: usize,
    /// The processors that request a name.
    pub participants: Vec<ProcId>,
    /// Seed driving the random name picks and coin flips.
    pub seed: u64,
}

impl RenamingSetup {
    /// All `n` processors request a name from `1..=n`.
    pub fn all_participate(n: usize) -> Self {
        RenamingSetup {
            n,
            participants: (0..n).map(ProcId).collect(),
            seed: 0,
        }
    }

    /// Set the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Run the paper's leader election (Figure 6).
///
/// # Errors
/// Propagates any [`SimError`] from the simulator (event budget exhaustion,
/// invalid adversary decisions).
pub fn run_leader_election(
    setup: &ElectionSetup,
    adversary: &mut dyn Adversary,
) -> Result<ExecutionReport, SimError> {
    let mut sim = Simulator::new(SimConfig::new(setup.n).with_seed(setup.seed));
    for &p in &setup.participants {
        sim.try_add_participant(p, Box::new(LeaderElection::with_config(p, setup.config)))?;
    }
    sim.run(adversary)
}

/// Run a single plain PoisonPill phase (Figure 1) with bias `prob_high`.
///
/// # Errors
/// Propagates any [`SimError`] from the simulator.
pub fn run_poison_pill(
    setup: &SiftSetup,
    prob_high: f64,
    adversary: &mut dyn Adversary,
) -> Result<ExecutionReport, SimError> {
    let mut sim = Simulator::new(SimConfig::new(setup.n).with_seed(setup.seed));
    for &p in &setup.participants {
        sim.try_add_participant(p, Box::new(PoisonPill::with_bias(p, prob_high)))?;
    }
    sim.run(adversary)
}

/// Run a single Heterogeneous PoisonPill phase (Figure 2).
///
/// # Errors
/// Propagates any [`SimError`] from the simulator.
pub fn run_heterogeneous_poison_pill(
    setup: &SiftSetup,
    adversary: &mut dyn Adversary,
) -> Result<ExecutionReport, SimError> {
    let mut sim = Simulator::new(SimConfig::new(setup.n).with_seed(setup.seed));
    for &p in &setup.participants {
        sim.try_add_participant(p, Box::new(HeterogeneousPoisonPill::new(p)))?;
    }
    sim.run(adversary)
}

/// Run the renaming algorithm (Figure 3) over the namespace `1..=setup.n`.
///
/// # Errors
/// Propagates any [`SimError`] from the simulator.
pub fn run_renaming(
    setup: &RenamingSetup,
    adversary: &mut dyn Adversary,
) -> Result<ExecutionReport, SimError> {
    let config = RenamingConfig::new(setup.n);
    let mut sim = Simulator::new(SimConfig::new(setup.n).with_seed(setup.seed));
    for &p in &setup.participants {
        sim.try_add_participant(p, Box::new(Renaming::new(p, config)))?;
    }
    sim.run(adversary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use fle_sim::RandomAdversary;

    #[test]
    fn election_setup_constructors() {
        let all = ElectionSetup::all_participate(8);
        assert_eq!(all.participants.len(), 8);
        let some = ElectionSetup::first_k_participate(8, 3).with_seed(5);
        assert_eq!(some.participants.len(), 3);
        assert_eq!(some.seed, 5);
        // k larger than n is clamped.
        assert_eq!(
            ElectionSetup::first_k_participate(4, 9).participants.len(),
            4
        );
    }

    #[test]
    fn harness_runs_all_three_protocol_families() {
        let election = run_leader_election(
            &ElectionSetup::all_participate(6).with_seed(1),
            &mut RandomAdversary::with_seed(1),
        )
        .unwrap();
        assert!(checks::unique_winner(&election));
        assert!(checks::someone_won(&election));

        let sift = run_heterogeneous_poison_pill(
            &SiftSetup::all_participate(6).with_seed(2),
            &mut RandomAdversary::with_seed(2),
        )
        .unwrap();
        assert!(checks::at_least_one_survivor(&sift));

        let pp = run_poison_pill(
            &SiftSetup::all_participate(6).with_seed(3),
            0.4,
            &mut RandomAdversary::with_seed(3),
        )
        .unwrap();
        assert!(checks::at_least_one_survivor(&pp));

        let renaming = run_renaming(
            &RenamingSetup::all_participate(4).with_seed(4),
            &mut RandomAdversary::with_seed(4),
        )
        .unwrap();
        assert!(checks::valid_tight_renaming(&renaming, 4, 4));
    }
}
