//! The paper's contributions, implemented as backend-agnostic protocol state
//! machines.
//!
//! *How to Elect a Leader Faster than a Tournament* (Alistarh, Gelashvili,
//! Vladu; PODC 2015) introduces:
//!
//! * [`PoisonPill`] — the basic sifting phase of Figure 1: commit ("take the
//!   poison pill"), flip a biased coin, propagate the resulting priority and
//!   drop out if a committed-or-high-priority processor is visible while your
//!   own flip came up low. At least one processor always survives and the
//!   expected number of survivors is O(√n).
//! * [`HeterogeneousPoisonPill`] — Figure 2: the coin bias becomes
//!   `log |ℓ| / |ℓ|` where `ℓ` is the set of participants the processor has
//!   observed, and priorities carry `ℓ`, which yields only O(log² k) expected
//!   survivors under any strong-adversary schedule.
//! * [`LeaderElection`] — Figure 6: a doorway (linearizability), the
//!   `PreRound` round-number filter of Figure 4, and repeated heterogeneous
//!   sifting rounds; expected time O(log\* k) and message complexity O(kn).
//! * [`Renaming`] — Figure 3: tight renaming by repeatedly picking a random
//!   uncontended name and competing for it in a per-name leader election;
//!   expected O(log² n) time and O(n²) messages.
//!
//! The [`checks`] module provides the correctness validators used by the test
//! suite (unique winner, linearizability, at-least-one-survivor, valid name
//! assignment), and [`harness`] provides one-call helpers that wire the
//! protocols into the simulator.
//!
//! # Quickstart
//!
//! ```
//! use fle_core::harness::{run_leader_election, ElectionSetup};
//! use fle_sim::RandomAdversary;
//!
//! let setup = ElectionSetup::all_participate(16);
//! let report = run_leader_election(&setup, &mut RandomAdversary::with_seed(7))
//!     .expect("election terminates");
//! assert_eq!(report.winners().len(), 1, "exactly one leader is elected");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod doorway;
pub mod harness;
pub mod het_poison_pill;
pub mod leader_election;
pub mod poison_pill;
pub mod pre_round;
pub mod renaming;

pub use doorway::Doorway;
pub use het_poison_pill::HeterogeneousPoisonPill;
pub use leader_election::{ElectionConfig, LeaderElection};
pub use poison_pill::PoisonPill;
pub use pre_round::PreRound;
pub use renaming::{Renaming, RenamingConfig};
