//! The doorway procedure (Figure 5 of the paper).
//!
//! The doorway makes the leader election linearizable: a processor first
//! collects the `door` bit from a quorum; if anyone reports the door closed
//! it loses immediately, otherwise it closes the door, propagates the closed
//! door to a quorum and proceeds. Consequently no processor can lose before
//! the eventual winner has started its own execution (Lemma A.3).

use fle_model::{
    Action, ElectionContext, InstanceId, Key, LocalStateView, Outcome, Protocol, Response, Slot,
    Value,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Init,
    CollectingDoor,
    ClosingDoor,
    Done,
}

/// The doorway of Figure 5. Returns [`Outcome::Proceed`] or [`Outcome::Lose`].
#[derive(Debug)]
pub struct Doorway {
    instance: InstanceId,
    stage: Stage,
}

impl Doorway {
    /// A doorway for the given election context.
    pub fn new(ctx: ElectionContext) -> Self {
        Doorway {
            instance: InstanceId::door(ctx),
            stage: Stage::Init,
        }
    }
}

impl Protocol for Doorway {
    fn step(&mut self, response: Response) -> Action {
        match self.stage {
            Stage::Init => {
                debug_assert_eq!(response, Response::Start);
                self.stage = Stage::CollectingDoor;
                // Line 56: collect the door bit from a quorum.
                Action::Collect {
                    instance: self.instance,
                }
            }
            Stage::CollectingDoor => {
                let views = response.expect_views();
                let closed = views.responses().iter().any(|(_, view)| {
                    view.get(&Slot::Global).and_then(Value::as_flag) == Some(true)
                });
                if closed {
                    // Lines 57-58: the door is already closed, lose.
                    self.stage = Stage::Done;
                    Action::Return(Outcome::Lose)
                } else {
                    // Lines 59-60: close the door and propagate.
                    self.stage = Stage::ClosingDoor;
                    Action::Propagate {
                        entries: vec![(Key::global(self.instance), Value::Flag(true))],
                    }
                }
            }
            Stage::ClosingDoor => {
                self.stage = Stage::Done;
                Action::Return(Outcome::Proceed)
            }
            Stage::Done => Action::Return(Outcome::Lose),
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let phase = match self.stage {
            Stage::Init => "init",
            Stage::CollectingDoor => "collecting-door",
            Stage::ClosingDoor => "closing-door",
            Stage::Done => "done",
        };
        LocalStateView::new("doorway", phase)
    }
}

/// Convenience constructor used by [`crate::LeaderElection`]; kept separate so
/// the doorway can also be unit-tested and composed on its own.
impl Default for Doorway {
    fn default() -> Self {
        Doorway::new(ElectionContext::Standalone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::{CollectedViews, ProcId, View};
    use fle_sim::{RandomAdversary, SequentialAdversary, SimConfig, Simulator};

    #[test]
    fn open_door_lets_the_caller_proceed() {
        let mut sim = Simulator::new(SimConfig::new(4));
        sim.add_participant(ProcId(0), Box::new(Doorway::default()));
        let report = sim.run(&mut RandomAdversary::with_seed(1)).unwrap();
        assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Proceed));
    }

    #[test]
    fn sequential_schedule_admits_only_early_processors() {
        // Under the sequential schedule the first processor closes the door
        // before anyone else collects it, so exactly one proceeds.
        let n = 5;
        let mut sim = Simulator::new(SimConfig::new(n));
        for i in 0..n {
            sim.add_participant(ProcId(i), Box::new(Doorway::default()));
        }
        let report = sim.run(&mut SequentialAdversary::new()).unwrap();
        let proceeders = report.with_outcome(Outcome::Proceed);
        assert_eq!(proceeders, vec![ProcId(0)]);
        assert_eq!(report.with_outcome(Outcome::Lose).len(), n - 1);
    }

    #[test]
    fn concurrent_processors_may_all_proceed() {
        // If everybody collects before anybody's closed door propagates, all
        // proceed — the doorway only prevents *late* arrivals from winning.
        let n = 4;
        let mut sim = Simulator::new(SimConfig::new(n).with_seed(9));
        for i in 0..n {
            sim.add_participant(ProcId(i), Box::new(Doorway::default()));
        }
        let report = sim.run(&mut RandomAdversary::with_seed(2)).unwrap();
        assert!(!report.with_outcome(Outcome::Proceed).is_empty());
        assert_eq!(report.outcomes.len(), n);
    }

    #[test]
    fn closed_door_in_any_view_means_lose() {
        let mut doorway = Doorway::default();
        let _ = doorway.step(Response::Start);
        let closed_view: View = [(Slot::Global, Value::Flag(true))].into_iter().collect();
        let action = doorway.step(Response::Views(CollectedViews::new(vec![
            (ProcId(1), View::new()),
            (ProcId(2), closed_view),
        ])));
        assert_eq!(action.outcome(), Some(Outcome::Lose));
    }

    #[test]
    fn adversary_view_labels_the_algorithm() {
        assert_eq!(Doorway::default().adversary_view().algorithm, "doorway");
    }
}
