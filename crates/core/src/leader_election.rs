//! The full leader-election algorithm (Figure 6 of the paper).
//!
//! A participant first walks through the [`Doorway`] (for linearizability),
//! then repeats:
//!
//! 1. run [`PreRound`] for its current round `r`; return `WIN`/`LOSE` if the
//!    Saks–Shavit–Woll round comparison already decides,
//! 2. otherwise participate in the [`HeterogeneousPoisonPill`] of round `r`:
//!    dying there means `LOSE`, surviving means moving to round `r + 1`.
//!
//! Theorem A.5: the construction is a linearizable test-and-set, tolerates
//! `t ≤ ⌈n/2⌉ − 1` crashes, takes expected O(log\* k) time and sends O(kn)
//! messages for `k` participants.

use crate::doorway::Doorway;
use crate::het_poison_pill::HeterogeneousPoisonPill;
use crate::pre_round::PreRound;
use fle_model::{Action, ElectionContext, LocalStateView, Outcome, ProcId, Protocol, Response};

/// Configuration of a leader-election participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElectionConfig {
    /// The election context (standalone, or per-name inside renaming).
    pub ctx: ElectionContext,
    /// Safety valve: abort with `LOSE` if this many rounds complete without a
    /// decision. The paper's analysis gives expected O(log* k) rounds; the
    /// default of 64 is astronomically above that and exists only to convert
    /// a hypothetical bug into a clean failure rather than an infinite loop.
    pub max_rounds: u32,
}

impl Default for ElectionConfig {
    fn default() -> Self {
        ElectionConfig {
            ctx: ElectionContext::Standalone,
            max_rounds: 64,
        }
    }
}

impl ElectionConfig {
    /// A standalone election with default settings.
    pub fn standalone() -> Self {
        ElectionConfig::default()
    }

    /// An election bound to a renaming name.
    pub fn for_name(name: usize) -> Self {
        ElectionConfig {
            ctx: ElectionContext::ForName(name),
            ..ElectionConfig::default()
        }
    }
}

/// Which sub-protocol is currently driving the state machine.
#[derive(Debug)]
enum Stage {
    Doorway(Doorway),
    PreRound(PreRound),
    Sift(HeterogeneousPoisonPill),
    Done(Outcome),
}

/// The leader-election algorithm of Figure 6, returning [`Outcome::Win`] or
/// [`Outcome::Lose`].
#[derive(Debug)]
pub struct LeaderElection {
    me: ProcId,
    config: ElectionConfig,
    round: u32,
    stage: Stage,
}

impl LeaderElection {
    /// A standalone election participant.
    pub fn new(me: ProcId) -> Self {
        Self::with_config(me, ElectionConfig::default())
    }

    /// An election participant with an explicit configuration.
    pub fn with_config(me: ProcId, config: ElectionConfig) -> Self {
        LeaderElection {
            me,
            config,
            round: 1,
            stage: Stage::Doorway(Doorway::new(config.ctx)),
        }
    }

    /// The sifting round the participant is currently in (1-based).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Process the completion of a sub-protocol, transitioning to the next
    /// stage. Returns `Some(action)` when the transition immediately produces
    /// the next sub-protocol's first action or the final return.
    fn on_sub_outcome(&mut self, outcome: Outcome) -> Option<Action> {
        match (&self.stage, outcome) {
            // Doorway: lose if the door was closed, otherwise enter round 1.
            (Stage::Doorway(_), Outcome::Lose) => {
                self.stage = Stage::Done(Outcome::Lose);
                Some(Action::Return(Outcome::Lose))
            }
            (Stage::Doorway(_), _) => {
                self.stage = Stage::PreRound(PreRound::new(self.me, self.config.ctx, self.round));
                None
            }
            // PreRound: WIN and LOSE are final; PROCEED enters the sift.
            (Stage::PreRound(_), Outcome::Win) => {
                self.stage = Stage::Done(Outcome::Win);
                Some(Action::Return(Outcome::Win))
            }
            (Stage::PreRound(_), Outcome::Lose) => {
                self.stage = Stage::Done(Outcome::Lose);
                Some(Action::Return(Outcome::Lose))
            }
            (Stage::PreRound(_), _) => {
                self.stage = Stage::Sift(HeterogeneousPoisonPill::for_round(
                    self.me,
                    self.config.ctx,
                    self.round,
                ));
                None
            }
            // Sifting: dying loses, surviving advances to the next round.
            (Stage::Sift(_), Outcome::Die) => {
                self.stage = Stage::Done(Outcome::Lose);
                Some(Action::Return(Outcome::Lose))
            }
            (Stage::Sift(_), _) => {
                self.round += 1;
                if self.round > self.config.max_rounds {
                    self.stage = Stage::Done(Outcome::Lose);
                    return Some(Action::Return(Outcome::Lose));
                }
                self.stage = Stage::PreRound(PreRound::new(self.me, self.config.ctx, self.round));
                None
            }
            (Stage::Done(outcome), _) => Some(Action::Return(*outcome)),
        }
    }
}

impl Protocol for LeaderElection {
    fn step(&mut self, response: Response) -> Action {
        let mut response = response;
        loop {
            let action = match &mut self.stage {
                Stage::Doorway(sub) => sub.step(response),
                Stage::PreRound(sub) => sub.step(response),
                Stage::Sift(sub) => sub.step(response),
                Stage::Done(outcome) => return Action::Return(*outcome),
            };
            match action {
                Action::Return(outcome) => {
                    if let Some(final_action) = self.on_sub_outcome(outcome) {
                        return final_action;
                    }
                    // The next sub-protocol starts immediately: feed it Start
                    // within the same computation step.
                    response = Response::Start;
                }
                other => return other,
            }
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let sub_view = match &self.stage {
            Stage::Doorway(sub) => sub.adversary_view(),
            Stage::PreRound(sub) => sub.adversary_view(),
            Stage::Sift(sub) => sub.adversary_view(),
            Stage::Done(_) => LocalStateView::new("leader-elect", "done"),
        };
        LocalStateView {
            algorithm: "leader-elect",
            phase: sub_view.phase,
            round: u64::from(self.round),
            coin: sub_view.coin,
            details: sub_view.details,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use fle_sim::{
        Adversary, CoinAwareAdversary, RandomAdversary, SequentialAdversary, SimConfig, Simulator,
    };

    fn run_election(
        n: usize,
        participants: usize,
        seed: u64,
        adversary: &mut dyn Adversary,
    ) -> fle_sim::ExecutionReport {
        let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
        for i in 0..participants {
            sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
        }
        sim.run(adversary).expect("election terminates")
    }

    #[test]
    fn exactly_one_winner_under_every_adversary() {
        for (n, k) in [(2usize, 2usize), (4, 3), (8, 8), (16, 5)] {
            for seed in 0..4u64 {
                let adversaries: Vec<Box<dyn Adversary>> = vec![
                    Box::new(RandomAdversary::with_seed(seed)),
                    Box::new(SequentialAdversary::new()),
                    Box::new(CoinAwareAdversary::with_seed(seed)),
                ];
                for mut adversary in adversaries {
                    let report = run_election(n, k, seed, adversary.as_mut());
                    assert!(
                        checks::unique_winner(&report),
                        "n={n} k={k} seed={seed} adversary={} produced winners {:?}",
                        adversary.name(),
                        report.winners()
                    );
                    assert_eq!(report.outcomes.len(), k, "every participant returns");
                    assert_eq!(
                        report.winners().len(),
                        1,
                        "n={n} k={k} seed={seed} adversary={}: someone must win",
                        adversary.name()
                    );
                }
            }
        }
    }

    #[test]
    fn lone_participant_wins() {
        for seed in 0..3 {
            let report = run_election(8, 1, seed, &mut RandomAdversary::with_seed(seed));
            assert_eq!(report.outcome(ProcId(0)), Some(Outcome::Win));
        }
    }

    #[test]
    fn elections_are_linearizable() {
        for seed in 0..6u64 {
            let report = run_election(6, 6, seed, &mut RandomAdversary::with_seed(seed * 13 + 1));
            assert!(checks::linearizable_test_and_set(&report));
        }
    }

    #[test]
    fn round_counter_is_exposed_to_the_adversary() {
        let election = LeaderElection::new(ProcId(0));
        assert_eq!(election.round(), 1);
        let view = election.adversary_view();
        assert_eq!(view.algorithm, "leader-elect");
        assert_eq!(view.round, 1);
    }

    #[test]
    fn adaptive_time_stays_small() {
        // Theorem A.5: O(log* k) communicate calls per processor. log*(64) = 4;
        // the constant in front is small. 60 calls is a very generous ceiling
        // that a Θ(log k)-round algorithm at k = 64 would still meet, but a
        // linear-round bug would not.
        let report = run_election(64, 64, 3, &mut RandomAdversary::with_seed(17));
        assert!(
            report.max_communicate_calls() <= 60,
            "expected O(log* k) communicate calls, got {}",
            report.max_communicate_calls()
        );
    }
}
