//! The renaming algorithm (Figure 3 of the paper, Section 4).
//!
//! Each processor repeatedly:
//!
//! 1. collects the `Contended[n]` array from a quorum and merges what it
//!    learns into its local view (lines 33–36),
//! 2. propagates the names it now knows to be contended (line 37),
//! 3. picks a name uniformly at random among the names it still views as
//!    uncontended (line 38), marks it contended locally (line 39),
//! 4. competes for that name in a dedicated [`LeaderElection`] instance
//!    (line 40), propagates the contention of that name (line 41), and
//! 5. returns the name if it won the election, otherwise starts over.
//!
//! Theorem 4.2: O(n²) expected messages. Theorem A.13: O(log² n) expected
//! time. Lemma A.6: names are unique and every correct processor terminates
//! with probability 1 when fewer than half the processors crash.

use crate::leader_election::{ElectionConfig, LeaderElection};
use fle_model::{
    Action, InstanceId, Key, LocalStateView, Outcome, ProcId, Protocol, Response, Slot, Value,
};

/// Configuration of a renaming participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamingConfig {
    /// Size of the target namespace (the paper's `n`: names `1..=namespace`).
    pub namespace: usize,
}

impl RenamingConfig {
    /// Tight renaming into `1..=namespace`.
    pub fn new(namespace: usize) -> Self {
        assert!(
            namespace > 0,
            "the namespace must contain at least one name"
        );
        RenamingConfig { namespace }
    }
}

#[derive(Debug)]
enum Stage {
    Init,
    CollectingContention,
    PropagatingContention,
    ChoosingSpot,
    Electing {
        /// Zero-based index of the name being contended for.
        spot: usize,
        election: Box<LeaderElection>,
    },
    PropagatingOwnContention {
        spot: usize,
        won: bool,
    },
    Done(Outcome),
}

/// The `getName` procedure of Figure 3. Returns [`Outcome::Name`] with a
/// 1-based name, as in the paper.
#[derive(Debug)]
pub struct Renaming {
    me: ProcId,
    config: RenamingConfig,
    /// Local view of the `Contended` array (index = zero-based name).
    contended: Vec<bool>,
    stage: Stage,
    iterations: u32,
    elections_entered: u32,
}

impl Renaming {
    /// A renaming participant for processor `me` over `1..=namespace`.
    pub fn new(me: ProcId, config: RenamingConfig) -> Self {
        Renaming {
            me,
            config,
            contended: vec![false; config.namespace],
            stage: Stage::Init,
            iterations: 0,
            elections_entered: 0,
        }
    }

    /// Number of while-loop iterations started so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Number of per-name leader elections entered so far.
    pub fn elections_entered(&self) -> u32 {
        self.elections_entered
    }

    /// The renaming configuration this participant was created with.
    pub fn config(&self) -> RenamingConfig {
        self.config
    }

    fn contended_entries(&self) -> Vec<(Key, Value)> {
        self.contended
            .iter()
            .enumerate()
            .filter(|(_, c)| **c)
            .map(|(name, _)| (Key::name(InstanceId::Contended, name), Value::Flag(true)))
            .collect()
    }

    fn uncontended(&self) -> Vec<u64> {
        self.contended
            .iter()
            .enumerate()
            .filter(|(_, c)| !**c)
            .map(|(name, _)| name as u64)
            .collect()
    }

    fn start_iteration(&mut self) -> Action {
        self.iterations += 1;
        self.stage = Stage::CollectingContention;
        // Line 33: collect contention information.
        Action::Collect {
            instance: InstanceId::Contended,
        }
    }
}

impl Protocol for Renaming {
    fn step(&mut self, response: Response) -> Action {
        match &mut self.stage {
            Stage::Init => {
                debug_assert_eq!(response, Response::Start);
                self.start_iteration()
            }
            Stage::CollectingContention => {
                let views = response.expect_views();
                // Lines 34-36: mark names that became contended.
                for (_, view) in views.responses() {
                    for (slot, value) in view.iter() {
                        if let (Slot::Name(name), Some(true)) = (slot, value.as_flag()) {
                            if name < self.contended.len() {
                                self.contended[name] = true;
                            }
                        }
                    }
                }
                self.stage = Stage::PropagatingContention;
                // Line 37: propagate the contended names.
                Action::Propagate {
                    entries: self.contended_entries(),
                }
            }
            Stage::PropagatingContention => {
                // Line 38: pick a random uncontended name.
                let choices = self.uncontended();
                if choices.is_empty() {
                    // Transiently possible only if every name is truly
                    // contended, which the cardinality argument of Lemma A.6
                    // rules out for a processor that still needs a name;
                    // retry defensively rather than panic.
                    return self.start_iteration();
                }
                self.stage = Stage::ChoosingSpot;
                Action::Choose { choices }
            }
            Stage::ChoosingSpot => {
                let chosen = response.expect_chosen();
                self.on_chosen(chosen)
            }
            Stage::Electing { spot, election } => {
                let action = election.step(response);
                match action {
                    Action::Return(outcome) => {
                        let spot = *spot;
                        let won = outcome == Outcome::Win;
                        self.stage = Stage::PropagatingOwnContention { spot, won };
                        // Line 41: propagate the contention on the spot we
                        // just competed for.
                        Action::Propagate {
                            entries: vec![(
                                Key::name(InstanceId::Contended, spot),
                                Value::Flag(true),
                            )],
                        }
                    }
                    other => other,
                }
            }
            Stage::PropagatingOwnContention { spot, won } => {
                if *won {
                    // Line 43: the paper's names are 1-based.
                    let name = *spot + 1;
                    self.stage = Stage::Done(Outcome::Name(name));
                    Action::Return(Outcome::Name(name))
                } else {
                    self.start_iteration()
                }
            }
            Stage::Done(outcome) => Action::Return(*outcome),
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let (phase, coin, mut details): (&'static str, Option<bool>, Vec<(&'static str, i64)>) =
            match &self.stage {
                Stage::Init => ("init", None, Vec::new()),
                Stage::CollectingContention => ("collecting-contention", None, Vec::new()),
                Stage::PropagatingContention => ("propagating-contention", None, Vec::new()),
                Stage::ChoosingSpot => ("choosing-spot", None, Vec::new()),
                Stage::Electing { spot, election } => {
                    let sub = election.adversary_view();
                    ("electing", sub.coin, vec![("spot", *spot as i64)])
                }
                Stage::PropagatingOwnContention { spot, .. } => (
                    "propagating-own-contention",
                    None,
                    vec![("spot", *spot as i64)],
                ),
                Stage::Done(_) => ("done", None, Vec::new()),
            };
        details.push(("iterations", i64::from(self.iterations)));
        LocalStateView {
            algorithm: "renaming",
            phase,
            round: u64::from(self.iterations),
            coin,
            details,
        }
    }
}

impl Renaming {
    /// Handle the `Chosen` response that concludes the name pick of line 38.
    /// Exposed for unit tests; [`Protocol::step`] dispatches here.
    fn on_chosen(&mut self, chosen: u64) -> Action {
        let spot = chosen as usize;
        // Line 39: mark the chosen spot contended locally.
        if spot < self.contended.len() {
            self.contended[spot] = true;
        }
        self.elections_entered += 1;
        // Line 40: compete for the name in its own leader election.
        let mut election = Box::new(LeaderElection::with_config(
            self.me,
            ElectionConfig::for_name(spot),
        ));
        let first_action = election.step(Response::Start);
        self.stage = Stage::Electing { spot, election };
        first_action
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks;
    use fle_sim::{
        Adversary, CoinAwareAdversary, RandomAdversary, SequentialAdversary, SimConfig, Simulator,
    };

    fn run_renaming(
        n: usize,
        k: usize,
        seed: u64,
        adversary: &mut dyn Adversary,
    ) -> fle_sim::ExecutionReport {
        let config = RenamingConfig::new(n);
        let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
        for i in 0..k {
            sim.add_participant(ProcId(i), Box::new(Renaming::new(ProcId(i), config)));
        }
        sim.run(adversary).expect("renaming terminates")
    }

    #[test]
    fn names_are_unique_and_tight_under_every_adversary() {
        for (n, k) in [(2usize, 2usize), (4, 4), (8, 6), (8, 8)] {
            for seed in 0..3u64 {
                let adversaries: Vec<Box<dyn Adversary>> = vec![
                    Box::new(RandomAdversary::with_seed(seed)),
                    Box::new(SequentialAdversary::new()),
                    Box::new(CoinAwareAdversary::with_seed(seed)),
                ];
                for mut adversary in adversaries {
                    let report = run_renaming(n, k, seed, adversary.as_mut());
                    assert!(
                        checks::valid_tight_renaming(&report, k, n),
                        "n={n} k={k} seed={seed} adversary={}: invalid names {:?}",
                        adversary.name(),
                        report.names()
                    );
                }
            }
        }
    }

    #[test]
    fn lone_processor_gets_a_name_quickly() {
        let report = run_renaming(4, 1, 0, &mut RandomAdversary::with_seed(3));
        let names = report.names();
        assert_eq!(names.len(), 1);
        let name = names[&ProcId(0)];
        assert!((1..=4).contains(&name));
    }

    #[test]
    fn chosen_spot_is_marked_contended_locally() {
        let mut renaming = Renaming::new(ProcId(0), RenamingConfig::new(4));
        let action = renaming.on_chosen(2);
        assert!(renaming.contended[2]);
        assert_eq!(renaming.elections_entered(), 1);
        // The nested election's first action is the doorway collect.
        match action {
            Action::Collect { instance } => {
                assert_eq!(
                    instance,
                    InstanceId::door(fle_model::ElectionContext::ForName(2))
                );
            }
            other => panic!("expected the nested doorway collect, got {other}"),
        }
    }

    #[test]
    fn uncontended_shrinks_as_contention_is_learned() {
        let mut renaming = Renaming::new(ProcId(1), RenamingConfig::new(3));
        assert_eq!(renaming.uncontended(), vec![0, 1, 2]);
        renaming.contended[1] = true;
        assert_eq!(renaming.uncontended(), vec![0, 2]);
        assert_eq!(renaming.contended_entries().len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one name")]
    fn zero_namespace_is_rejected() {
        let _ = RenamingConfig::new(0);
    }
}
