//! The Heterogeneous PoisonPill sifting phase (Figure 2 of the paper).
//!
//! The plain PoisonPill cannot beat Ω(√n) expected survivors: the fixed coin
//! bias `1/√n` perfectly balances the group that survives by flipping high
//! against the group that survives by flipping low before the first high
//! flip (Section 3.2). The heterogeneous variant breaks the balance by making
//! each processor's bias depend on the set `ℓ` of participants it has
//! observed *after committing*:
//!
//! * `prob = 1` when `|ℓ| = 1`, else `prob = log|ℓ| / |ℓ|`,
//! * the priority propagated to the quorum carries `ℓ`,
//! * a low-priority processor computes `L` — the union of every `ℓ` list it
//!   observed plus every participant it observed directly — and dies if some
//!   processor in `L` is *not* reported as low priority by any view.
//!
//! Claim 3.3 (closure of survivor views), Claim 3.5 (probability of `z`
//! low-flip survivors is O(1/z)), Lemma 3.6 (O(log k) expected low-flip
//! survivors) and Lemma 3.7 (O(log² k) expected high-flip survivors) together
//! bound the expected survivor count by O(log² k) under any schedule.

#[cfg(test)]
use fle_model::Slot;
use fle_model::{
    Action, CollectedViews, ElectionContext, InstanceId, Key, LocalStateView, Outcome, Priority,
    ProcId, Protocol, Response, Status, Value,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Init,
    Committing,
    CollectingParticipants,
    Flipping,
    PropagatingPriority,
    CollectingStatuses,
    Done,
}

/// One Heterogeneous PoisonPill sifting phase (Figure 2).
#[derive(Debug)]
pub struct HeterogeneousPoisonPill {
    me: ProcId,
    instance: InstanceId,
    stage: Stage,
    observed: Vec<ProcId>,
    coin: Option<bool>,
    round: u32,
}

impl HeterogeneousPoisonPill {
    /// A phase for processor `me` in a standalone context, round 1.
    pub fn new(me: ProcId) -> Self {
        Self::for_round(me, ElectionContext::Standalone, 1)
    }

    /// A phase bound to an election context and a round number, so that the
    /// sifting rounds of the full leader election use disjoint registers.
    pub fn for_round(me: ProcId, ctx: ElectionContext, round: u32) -> Self {
        HeterogeneousPoisonPill {
            me,
            instance: InstanceId::status(ctx, round),
            stage: Stage::Init,
            observed: Vec::new(),
            coin: None,
            round,
        }
    }

    /// The heterogeneous bias of Figure 2, lines 18–19: `1` for a single
    /// observed participant, `ln ℓ / ℓ` otherwise.
    pub fn bias_for(observed_participants: usize) -> f64 {
        if observed_participants <= 1 {
            1.0
        } else {
            let l = observed_participants as f64;
            (l.ln() / l).clamp(0.0, 1.0)
        }
    }

    fn my_key(&self) -> Key {
        Key::proc(self.instance, self.me)
    }

    /// The death rule of Figure 2, lines 26–29: build `L` as the union of all
    /// observed `ℓ` lists and all directly observed participants, and die if
    /// some member of `L` is never reported with low priority.
    ///
    /// One pass over every view entry, accumulating `L` and the "reported
    /// low" set as bitmaps. The heterogeneous lists can carry up to `k`
    /// processors each, so the historical per-element `BTreeSet` insertion
    /// (O(quorum × slots × |ℓ| · log)) dominated the sifting step at large
    /// `n`; the bitmap union is a constant-time mark per element.
    fn should_die(views: &CollectedViews) -> bool {
        let mut l_set = fle_model::BitRow::new();
        let mut low = fle_model::BitRow::new();
        for (_, view) in views.responses() {
            view.for_each(|slot, value| {
                if let fle_model::Slot::Proc(j) = slot {
                    l_set.set(j.index());
                    if value
                        .as_status()
                        .is_some_and(|s| s.priority() == Some(Priority::Low))
                    {
                        low.set(j.index());
                    }
                }
                if let Some(status) = value.as_status() {
                    for member in status.list() {
                        l_set.set(member.index());
                    }
                }
            });
        }
        // Bound to a local because the iterator temporary in tail position
        // would otherwise outlive the bitmaps it borrows (E0597).
        let dies = l_set.iter().any(|j| !low.contains(j));
        dies
    }
}

impl Protocol for HeterogeneousPoisonPill {
    fn step(&mut self, response: Response) -> Action {
        match self.stage {
            Stage::Init => {
                debug_assert_eq!(response, Response::Start);
                self.stage = Stage::Committing;
                // Lines 14-15: commit (empty list) and propagate.
                Action::Propagate {
                    entries: vec![(self.my_key(), Value::Status(Status::Commit))],
                }
            }
            Stage::Committing => {
                // Line 16: collect to learn the participant set ℓ.
                self.stage = Stage::CollectingParticipants;
                Action::Collect {
                    instance: self.instance,
                }
            }
            Stage::CollectingParticipants => {
                let views = response.expect_views();
                // Line 17: ℓ ← processors with a non-⊥ status in some view.
                self.observed = views.observed_procs();
                if !self.observed.contains(&self.me) {
                    // The collect always includes the caller's own view, which
                    // already has our Commit; this is only a safeguard.
                    self.observed.push(self.me);
                    self.observed.sort_unstable();
                }
                self.stage = Stage::Flipping;
                // Lines 18-20: bias depends on |ℓ|.
                Action::Flip {
                    prob_one: Self::bias_for(self.observed.len()),
                }
            }
            Stage::Flipping => {
                let coin = response.expect_coin();
                self.coin = Some(coin);
                self.stage = Stage::PropagatingPriority;
                let priority = if coin { Priority::High } else { Priority::Low };
                // Lines 21-23: the propagated priority carries ℓ.
                Action::Propagate {
                    entries: vec![(
                        self.my_key(),
                        Value::Status(Status::resolved_with_list(priority, self.observed.clone())),
                    )],
                }
            }
            Stage::PropagatingPriority => {
                // Line 24: collect statuses from a quorum.
                self.stage = Stage::CollectingStatuses;
                Action::Collect {
                    instance: self.instance,
                }
            }
            Stage::CollectingStatuses => {
                let views = response.expect_views();
                self.stage = Stage::Done;
                let survived = match self.coin {
                    Some(true) => true,
                    // Lines 25-29.
                    _ => !Self::should_die(&views),
                };
                Action::Return(if survived {
                    Outcome::Survive
                } else {
                    Outcome::Die
                })
            }
            Stage::Done => Action::Return(Outcome::Die),
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let phase = match self.stage {
            Stage::Init => "init",
            Stage::Committing => "committing",
            Stage::CollectingParticipants => "collecting-participants",
            Stage::Flipping => "flipping",
            Stage::PropagatingPriority => "propagating-priority",
            Stage::CollectingStatuses => "collecting-statuses",
            Stage::Done => "done",
        };
        LocalStateView::new("het-poison-pill", phase)
            .with_round(u64::from(self.round))
            .with_coin(self.coin)
            .with_detail("observed", self.observed.len() as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_model::View;
    use fle_sim::{
        Adversary, CoinAwareAdversary, RandomAdversary, SequentialAdversary, SimConfig, Simulator,
    };

    fn run_phase(n: usize, seed: u64, adversary: &mut dyn Adversary) -> fle_sim::ExecutionReport {
        let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
        for i in 0..n {
            sim.add_participant(ProcId(i), Box::new(HeterogeneousPoisonPill::new(ProcId(i))));
        }
        sim.run(adversary).expect("phase terminates")
    }

    #[test]
    fn bias_matches_figure_two() {
        assert_eq!(HeterogeneousPoisonPill::bias_for(0), 1.0);
        assert_eq!(HeterogeneousPoisonPill::bias_for(1), 1.0);
        let b2 = HeterogeneousPoisonPill::bias_for(2);
        assert!((b2 - 2f64.ln() / 2.0).abs() < 1e-12);
        let b100 = HeterogeneousPoisonPill::bias_for(100);
        assert!(
            b100 < b2,
            "bias decreases with the number of observed participants"
        );
        assert!(b100 > 0.0);
    }

    #[test]
    fn at_least_one_survivor_under_every_adversary() {
        for n in [1usize, 2, 3, 6, 12] {
            for seed in 0..4u64 {
                let adversaries: Vec<Box<dyn Adversary>> = vec![
                    Box::new(RandomAdversary::with_seed(seed)),
                    Box::new(SequentialAdversary::new()),
                    Box::new(CoinAwareAdversary::with_seed(seed)),
                ];
                for mut adversary in adversaries {
                    let report = run_phase(n, seed, adversary.as_mut());
                    assert!(
                        !report.survivors().is_empty(),
                        "n={n} seed={seed} adversary={}",
                        adversary.name()
                    );
                    assert_eq!(report.outcomes.len(), n);
                }
            }
        }
    }

    #[test]
    fn lone_participant_survives_with_certainty() {
        // |ℓ| = 1 ⇒ bias 1 ⇒ the processor flips high and survives.
        for seed in 0..5 {
            let mut sim = Simulator::new(SimConfig::new(8).with_seed(seed));
            sim.add_participant(ProcId(3), Box::new(HeterogeneousPoisonPill::new(ProcId(3))));
            let report = sim
                .run(&mut RandomAdversary::with_seed(seed))
                .expect("terminates");
            assert_eq!(report.outcome(ProcId(3)), Some(Outcome::Survive));
        }
    }

    #[test]
    fn survivors_scale_sub_polynomially_under_sequential_adversary() {
        // Lemma 3.6 + 3.7: O(log² k) expected survivors. With n = 64 the
        // expectation is ≈ log²(64) ≈ 17 at the very worst; compare with the
        // ≈ 2·√64 = 16 of the plain PoisonPill — on average the heterogeneous
        // sift must do no worse, and for larger n strictly better. Here we
        // only check the phase keeps survivors well below n/2 on average.
        let n = 64;
        let trials = 15;
        let mut total = 0usize;
        for seed in 0..trials {
            let report = run_phase(n, seed, &mut SequentialAdversary::new());
            total += report.survivors().len();
        }
        let average = total as f64 / trials as f64;
        assert!(
            average < n as f64 / 2.0,
            "heterogeneous sifting must eliminate most participants, got {average}"
        );
        assert!(average >= 1.0);
    }

    #[test]
    fn death_rule_uses_observed_lists() {
        // A survivor's view reports only processor 2 (low priority), but
        // processor 2's list mentions processor 7, which nobody reports as
        // low: the current processor must die (line 28).
        let view: View = [(
            Slot::Proc(ProcId(2)),
            Value::Status(Status::resolved_with_list(
                Priority::Low,
                vec![ProcId(2), ProcId(7)],
            )),
        )]
        .into_iter()
        .collect();
        let views = CollectedViews::new(vec![(ProcId(0), view)]);
        assert!(HeterogeneousPoisonPill::should_die(&views));

        // If processor 7 is also reported low somewhere, the rule passes.
        let view2: View = [(
            Slot::Proc(ProcId(7)),
            Value::Status(Status::resolved_with_list(Priority::Low, vec![ProcId(7)])),
        )]
        .into_iter()
        .collect();
        let views = CollectedViews::new(vec![
            (
                ProcId(0),
                [(
                    Slot::Proc(ProcId(2)),
                    Value::Status(Status::resolved_with_list(
                        Priority::Low,
                        vec![ProcId(2), ProcId(7)],
                    )),
                )]
                .into_iter()
                .collect::<View>(),
            ),
            (ProcId(1), view2),
        ]);
        assert!(!HeterogeneousPoisonPill::should_die(&views));
    }

    #[test]
    fn commit_without_low_report_still_kills() {
        // Same catch-22 as the basic PoisonPill: a Commit with no Low report
        // anywhere is fatal to low-priority observers.
        let view: View = [(Slot::Proc(ProcId(4)), Value::Status(Status::Commit))]
            .into_iter()
            .collect();
        let views = CollectedViews::new(vec![(ProcId(0), view)]);
        assert!(HeterogeneousPoisonPill::should_die(&views));
    }

    #[test]
    fn adversary_view_reports_observed_count() {
        let mut pp = HeterogeneousPoisonPill::new(ProcId(0));
        let _ = pp.step(Response::Start);
        let _ = pp.step(Response::AckQuorum);
        // Simulate a collect response that observed processors 0 and 5.
        let view: View = [
            (Slot::Proc(ProcId(0)), Value::Status(Status::Commit)),
            (Slot::Proc(ProcId(5)), Value::Status(Status::Commit)),
        ]
        .into_iter()
        .collect();
        let action = pp.step(Response::Views(CollectedViews::new(vec![(
            ProcId(0),
            view,
        )])));
        match action {
            Action::Flip { prob_one } => {
                assert!((prob_one - HeterogeneousPoisonPill::bias_for(2)).abs() < 1e-12);
            }
            other => panic!("expected a flip, got {other}"),
        }
        assert_eq!(pp.adversary_view().detail("observed"), Some(2));
    }
}
