//! Lock-cheap live recorders: what the service writes into on the hot path.
//!
//! A [`ShardRecorder`] is the always-on instrument of one service shard.
//! Counters and the queue-depth high-water mark are relaxed atomics (one
//! uncontended RMW per event); the four latency/occupancy histograms sit
//! behind a single per-shard mutex that only the shard's own worker and its
//! submitters ever touch — cross-shard contention is zero by construction,
//! so recording costs nanoseconds next to the election each sample is about.
//!
//! The recorder is write-only during operation; [`ShardRecorder::snapshot`]
//! freezes it into an owned, mergeable [`ShardSnapshot`] for reports.

use crate::hist::LogHistogram;
use crate::snapshot::{FaultCounters, ShardSnapshot};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A monotone event counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Count one event.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events at once.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-water-mark gauge: remembers the largest observed value.
#[derive(Debug, Default)]
pub struct Watermark(AtomicUsize);

impl Watermark {
    /// Observe a value; the mark only ever rises.
    pub fn observe(&self, value: usize) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// The largest value observed so far.
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a dequeued-and-started instance run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// The instance ran to completion.
    Completed,
    /// Its deadline tripped the cancel token mid-run.
    CancelledInFlight,
    /// It panicked and was contained by the worker.
    Panicked,
}

/// The histograms of one shard, behind one uncontended mutex.
#[derive(Debug, Default)]
struct Hists {
    /// Queue depth observed at each admission (occupancy distribution).
    depth_on_admit: LogHistogram,
    /// Submit-to-dequeue wait of every started instance, microseconds.
    queue_wait_micros: LogHistogram,
    /// Dequeue-to-resolution run time of every started instance,
    /// microseconds.
    run_micros: LogHistogram,
    /// Retirement lag: terminal events on the shard between an instance
    /// finishing and its record + registers being purged.
    retirement_lag: LogHistogram,
}

/// The always-on metrics of one service shard.
#[derive(Debug)]
pub struct ShardRecorder {
    shard: usize,
    admitted: Counter,
    blocked_submitters: Counter,
    displaced: Counter,
    rejected_shed: Counter,
    rejected_block_timeout: Counter,
    expired_in_queue: Counter,
    completed: Counter,
    cancelled_in_flight: Counter,
    panics: Counter,
    drained: Counter,
    retired: Counter,
    epochs_closed: Counter,
    queue_high_water: Watermark,
    fault_ops: Counter,
    fault_delays: Counter,
    fault_delay_micros: Counter,
    fault_collect_failures: Counter,
    fault_crashes: Counter,
    hists: Mutex<Hists>,
}

const LOCK: &str = "metric recording never panics while holding the histogram lock";

impl ShardRecorder {
    /// A fresh recorder for shard `shard`.
    pub fn new(shard: usize) -> Self {
        ShardRecorder {
            shard,
            admitted: Counter::default(),
            blocked_submitters: Counter::default(),
            displaced: Counter::default(),
            rejected_shed: Counter::default(),
            rejected_block_timeout: Counter::default(),
            expired_in_queue: Counter::default(),
            completed: Counter::default(),
            cancelled_in_flight: Counter::default(),
            panics: Counter::default(),
            drained: Counter::default(),
            retired: Counter::default(),
            epochs_closed: Counter::default(),
            queue_high_water: Watermark::default(),
            fault_ops: Counter::default(),
            fault_delays: Counter::default(),
            fault_delay_micros: Counter::default(),
            fault_collect_failures: Counter::default(),
            fault_crashes: Counter::default(),
            hists: Mutex::new(Hists::default()),
        }
    }

    /// The shard this recorder instruments.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// One job admitted to the shard queue at depth `depth` (measured under
    /// the queue lock, so the high-water mark here equals the queue's own);
    /// `blocked` marks a submitter that had to park for space first.
    pub fn record_admitted(&self, depth: usize, blocked: bool) {
        self.admitted.incr();
        if blocked {
            self.blocked_submitters.incr();
        }
        self.queue_high_water.observe(depth);
        self.hists
            .lock()
            .expect(LOCK)
            .depth_on_admit
            .record(depth as u64);
    }

    /// A queued job displaced by a newer one under drop-oldest.
    pub fn record_displaced(&self) {
        self.displaced.incr();
    }

    /// A submission refused at the door by the shed policy.
    pub fn record_rejected_shed(&self) {
        self.rejected_shed.incr();
    }

    /// A submission refused after a block policy's timeout expired.
    pub fn record_rejected_block_timeout(&self) {
        self.rejected_block_timeout.incr();
    }

    /// A dequeued job whose deadline had already passed (never started).
    pub fn record_expired_in_queue(&self) {
        self.expired_in_queue.incr();
    }

    /// One started run: `wait_micros` in queue, `run_micros` executing, and
    /// how it ended. This is the wait-vs-run latency split per instance.
    pub fn record_run(&self, wait_micros: u64, run_micros: u64, kind: RunKind) {
        match kind {
            RunKind::Completed => self.completed.incr(),
            RunKind::CancelledInFlight => self.cancelled_in_flight.incr(),
            RunKind::Panicked => self.panics.incr(),
        }
        let mut hists = self.hists.lock().expect(LOCK);
        hists.queue_wait_micros.record(wait_micros);
        hists.run_micros.record(run_micros);
    }

    /// `n` queued jobs failed by shutdown before they started.
    pub fn record_drained(&self, n: u64) {
        self.drained.add(n);
    }

    /// One record + register purge, `lag` terminal events after the
    /// instance finished.
    pub fn record_retirement(&self, lag: u64) {
        self.retired.incr();
        self.hists.lock().expect(LOCK).retirement_lag.record(lag);
    }

    /// One epoch closed on this shard.
    pub fn record_epoch_closed(&self) {
        self.epochs_closed.incr();
    }

    /// Merge the fault counters one instance's `FaultyMemory` reported.
    pub fn record_faults(&self, faults: &FaultCounters) {
        self.fault_ops.add(faults.ops);
        self.fault_delays.add(faults.delays);
        self.fault_delay_micros.add(faults.delay_micros);
        self.fault_collect_failures.add(faults.collect_failures);
        self.fault_crashes.add(faults.crashes);
    }

    /// Freeze the recorder into an owned snapshot; `queue_depth` is the
    /// shard queue's depth right now (the recorder itself only sees depths
    /// at admission times).
    pub fn snapshot(&self, queue_depth: usize) -> ShardSnapshot {
        let hists = self.hists.lock().expect(LOCK);
        ShardSnapshot {
            shard: self.shard,
            admitted: self.admitted.get(),
            blocked_submitters: self.blocked_submitters.get(),
            displaced: self.displaced.get(),
            rejected_shed: self.rejected_shed.get(),
            rejected_block_timeout: self.rejected_block_timeout.get(),
            expired_in_queue: self.expired_in_queue.get(),
            completed: self.completed.get(),
            cancelled_in_flight: self.cancelled_in_flight.get(),
            panics: self.panics.get(),
            drained: self.drained.get(),
            retired: self.retired.get(),
            epochs_closed: self.epochs_closed.get(),
            queue_depth,
            queue_high_water: self.queue_high_water.get(),
            depth_on_admit: hists.depth_on_admit.clone(),
            queue_wait_micros: hists.queue_wait_micros.clone(),
            run_micros: hists.run_micros.clone(),
            retirement_lag: hists.retirement_lag.clone(),
            faults: FaultCounters {
                ops: self.fault_ops.get(),
                delays: self.fault_delays.get(),
                delay_micros: self.fault_delay_micros.get(),
                collect_failures: self.fault_collect_failures.get(),
                crashes: self.fault_crashes.get(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_counts_and_buckets_what_it_is_told() {
        let recorder = ShardRecorder::new(3);
        recorder.record_admitted(2, false);
        recorder.record_admitted(5, true);
        recorder.record_run(100, 400, RunKind::Completed);
        recorder.record_run(50, 10, RunKind::CancelledInFlight);
        recorder.record_run(1, 1, RunKind::Panicked);
        recorder.record_displaced();
        recorder.record_expired_in_queue();
        recorder.record_rejected_shed();
        recorder.record_drained(4);
        recorder.record_retirement(7);
        recorder.record_epoch_closed();
        recorder.record_faults(&FaultCounters {
            ops: 10,
            delays: 2,
            delay_micros: 30,
            collect_failures: 1,
            crashes: 0,
        });

        let snap = recorder.snapshot(1);
        assert_eq!(snap.shard, 3);
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.blocked_submitters, 1);
        assert_eq!(snap.queue_high_water, 5);
        assert_eq!(snap.queue_depth, 1);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.cancelled_in_flight, 1);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.failed(), 2);
        assert_eq!(snap.shed(), 2, "displaced + expired-in-queue");
        assert_eq!(snap.rejected(), 1);
        assert_eq!(snap.drained, 4);
        assert_eq!(snap.retired, 1);
        assert_eq!(snap.epochs_closed, 1);
        assert_eq!(snap.queue_wait_micros.count(), 3);
        assert_eq!(snap.run_micros.count(), 3);
        assert_eq!(snap.retirement_lag.max(), 7);
        assert_eq!(snap.faults.ops, 10);
        assert_eq!(snap.depth_on_admit.max(), 5);
    }

    #[test]
    fn watermark_only_rises() {
        let mark = Watermark::default();
        mark.observe(3);
        mark.observe(1);
        assert_eq!(mark.get(), 3);
        mark.observe(9);
        assert_eq!(mark.get(), 9);
    }
}
