//! Frozen, mergeable views of the recorders: snapshots, reports, JSON.
//!
//! A [`ShardSnapshot`] is one shard's metrics at a point in time; a
//! [`MetricsSnapshot`] is the whole service's. Both are plain owned data —
//! merging is counter addition, high-water max, and bucket-wise histogram
//! addition, so snapshots taken from different shards (or different runs of
//! the same experiment) compose without losing quantile fidelity.
//!
//! [`MetricsSnapshot::attribution_report`] renders the per-shard table the
//! storm example and the overload sweep print: which shard was slowest,
//! which queue ran deepest, and how admission wait compares to run time.
//! [`MetricsSnapshot::to_json`] emits the `metrics` section of
//! `BENCH_service.json`. The JSON deliberately never uses a bare
//! `"shards":` key — the bench result parser keys on that exact string to
//! find recorded throughput lines, so per-shard entries use `"shard"` and
//! the count is `"worker_shards"`.

use crate::hist::LogHistogram;

/// Fault-injection counters attributed to one shard (mirrors the runtime's
/// `FaultStats`, kept as plain integers so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Register operations that passed through a faulty memory.
    pub ops: u64,
    /// Operations that were artificially delayed.
    pub delays: u64,
    /// Total injected delay, microseconds.
    pub delay_micros: u64,
    /// Collects that returned a stale/failed view.
    pub collect_failures: u64,
    /// Simulated process crashes.
    pub crashes: u64,
}

impl FaultCounters {
    /// Add `other`'s counts into `self`.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.ops += other.ops;
        self.delays += other.delays;
        self.delay_micros += other.delay_micros;
        self.collect_failures += other.collect_failures;
        self.crashes += other.crashes;
    }

    /// Whether no fault activity was recorded at all.
    pub fn is_zero(&self) -> bool {
        *self == FaultCounters::default()
    }
}

/// One shard's frozen metrics.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Which shard this describes (meaningless after cross-shard merges).
    pub shard: usize,
    /// Jobs admitted to the shard queue.
    pub admitted: u64,
    /// Submitters that had to park for queue space (block policy).
    pub blocked_submitters: u64,
    /// Queued jobs displaced by newer ones (drop-oldest policy).
    pub displaced: u64,
    /// Submissions refused at the door (shed policy).
    pub rejected_shed: u64,
    /// Submissions refused after a block timeout expired.
    pub rejected_block_timeout: u64,
    /// Dequeued jobs whose deadline had already passed (never started).
    pub expired_in_queue: u64,
    /// Runs that completed.
    pub completed: u64,
    /// Runs cancelled in flight by their deadline.
    pub cancelled_in_flight: u64,
    /// Runs that panicked (contained by the worker).
    pub panics: u64,
    /// Queued jobs failed by shutdown before starting.
    pub drained: u64,
    /// Records + registers purged by epoch retirement.
    pub retired: u64,
    /// Epochs closed.
    pub epochs_closed: u64,
    /// Queue depth at snapshot time (summed across shards by merges).
    pub queue_depth: usize,
    /// Deepest the queue ever got (max across shards by merges).
    pub queue_high_water: usize,
    /// Queue depth observed at each admission.
    pub depth_on_admit: LogHistogram,
    /// Submit-to-dequeue wait of every started run, microseconds.
    pub queue_wait_micros: LogHistogram,
    /// Dequeue-to-resolution run time of every started run, microseconds.
    pub run_micros: LogHistogram,
    /// Terminal events between an instance finishing and its purge.
    pub retirement_lag: LogHistogram,
    /// Fault-injection activity attributed to this shard.
    pub faults: FaultCounters,
}

impl ShardSnapshot {
    /// An all-zero snapshot for shard `shard` (merge identity).
    pub fn empty(shard: usize) -> Self {
        ShardSnapshot {
            shard,
            admitted: 0,
            blocked_submitters: 0,
            displaced: 0,
            rejected_shed: 0,
            rejected_block_timeout: 0,
            expired_in_queue: 0,
            completed: 0,
            cancelled_in_flight: 0,
            panics: 0,
            drained: 0,
            retired: 0,
            epochs_closed: 0,
            queue_depth: 0,
            queue_high_water: 0,
            depth_on_admit: LogHistogram::new(),
            queue_wait_micros: LogHistogram::new(),
            run_micros: LogHistogram::new(),
            retirement_lag: LogHistogram::new(),
            faults: FaultCounters::default(),
        }
    }

    /// Fold `other` into `self`: counters add, depths sum, high-water takes
    /// the max, histograms merge bucket-wise.
    pub fn merge(&mut self, other: &ShardSnapshot) {
        self.admitted += other.admitted;
        self.blocked_submitters += other.blocked_submitters;
        self.displaced += other.displaced;
        self.rejected_shed += other.rejected_shed;
        self.rejected_block_timeout += other.rejected_block_timeout;
        self.expired_in_queue += other.expired_in_queue;
        self.completed += other.completed;
        self.cancelled_in_flight += other.cancelled_in_flight;
        self.panics += other.panics;
        self.drained += other.drained;
        self.retired += other.retired;
        self.epochs_closed += other.epochs_closed;
        self.queue_depth += other.queue_depth;
        self.queue_high_water = self.queue_high_water.max(other.queue_high_water);
        self.depth_on_admit.merge(&other.depth_on_admit);
        self.queue_wait_micros.merge(&other.queue_wait_micros);
        self.run_micros.merge(&other.run_micros);
        self.retirement_lag.merge(&other.retirement_lag);
        self.faults.merge(&other.faults);
    }

    /// Runs that ended in failure (cancelled in flight or panicked).
    pub fn failed(&self) -> u64 {
        self.cancelled_in_flight + self.panics
    }

    /// Admitted jobs shed before running (displaced or expired in queue).
    pub fn shed(&self) -> u64 {
        self.displaced + self.expired_in_queue
    }

    /// Submissions refused at the door, by either policy.
    pub fn rejected(&self) -> u64 {
        self.rejected_shed + self.rejected_block_timeout
    }

    /// Runs that actually started (completed or failed).
    pub fn started(&self) -> u64 {
        self.completed + self.failed()
    }

    /// Mean admission wait divided by mean run time — above 1.0, instances
    /// spent longer queued than running and the shard is the bottleneck.
    pub fn wait_run_ratio(&self) -> f64 {
        let run = self.run_micros.mean();
        if run <= 0.0 {
            0.0
        } else {
            self.queue_wait_micros.mean() / run
        }
    }
}

/// Compact summary of one histogram for reports and JSON.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSummary {
    /// Sample count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (bucket upper bound, ≤ 1.6 % high).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistogramSummary {
    /// Summarize `hist`.
    pub fn of(hist: &LogHistogram) -> Self {
        HistogramSummary {
            count: hist.count(),
            mean: hist.mean(),
            p50: hist.value_at_quantile(0.5),
            p95: hist.value_at_quantile(0.95),
            p99: hist.value_at_quantile(0.99),
            max: hist.max(),
        }
    }

    /// Render as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean\": {:.2}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// The whole service's metrics: one [`ShardSnapshot`] per worker shard.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Per-shard snapshots, indexed by shard id.
    pub per_shard: Vec<ShardSnapshot>,
}

impl MetricsSnapshot {
    /// Fold every shard into one aggregate snapshot (shard id 0 by
    /// convention; depths sum, high-water is the max across shards).
    pub fn aggregate(&self) -> ShardSnapshot {
        let mut total = ShardSnapshot::empty(0);
        for shard in &self.per_shard {
            total.merge(shard);
        }
        total
    }

    /// Merge another whole-service snapshot shard-by-shard (e.g. the same
    /// experiment repeated); shard counts must match.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        assert_eq!(
            self.per_shard.len(),
            other.per_shard.len(),
            "cannot merge snapshots with different shard counts"
        );
        for (mine, theirs) in self.per_shard.iter_mut().zip(other.per_shard.iter()) {
            mine.merge(theirs);
        }
    }

    /// The per-shard attribution table: where time went, shard by shard,
    /// then the three headline attributions (slowest shard by run p99,
    /// deepest queue by high-water, aggregate wait:run ratio).
    pub fn attribution_report(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "shard  admitted  done  fail  shed  rej  hiwater  wait p50/p99 us  run p50/p99 us  wait:run\n",
        );
        for s in &self.per_shard {
            let wait = HistogramSummary::of(&s.queue_wait_micros);
            let run = HistogramSummary::of(&s.run_micros);
            out.push_str(&format!(
                "{:>5}  {:>8}  {:>4}  {:>4}  {:>4}  {:>3}  {:>7}  {:>7}/{:<7}  {:>6}/{:<7}  {:>8.2}\n",
                s.shard,
                s.admitted,
                s.completed,
                s.failed(),
                s.shed(),
                s.rejected(),
                s.queue_high_water,
                wait.p50,
                wait.p99,
                run.p50,
                run.p99,
                s.wait_run_ratio(),
            ));
        }
        let slowest = self
            .per_shard
            .iter()
            .max_by_key(|s| s.run_micros.value_at_quantile(0.99));
        let deepest = self.per_shard.iter().max_by_key(|s| s.queue_high_water);
        if let Some(s) = slowest {
            out.push_str(&format!(
                "slowest shard: {} (run p99 {} us)\n",
                s.shard,
                s.run_micros.value_at_quantile(0.99)
            ));
        }
        if let Some(s) = deepest {
            out.push_str(&format!(
                "deepest queue: shard {} (high-water {})\n",
                s.shard, s.queue_high_water
            ));
        }
        let total = self.aggregate();
        out.push_str(&format!(
            "aggregate wait:run ratio: {:.2} (mean wait {:.0} us, mean run {:.0} us)\n",
            total.wait_run_ratio(),
            total.queue_wait_micros.mean(),
            total.run_micros.mean(),
        ));
        out
    }

    /// Render the snapshot as a JSON object, each line prefixed by
    /// `indent`. Uses `"shard"`/`"worker_shards"` keys — never a bare
    /// `"shards":`, which the bench result parser treats as a throughput
    /// line marker.
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!(
            "{indent}  \"worker_shards\": {},\n",
            self.per_shard.len()
        ));
        out.push_str(&format!("{indent}  \"per_shard\": [\n"));
        for (i, s) in self.per_shard.iter().enumerate() {
            let comma = if i + 1 == self.per_shard.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!("{indent}    {}{comma}\n", shard_json_line(s)));
        }
        out.push_str(&format!("{indent}  ],\n"));
        out.push_str(&format!(
            "{indent}  \"aggregate\": {}\n",
            shard_json_line(&self.aggregate())
        ));
        out.push_str(&format!("{indent}}}"));
        out
    }
}

/// One shard snapshot as a single-line JSON object.
fn shard_json_line(s: &ShardSnapshot) -> String {
    let mut fields = vec![
        format!("\"shard\": {}", s.shard),
        format!("\"admitted\": {}", s.admitted),
        format!("\"completed\": {}", s.completed),
        format!("\"cancelled_in_flight\": {}", s.cancelled_in_flight),
        format!("\"panics\": {}", s.panics),
        format!("\"displaced\": {}", s.displaced),
        format!("\"expired_in_queue\": {}", s.expired_in_queue),
        format!("\"rejected_shed\": {}", s.rejected_shed),
        format!("\"rejected_block_timeout\": {}", s.rejected_block_timeout),
        format!("\"blocked_submitters\": {}", s.blocked_submitters),
        format!("\"drained\": {}", s.drained),
        format!("\"retired\": {}", s.retired),
        format!("\"epochs_closed\": {}", s.epochs_closed),
        format!("\"queue_depth\": {}", s.queue_depth),
        format!("\"queue_high_water\": {}", s.queue_high_water),
        format!(
            "\"queue_wait_micros\": {}",
            HistogramSummary::of(&s.queue_wait_micros).to_json()
        ),
        format!(
            "\"run_micros\": {}",
            HistogramSummary::of(&s.run_micros).to_json()
        ),
        format!(
            "\"retirement_lag\": {}",
            HistogramSummary::of(&s.retirement_lag).to_json()
        ),
        format!("\"wait_run_ratio\": {:.4}", s.wait_run_ratio()),
    ];
    if !s.faults.is_zero() {
        fields.push(format!(
            "\"faults\": {{\"ops\": {}, \"delays\": {}, \"delay_micros\": {}, \"collect_failures\": {}, \"crashes\": {}}}",
            s.faults.ops, s.faults.delays, s.faults.delay_micros, s.faults.collect_failures, s.faults.crashes
        ));
    }
    format!("{{{}}}", fields.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_shard(shard: usize, scale: u64) -> ShardSnapshot {
        let mut s = ShardSnapshot::empty(shard);
        s.admitted = 10 * scale;
        s.completed = 8 * scale;
        s.cancelled_in_flight = scale;
        s.panics = scale;
        s.displaced = 2 * scale;
        s.rejected_shed = 3 * scale;
        s.queue_depth = 2;
        s.queue_high_water = 4 * scale as usize;
        for i in 0..10 * scale {
            s.queue_wait_micros.record(100 * scale + i);
            s.run_micros.record(50 + i);
            s.depth_on_admit.record(i % 5);
        }
        s.retired = 8 * scale;
        for _ in 0..8 * scale {
            s.retirement_lag.record(scale);
        }
        s
    }

    #[test]
    fn merge_sums_counters_and_maxes_high_water() {
        let mut a = sample_shard(0, 1);
        let b = sample_shard(1, 3);
        a.merge(&b);
        assert_eq!(a.admitted, 40);
        assert_eq!(a.completed, 32);
        assert_eq!(a.failed(), 8);
        assert_eq!(a.shed(), 8);
        assert_eq!(a.rejected(), 12);
        assert_eq!(a.queue_depth, 4);
        assert_eq!(a.queue_high_water, 12);
        assert_eq!(a.queue_wait_micros.count(), 40);
    }

    #[test]
    fn aggregate_equals_pairwise_merge() {
        let snapshot = MetricsSnapshot {
            per_shard: vec![sample_shard(0, 1), sample_shard(1, 2), sample_shard(2, 5)],
        };
        let total = snapshot.aggregate();
        assert_eq!(total.admitted, 10 + 20 + 50);
        assert_eq!(total.started(), total.completed + total.failed());
        assert_eq!(total.queue_high_water, 20);
        assert_eq!(
            total.run_micros.count(),
            snapshot
                .per_shard
                .iter()
                .map(|s| s.run_micros.count())
                .sum::<u64>()
        );
    }

    #[test]
    fn wait_run_ratio_flags_queue_bound_shards() {
        let mut s = ShardSnapshot::empty(0);
        for _ in 0..100 {
            s.queue_wait_micros.record(1000);
            s.run_micros.record(100);
        }
        assert!(s.wait_run_ratio() > 5.0, "waits dominate runs");
        let idle = ShardSnapshot::empty(1);
        assert_eq!(idle.wait_run_ratio(), 0.0, "no runs → ratio 0, not NaN");
    }

    #[test]
    fn attribution_report_names_slowest_and_deepest() {
        let mut slow = sample_shard(2, 1);
        for _ in 0..50 {
            slow.run_micros.record(1_000_000);
        }
        slow.queue_high_water = 1;
        let mut deep = sample_shard(1, 1);
        deep.queue_high_water = 999;
        let snapshot = MetricsSnapshot {
            per_shard: vec![sample_shard(0, 1), deep, slow],
        };
        let report = snapshot.attribution_report();
        assert!(report.contains("slowest shard: 2"), "{report}");
        assert!(
            report.contains("deepest queue: shard 1 (high-water 999)"),
            "{report}"
        );
        assert!(report.contains("aggregate wait:run ratio"), "{report}");
    }

    #[test]
    fn json_never_emits_a_bare_shards_key() {
        let snapshot = MetricsSnapshot {
            per_shard: vec![sample_shard(0, 1), sample_shard(1, 2)],
        };
        let json = snapshot.to_json("  ");
        assert!(
            !json.contains("\"shards\":"),
            "parser-reserved key leaked: {json}"
        );
        assert!(json.contains("\"worker_shards\": 2"));
        assert!(json.contains("\"per_shard\": ["));
        assert!(json.contains("\"aggregate\": {"));
        assert!(json.contains("\"wait_run_ratio\""));
    }

    #[test]
    fn json_omits_fault_counters_when_zero_and_keeps_them_when_not() {
        let clean = sample_shard(0, 1);
        assert!(!shard_json_line(&clean).contains("\"faults\""));
        let mut faulty = sample_shard(0, 1);
        faulty.faults.ops = 7;
        faulty.faults.crashes = 1;
        let line = shard_json_line(&faulty);
        assert!(line.contains("\"faults\": {\"ops\": 7"), "{line}");
        assert!(line.contains("\"crashes\": 1"), "{line}");
    }

    #[test]
    fn whole_snapshot_merge_is_shard_wise() {
        let mut first = MetricsSnapshot {
            per_shard: vec![sample_shard(0, 1), sample_shard(1, 1)],
        };
        let second = MetricsSnapshot {
            per_shard: vec![sample_shard(0, 2), sample_shard(1, 2)],
        };
        first.merge(&second);
        assert_eq!(first.per_shard[0].admitted, 30);
        assert_eq!(first.per_shard[1].admitted, 30);
    }
}
