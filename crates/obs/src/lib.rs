//! Always-on observability for the leader-election service.
//!
//! `fle-obs` is the shared metrics home the service and bench layers both
//! lean on, split into three pieces:
//!
//! * [`hist`] — the fixed-footprint, mergeable [`LogHistogram`] (promoted
//!   here from `fle-bench` so the service's recorders and the bench's load
//!   generators share one percentile engine);
//! * [`recorder`] — the hot-path side: [`ShardRecorder`], lock-cheap
//!   counters/gauges/histograms one service shard writes into while it
//!   runs;
//! * [`snapshot`] — the cold-path side: [`ShardSnapshot`] and
//!   [`MetricsSnapshot`], frozen mergeable views with the attribution
//!   report and the `BENCH_service.json` serialization.
//!
//! The crate has no dependencies (not even the workspace shims) and no
//! notion of elections: it counts what it is told and buckets what it is
//! handed, so any layer can use it without dragging in the runtime. The
//! overhead budget is a few relaxed atomic RMWs plus one uncontended mutex
//! acquisition per instance — the CI `metrics-smoke` job gates that the
//! instrumented service smoke stays within noise of the uninstrumented
//! one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod recorder;
pub mod snapshot;

pub use hist::LogHistogram;
pub use recorder::{Counter, RunKind, ShardRecorder, Watermark};
pub use snapshot::{FaultCounters, HistogramSummary, MetricsSnapshot, ShardSnapshot};
