//! A fixed-footprint log-scaled latency histogram (HDR-style).
//!
//! The load generators used to keep every observed latency in a `Vec` and
//! sort it for percentiles — O(n) memory and an O(n log n) sort per report,
//! which is exactly what an overload benchmark (millions of samples) cannot
//! afford. [`LogHistogram`] replaces that with a fixed array of buckets:
//!
//! * values `0..64` land in **exact** unit buckets;
//! * larger values land in one of 64 sub-buckets per power-of-two *octave*
//!   (the 6 bits below the leading bit), so every bucket's width is at most
//!   `1/64` ≈ 1.6 % of its value — tail quantiles stay sharp at any scale.
//!
//! Recording is O(1) with no allocation, merging is bucket-wise addition,
//! and the whole histogram is ~30 KiB regardless of sample count. Exact
//! minimum and maximum are tracked on the side so `value_at_quantile(0.0)` /
//! `(1.0)` are exact, and interior quantiles report their bucket's upper
//! bound (a ≤ 1.6 % overestimate — conservative for latency SLOs).
//!
//! The histogram lives here (rather than in `fle-bench`, where it started)
//! because it is the shared percentile engine of the observability layer:
//! the service's per-shard recorders ([`crate::ShardRecorder`]) and the
//! bench load generators aggregate into the *same* type, so a snapshot
//! merged out of the service and a latency profile measured by the bench
//! agree on quantile semantics by construction.

/// Exact unit buckets for values below `1 << PRECISION_BITS`.
const PRECISION_BITS: u32 = 6;
/// Sub-buckets per octave (and the count of exact buckets).
const SUBS: usize = 1 << PRECISION_BITS;
/// Octaves covering the rest of the `u64` range.
const OCTAVES: usize = (u64::BITS - PRECISION_BITS) as usize;
/// Total bucket count: 64 exact + 58 octaves × 64 sub-buckets.
const BUCKETS: usize = SUBS + OCTAVES * SUBS;

/// A log-scaled histogram of `u64` samples (latencies in microseconds,
/// depths, counts — any nonnegative measure).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

fn bucket_index(value: u64) -> usize {
    if value < SUBS as u64 {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let octave = (msb - PRECISION_BITS) as usize;
    let sub = ((value >> (msb - PRECISION_BITS)) as usize) - SUBS;
    SUBS + octave * SUBS + sub
}

/// The largest value that lands in `index` (inclusive upper bound).
fn bucket_high(index: usize) -> u64 {
    if index < SUBS {
        return index as u64;
    }
    let octave = ((index - SUBS) / SUBS) as u32;
    let sub = ((index - SUBS) % SUBS) as u64;
    let low = (SUBS as u64 + sub) << octave;
    low + ((1u64 << octave) - 1)
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("the vector is constructed with exactly BUCKETS entries"),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample. O(1), no allocation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The value at quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the `⌈q·count⌉`-th smallest sample, clamped to the exact
    /// observed `[min, max]`. Within 1/64 ≈ 1.6 % of the true order
    /// statistic; 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_high(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Add every sample of `other` into `self` (bucket-wise).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64, inlined so the histogram crate stays dependency-free.
    fn mix(i: u64) -> u64 {
        let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The exact order statistic the histogram approximates.
    fn reference_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn bucket_geometry_is_consistent() {
        // Every bucket's inclusive upper bound maps back to that bucket, and
        // the value one past it maps to a later bucket.
        for index in 0..BUCKETS {
            let high = bucket_high(index);
            assert_eq!(bucket_index(high), index, "high of bucket {index}");
            if let Some(next) = high.checked_add(1) {
                assert!(bucket_index(next) > index, "bucket {index} is maximal");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let mut hist = LogHistogram::new();
        for v in 0..64u64 {
            hist.record(v);
        }
        for (i, q) in (1..=64).map(|i| (i, i as f64 / 64.0)) {
            assert_eq!(hist.value_at_quantile(q), i as u64 - 1);
        }
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 63);
    }

    #[test]
    fn quantiles_track_the_sorted_reference_within_two_percent() {
        // A skewed latency-like distribution spanning five orders of
        // magnitude.
        let mut samples: Vec<u64> = (0..10_000u64)
            .map(|i| {
                let base = mix(i) % 1000;
                let spike = if i % 97 == 0 { 250_000 } else { 0 };
                50 + base * base / 10 + spike
            })
            .collect();
        let mut hist = LogHistogram::new();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 0.999, 1.0] {
            let exact = reference_quantile(&samples, q);
            let approx = hist.value_at_quantile(q);
            assert!(
                approx >= exact,
                "q={q}: bucket upper bound {approx} below exact {exact}"
            );
            let error = (approx - exact) as f64 / exact.max(1) as f64;
            assert!(error <= 0.02, "q={q}: {approx} vs {exact} ({error:.4})");
        }
        assert_eq!(hist.count(), 10_000);
        assert_eq!(hist.max(), *samples.last().unwrap());
        assert_eq!(hist.min(), samples[0]);
    }

    #[test]
    fn extreme_quantiles_are_the_exact_min_and_max() {
        let mut hist = LogHistogram::new();
        for v in [3, 17, 40_000, 1_000_000_007] {
            hist.record(v);
        }
        assert_eq!(hist.value_at_quantile(0.0), 3);
        assert_eq!(hist.value_at_quantile(1.0), 1_000_000_007);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        let mut both = LogHistogram::new();
        for i in 0..1000u64 {
            let v = mix(i) % 100_000;
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
            both.record(v);
        }
        left.merge(&right);
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(left.value_at_quantile(q), both.value_at_quantile(q));
        }
        assert_eq!(left.count(), both.count());
        assert_eq!(left.mean(), both.mean());
        assert_eq!(left.min(), both.min());
        assert_eq!(left.max(), both.max());
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let hist = LogHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.value_at_quantile(0.5), 0);
        assert_eq!(hist.min(), 0);
        assert_eq!(hist.max(), 0);
        assert_eq!(hist.mean(), 0.0);
    }
}
