//! Plain-text table and CSV rendering for the experiment drivers.

use std::fmt::Write as _;

/// A simple column-aligned table that can also render itself as CSV.
///
/// # Example
/// ```
/// use fle_analysis::Table;
/// let mut table = Table::new(["n", "survivors"]);
/// table.add_row(["16", "3.5"]);
/// let text = table.render();
/// assert!(text.contains("survivors"));
/// assert!(table.to_csv().starts_with("n,survivors"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn add_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a column-aligned plain-text table (the format used in
    /// EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (index, cell) in cells.iter().enumerate() {
                if index > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[index]);
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }

    /// Render as CSV (comma-separated, one line per row, header first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut table = Table::new(["n", "mean survivors", "theory √n"]);
        table.add_row(["16", "3.20", "4.00"]);
        table.add_row(["4096", "61.70", "64.00"]);
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("mean survivors"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("4096"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut table = Table::new(["a", "b"]);
        table.add_row(["1"]);
        table.add_row(["1", "2", "3"]);
        assert!(table.render().contains('1'));
        let csv = table.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().nth(2).unwrap(), "1,2");
    }

    #[test]
    fn csv_escapes_special_characters() {
        let mut table = Table::new(["label", "value"]);
        table.add_row(["with, comma", "with \"quote\""]);
        let csv = table.to_csv();
        assert!(csv.contains("\"with, comma\""));
        assert!(csv.contains("\"with \"\"quote\"\"\""));
    }
}
