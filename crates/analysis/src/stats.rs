//! Summary statistics over repeated trials.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
///
/// # Example
/// ```
/// use fle_analysis::Summary;
/// let s = Summary::of([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    /// Summarise an iterator of samples.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Self {
        let mut values: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Summary { values }
    }

    /// Summarise integer counts.
    pub fn of_counts(values: impl IntoIterator<Item = u64>) -> Self {
        Self::of(values.into_iter().map(|v| v as f64))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Sample standard deviation (0 for fewer than two samples).
    pub fn std_dev(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        var.sqrt()
    }

    /// Half-width of the 95% confidence interval for the mean (normal
    /// approximation).
    pub fn ci95_half_width(&self) -> f64 {
        if self.values.len() < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.values.len() as f64).sqrt()
    }

    /// Smallest sample (0 for an empty sample).
    pub fn min(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Largest sample (0 for an empty sample).
    pub fn max(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }

    /// The `q`-quantile (0 ≤ `q` ≤ 1) by nearest-rank, 0 for an empty sample.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.values.len() as f64 - 1.0) * q).round() as usize;
        self.values[rank.min(self.values.len() - 1)]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_deviation() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.138089935299395).abs() < 1e-9);
        assert!(s.ci95_half_width() > 0.0);
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let s = Summary::of_counts([9, 1, 5, 3, 7]);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 9.0);
    }

    #[test]
    fn empty_and_singleton_samples_are_safe() {
        let empty = Summary::of([]);
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.median(), 0.0);

        let single = Summary::of([42.0]);
        assert_eq!(single.mean(), 42.0);
        assert_eq!(single.std_dev(), 0.0);
        assert_eq!(single.ci95_half_width(), 0.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.mean(), 2.0);
    }
}
