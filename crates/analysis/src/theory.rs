//! Theoretical reference curves for the paper's complexity claims.

/// Base-2 logarithm of `n`, with `log2(0) = log2(1) = 0`.
pub fn log2(n: u64) -> f64 {
    if n <= 1 {
        0.0
    } else {
        (n as f64).log2()
    }
}

/// The iterated logarithm `log* n` (base 2): the number of times `log2` must
/// be applied before the value drops to at most 1.
///
/// # Example
/// ```
/// assert_eq!(fle_analysis::log_star(1), 0);
/// assert_eq!(fle_analysis::log_star(2), 1);
/// assert_eq!(fle_analysis::log_star(16), 3);
/// assert_eq!(fle_analysis::log_star(65536), 4);
/// ```
pub fn log_star(n: u64) -> u32 {
    let mut value = n as f64;
    let mut iterations = 0;
    while value > 1.0 {
        value = value.log2();
        iterations += 1;
        if iterations > 64 {
            break;
        }
    }
    iterations
}

/// `√n` — the survivor bound of the plain PoisonPill (Claim 3.2).
pub fn sqrt_curve(n: u64) -> f64 {
    (n as f64).sqrt()
}

/// `log² n` — the survivor bound of the heterogeneous PoisonPill
/// (Lemmas 3.6–3.7).
pub fn log_squared(n: u64) -> f64 {
    let l = log2(n);
    l * l
}

/// `k · n` — the message-complexity bound of the leader election
/// (Theorem A.5) and its Ω(kn) lower bound (Corollary B.3).
pub fn kn_curve(k: u64, n: u64) -> f64 {
    (k as f64) * (n as f64)
}

/// `n log n` — the shape of the tournament baseline's total message cost when
/// all `n` processors participate and climb Θ(log n) levels.
pub fn n_log_n(n: u64) -> f64 {
    (n as f64) * log2(n)
}

/// The lower-bound constant of Theorem B.2: at least `α·k·n / 16` messages.
pub fn lower_bound_messages(k: u64, n: u64) -> f64 {
    kn_curve(k, n) / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_reference_points() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(u64::MAX), 5);
    }

    #[test]
    fn curves_are_monotone() {
        for n in [2u64, 4, 16, 256, 1024] {
            assert!(sqrt_curve(n) < sqrt_curve(n * 2));
            assert!(log_squared(n) <= log_squared(n * 2));
            assert!(n_log_n(n) < n_log_n(n * 2));
        }
        assert_eq!(log2(1), 0.0);
        assert_eq!(log2(8), 3.0);
    }

    #[test]
    fn sqrt_eventually_dominates_log_squared() {
        // The whole point of the heterogeneous sift: log² n ≪ √n for large n.
        assert!(log_squared(1 << 20) < sqrt_curve(1 << 20));
    }

    #[test]
    fn lower_bound_scales_with_k_and_n() {
        assert_eq!(lower_bound_messages(4, 8), 2.0);
        assert!(lower_bound_messages(8, 8) > lower_bound_messages(4, 8));
        assert_eq!(kn_curve(3, 5), 15.0);
    }
}
