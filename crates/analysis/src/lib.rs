//! Statistics, theoretical reference curves and table rendering for the
//! experiment harness.
//!
//! The experiments compare *measured* quantities (survivors per sifting
//! phase, communicate calls per processor, total messages) against the
//! paper's *asymptotic claims* (√n, log² n, log\* n, k·n, ...). This crate
//! provides:
//!
//! * [`Summary`] — streaming summary statistics (mean, standard deviation,
//!   95% confidence interval, min/max, percentiles),
//! * [`theory`] — the reference curves the claims are checked against
//!   (iterated logarithm, log², √n, linear, n log n),
//! * [`table`] — plain-text table and CSV rendering used by the experiment
//!   drivers so EXPERIMENTS.md can be regenerated verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;
pub mod table;
pub mod theory;

pub use stats::Summary;
pub use table::Table;
pub use theory::{log2, log_star, sqrt_curve};
