//! E2 — survivors of the Heterogeneous PoisonPill phase (Lemmas 3.6/3.7).
fn main() {
    println!("E2: Heterogeneous PoisonPill survivors per phase\n");
    println!(
        "{}",
        fle_bench::e2_het_survivors(&[16, 32, 64, 128], 5).render()
    );
}
