//! E2 — survivors of the Heterogeneous PoisonPill phase (Lemmas 3.6/3.7).
fn main() {
    let title = "E2: Heterogeneous PoisonPill survivors per phase";
    println!("{title}\n");
    let table = fle_bench::e2_het_survivors(&[16, 32, 64, 128], 5);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E2", title, &table);
}
