//! Record the service-throughput baseline (`BENCH_service.json`) or run the
//! CI service-smoke gate.
//!
//! * `cargo run --release -p fle-bench --bin bench_service` — sweep the
//!   concurrent backend at shard counts {1, 4, num_cpus} (2000 four-processor
//!   elections each, closed loop) and write `BENCH_service.json`.
//! * `cargo run --release -p fle-bench --bin bench_service -- --smoke` — run
//!   1000 concurrent instances with correctness assertions (zero lost or
//!   duplicate outcomes, exactly one winner each) and gate on a >3x
//!   throughput regression against the recording.

use fle_bench::service_load;

fn main() {
    let smoke = std::env::args().any(|arg| arg == "--smoke");
    if smoke {
        match service_load::smoke_check() {
            Ok((measured, recorded)) => {
                println!(
                    "service-smoke OK: {} instances across {} shards, measured {measured:.0} \
                     instances/s (recorded {recorded:.0}), all outcomes verified",
                    service_load::SMOKE_INSTANCES,
                    service_load::SMOKE_SHARDS,
                );
            }
            Err(message) => {
                eprintln!("service-smoke FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("recording service throughput into BENCH_service.json ...");
    let points = service_load::record_default();
    println!(
        "{:>8} {:>7} {:>10} {:>16} {:>12} {:>12} {:>12}",
        "backend", "shards", "instances", "instances/sec", "p50 us", "p95 us", "p99 us"
    );
    for p in &points {
        println!(
            "{:>8} {:>7} {:>10} {:>16.1} {:>12} {:>12} {:>12}",
            p.spec.backend.label(),
            p.spec.shards,
            p.spec.instances,
            p.instances_per_sec,
            p.p50_micros,
            p.p95_micros,
            p.p99_micros,
        );
    }
}
