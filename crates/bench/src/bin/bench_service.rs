//! Record the service-throughput baseline (`BENCH_service.json`) or run the
//! CI service gates.
//!
//! * `cargo run --release -p fle-bench --bin bench_service` — sweep the
//!   concurrent backend at shard counts {1, 4, num_cpus} (2000 four-processor
//!   elections each, closed loop) plus an overload sweep at multiples of the
//!   sustainable rate, and write `BENCH_service.json`.
//! * `-- --smoke` — run 1000 concurrent instances with correctness
//!   assertions (zero lost or duplicate outcomes, exactly one winner each)
//!   and gate on a >3x throughput regression against the recording.
//! * `-- --overload-smoke` — offer 2x the sustainable rate under the shed
//!   policy and gate on the overload properties: nonzero shed, bounded queue
//!   depth, intact admitted work, balanced accounting, goodput holding up.
//! * `-- --metrics-smoke` — run the same storm with per-shard metrics on and
//!   off; assert the snapshot invariants (per-shard sums equal the aggregate
//!   stats, every instance attributed) and gate on recorder overhead.
//! * `-- --async-smoke` — the density gate for the task-multiplexed backend:
//!   submit thousands of executor instances before awaiting any (peak
//!   in-flight must clear the floor, zero lost/duplicate outcomes), then run
//!   the closed-loop smoke storm on `BackendKind::Async` with the full
//!   correctness assertions.

use fle_bench::service_load;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|arg| arg == "--smoke") {
        match service_load::smoke_check() {
            Ok((measured, recorded)) => {
                println!(
                    "service-smoke OK: {} instances across {} shards, measured {measured:.0} \
                     instances/s (recorded {recorded:.0}), all outcomes verified",
                    service_load::SMOKE_INSTANCES,
                    service_load::SMOKE_SHARDS,
                );
            }
            Err(message) => {
                eprintln!("service-smoke FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.iter().any(|arg| arg == "--overload-smoke") {
        match service_load::overload_smoke_check() {
            Ok((goodput, shed_fraction)) => {
                println!(
                    "overload-smoke OK: goodput {goodput:.0} instances/s at 2x offered load, \
                     shed fraction {shed_fraction:.2}, queues bounded, admitted work intact"
                );
            }
            Err(message) => {
                eprintln!("overload-smoke FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|arg| arg == "--async-smoke") {
        match service_load::async_smoke_check() {
            Ok((storm, service_per_sec)) => {
                println!(
                    "async-smoke OK: peak {} concurrent instances (n={}) over {} task workers \
                     ({:.0} instances/s executor-direct), service storm on the async backend \
                     at {service_per_sec:.0} instances/s, all outcomes verified",
                    storm.peak_in_flight, storm.n, storm.task_workers, storm.instances_per_sec,
                );
            }
            Err(message) => {
                eprintln!("async-smoke FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    if args.iter().any(|arg| arg == "--metrics-smoke") {
        match service_load::metrics_smoke_check() {
            Ok((with_metrics, without)) => {
                println!(
                    "metrics-smoke OK: {with_metrics:.0} instances/s with per-shard recorders \
                     vs {without:.0} without (floor {:.0}%), snapshot agreed with the \
                     aggregate stats",
                    service_load::METRICS_MIN_THROUGHPUT_FRACTION * 100.0
                );
            }
            Err(message) => {
                eprintln!("metrics-smoke FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("recording service throughput into BENCH_service.json ...");
    let recording = service_load::record_default();
    println!(
        "{:>10} {:>7} {:>5} {:>10} {:>16} {:>12} {:>12} {:>12}",
        "backend", "shards", "n", "instances", "instances/sec", "p50 us", "p95 us", "p99 us"
    );
    for p in recording.points.iter().chain(&recording.density) {
        println!(
            "{:>10} {:>7} {:>5} {:>10} {:>16.1} {:>12} {:>12} {:>12}",
            p.spec.backend.label(),
            p.spec.shards,
            p.spec.n,
            p.spec.instances,
            p.instances_per_sec,
            p.p50_micros,
            p.p95_micros,
            p.p99_micros,
        );
    }
    let storm = &recording.storm;
    println!(
        "executor storm: {} instances of n={} peaked at {} in flight over {} task workers \
         ({:.0} instances/s)",
        storm.instances, storm.n, storm.peak_in_flight, storm.task_workers, storm.instances_per_sec,
    );
}
