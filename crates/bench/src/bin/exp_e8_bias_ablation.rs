//! E8 — ablation: fixed coin biases vs the heterogeneous bias under the strong adversary.
fn main() {
    println!("E8: sifting bias ablation under coin-aware and sequential adversaries\n");
    println!("{}", fle_bench::e8_bias_ablation(&[64, 128], 5).render());
}
