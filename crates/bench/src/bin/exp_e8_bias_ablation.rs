//! E8 — ablation: fixed coin biases vs the heterogeneous bias under the strong adversary.
fn main() {
    let title = "E8: sifting bias ablation under coin-aware and sequential adversaries";
    println!("{title}\n");
    let table = fle_bench::e8_bias_ablation(&[64, 128], 5);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E8", title, &table);
}
