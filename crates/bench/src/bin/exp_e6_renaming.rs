//! E6 — renaming time and messages: paper's algorithm vs random-order baseline.
fn main() {
    let title = "E6: tight renaming, paper's algorithm vs random-order baseline";
    println!("{title}\n");
    let table = fle_bench::e6_renaming(&[4, 8, 16, 24], 3);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E6", title, &table);
}
