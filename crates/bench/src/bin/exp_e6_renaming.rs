//! E6 — renaming time and messages: paper's algorithm vs random-order baseline.
fn main() {
    println!("E6: tight renaming, paper's algorithm vs random-order baseline\n");
    println!("{}", fle_bench::e6_renaming(&[4, 8, 16, 24], 3).render());
}
