//! Record the simulator-throughput baseline: full leader elections at
//! n ∈ {16, 64, 256, 1024} in events/sec — production engine vs the retained
//! clone-payload and naive-scheduler reference modes — written to
//! `BENCH_baseline.json`.
//!
//! Run with `cargo run --release -p fle-bench --bin bench_baseline`.
//!
//! `--smoke` instead re-measures n = 64 with a single trial and exits
//! non-zero if events/s regressed more than 3x below the recorded baseline
//! *and* the same-run production-vs-naive ratio confirms it is a code
//! regression rather than a slower machine (the CI smoke-perf gate;
//! generous thresholds, loud not flaky).
//!
//! `--parallel` measures the partitioned-engine sweep (one giant k-of-n
//! election at n ∈ {4096, 65536, 262144}, partition counts {1, 2, num_cpus})
//! and splices a `parallel` section into `BENCH_baseline.json`, preserving
//! the recorded sequential points byte-for-byte.
//!
//! `--parallel-smoke` runs the CI parallel gate: an n = 4096 election at
//! p = 2 must match p = 1 exactly (outcomes, metrics, event count); the
//! measured efficiency is printed but never gates.

fn main() {
    if std::env::args().any(|arg| arg == "--parallel-smoke") {
        match fle_bench::parallel::parallel_smoke_check() {
            Ok((speedup, efficiency)) => {
                println!(
                    "parallel-smoke OK: p=2 report identical to p=1; \
                     speedup {speedup:.2}x, efficiency {efficiency:.2} (not gated)"
                );
            }
            Err(message) => {
                eprintln!("parallel-smoke FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }
    if std::env::args().any(|arg| arg == "--parallel") {
        println!("partitioned-engine throughput (canonical super-round schedule)\n");
        let points = fle_bench::parallel::measure_parallel_default();
        println!(
            "{:>8} {:>6} {:>10} {:>4} {:>16} {:>9} {:>11}",
            "n", "k", "events", "p", "events/s", "speedup", "efficiency"
        );
        for point in &points {
            for sample in &point.samples {
                println!(
                    "{:>8} {:>6} {:>10} {:>4} {:>16.0} {:>8.2}x {:>11.2}",
                    point.n,
                    point.k,
                    point.events,
                    sample.partitions,
                    sample.events_per_sec,
                    point.speedup(sample),
                    point.efficiency(sample),
                );
            }
        }
        fle_bench::parallel::record_parallel_preserving(
            &fle_bench::baseline::baseline_path(),
            &points,
        );
        return;
    }
    if std::env::args().any(|arg| arg == "--smoke") {
        match fle_bench::baseline::smoke_check() {
            Ok((measured, recorded)) => {
                println!(
                    "smoke-perf OK: n=64 measured {measured:.0} events/s \
                     (recorded baseline {recorded:.0})"
                );
            }
            Err(message) => {
                eprintln!("smoke-perf FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("election throughput baseline (identical schedules in every mode)\n");
    let points = fle_bench::baseline::record_default();
    println!(
        "{:>6} {:>9} {:>18} {:>22} {:>14} {:>9} {:>9}",
        "n",
        "events",
        "production (ev/s)",
        "clone payloads (ev/s)",
        "naive (ev/s)",
        "payload",
        "total"
    );
    for p in &points {
        println!(
            "{:>6} {:>9} {:>18.0} {:>22.0} {:>14} {:>8.2}x {:>9}",
            p.n,
            p.events,
            p.incremental_events_per_sec,
            p.clone_payload_events_per_sec,
            p.naive_events_per_sec
                .map_or("-".to_string(), |v| format!("{v:.0}")),
            p.payload_speedup(),
            p.speedup().map_or("-".to_string(), |v| format!("{v:.2}x")),
        );
    }
}
