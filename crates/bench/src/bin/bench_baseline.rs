//! Record the simulator-throughput baseline: full leader elections at
//! n ∈ {16, 64, 256} in events/sec, incremental scheduler vs the naive
//! rebuild-per-event scheduler, written to `BENCH_baseline.json`.
//!
//! Run with `cargo run --release -p fle-bench --bin bench_baseline`.

fn main() {
    println!("election throughput baseline (identical schedules in both modes)\n");
    let points = fle_bench::baseline::record_default();
    println!(
        "{:>6}  {:>10}  {:>22}  {:>22}  {:>8}",
        "n", "events", "incremental (ev/s)", "naive rebuild (ev/s)", "speedup"
    );
    for p in &points {
        println!(
            "{:>6}  {:>10}  {:>22.0}  {:>22.0}  {:>7.2}x",
            p.n,
            p.events,
            p.incremental_events_per_sec,
            p.naive_events_per_sec,
            p.speedup()
        );
    }
}
