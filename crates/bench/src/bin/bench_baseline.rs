//! Record the simulator-throughput baseline: full leader elections at
//! n ∈ {16, 64, 256, 1024} in events/sec — production engine vs the retained
//! clone-payload and naive-scheduler reference modes — written to
//! `BENCH_baseline.json`.
//!
//! Run with `cargo run --release -p fle-bench --bin bench_baseline`.
//!
//! `--smoke` instead re-measures n = 64 with a single trial and exits
//! non-zero if events/s regressed more than 3x below the recorded baseline
//! *and* the same-run production-vs-naive ratio confirms it is a code
//! regression rather than a slower machine (the CI smoke-perf gate;
//! generous thresholds, loud not flaky).

fn main() {
    if std::env::args().any(|arg| arg == "--smoke") {
        match fle_bench::baseline::smoke_check() {
            Ok((measured, recorded)) => {
                println!(
                    "smoke-perf OK: n=64 measured {measured:.0} events/s \
                     (recorded baseline {recorded:.0})"
                );
            }
            Err(message) => {
                eprintln!("smoke-perf FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("election throughput baseline (identical schedules in every mode)\n");
    let points = fle_bench::baseline::record_default();
    println!(
        "{:>6} {:>9} {:>18} {:>22} {:>14} {:>9} {:>9}",
        "n",
        "events",
        "production (ev/s)",
        "clone payloads (ev/s)",
        "naive (ev/s)",
        "payload",
        "total"
    );
    for p in &points {
        println!(
            "{:>6} {:>9} {:>18.0} {:>22.0} {:>14} {:>8.2}x {:>9}",
            p.n,
            p.events,
            p.incremental_events_per_sec,
            p.clone_payload_events_per_sec,
            p.naive_events_per_sec
                .map_or("-".to_string(), |v| format!("{v:.0}")),
            p.payload_speedup(),
            p.speedup().map_or("-".to_string(), |v| format!("{v:.2}x")),
        );
    }
}
