//! E3 — election time: O(log* k) PoisonPill election vs Θ(log n) tournament.
fn main() {
    println!("E3: leader election time (max communicate calls per processor)\n");
    println!(
        "{}",
        fle_bench::e3_election_time(&[4, 8, 16, 32, 64], 3).render()
    );
}
