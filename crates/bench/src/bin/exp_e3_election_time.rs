//! E3 — election time: O(log* k) PoisonPill election vs Θ(log n) tournament.
fn main() {
    let title = "E3: leader election time (max communicate calls per processor)";
    println!("{title}\n");
    let table = fle_bench::e3_election_time(&[4, 8, 16, 32, 64], 3);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E3", title, &table);
}
