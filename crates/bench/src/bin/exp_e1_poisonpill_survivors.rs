//! E1 — survivors of the plain PoisonPill phase (Claims 3.1/3.2, Section 3.2).
fn main() {
    println!("E1: plain PoisonPill survivors per phase (bias 1/sqrt(n))\n");
    println!(
        "{}",
        fle_bench::e1_poisonpill_survivors(&[16, 32, 64, 128], 5).render()
    );
}
