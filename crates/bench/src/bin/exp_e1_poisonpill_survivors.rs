//! E1 — survivors of the plain PoisonPill phase (Claims 3.1/3.2, Section 3.2).
fn main() {
    let title = "E1: plain PoisonPill survivors per phase (bias 1/sqrt(n))";
    println!("{title}\n");
    let table = fle_bench::e1_poisonpill_survivors(&[16, 32, 64, 128], 5);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E1", title, &table);
}
