//! E7 — the Ω(kn) message lower bound (Corollary B.3) as an empirical sanity check.
fn main() {
    let title = "E7: measured messages vs the kn/16 lower bound";
    println!("{title}\n");
    let table = fle_bench::e7_lower_bound_check(&[8, 16, 32, 48], 3);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E7", title, &table);
}
