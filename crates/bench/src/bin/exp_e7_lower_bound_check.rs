//! E7 — the Ω(kn) message lower bound (Corollary B.3) as an empirical sanity check.
fn main() {
    println!("E7: measured messages vs the kn/16 lower bound\n");
    println!(
        "{}",
        fle_bench::e7_lower_bound_check(&[8, 16, 32, 48], 3).render()
    );
}
