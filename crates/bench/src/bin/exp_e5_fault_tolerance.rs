//! E5 — fault tolerance and linearizability under ⌈n/2⌉−1 crashes.
fn main() {
    let title = "E5: crash tolerance and linearizability of the election";
    println!("{title}\n");
    let table = fle_bench::e5_fault_tolerance(&[5, 9, 17], 10);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E5", title, &table);
}
