//! E5 — fault tolerance and linearizability under ⌈n/2⌉−1 crashes.
fn main() {
    println!("E5: crash tolerance and linearizability of the election\n");
    println!(
        "{}",
        fle_bench::e5_fault_tolerance(&[5, 9, 17], 10).render()
    );
}
