//! E4 — message complexity vs the number of participants k (Theorem A.5).
fn main() {
    let title = "E4: message complexity at n = 64, k participants";
    println!("{title}\n");
    let table = fle_bench::e4_message_complexity(64, &[1, 2, 4, 8, 16, 32, 64], 3);
    println!("{}", table.render());
    fle_bench::json::write_table_document("E4", title, &table);
}
