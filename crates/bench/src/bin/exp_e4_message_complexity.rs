//! E4 — message complexity vs the number of participants k (Theorem A.5).
fn main() {
    println!("E4: message complexity at n = 64, k participants\n");
    println!(
        "{}",
        fle_bench::e4_message_complexity(64, &[1, 2, 4, 8, 16, 32, 64], 3).render()
    );
}
