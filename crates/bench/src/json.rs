//! Hand-rolled JSON emission for machine-readable experiment outputs.
//!
//! The workspace builds without registry access, so instead of `serde_json`
//! this module writes the small, flat documents the experiments need by
//! hand: `BENCH_<experiment>.json` files carrying a table (header + rows)
//! plus free-form metadata. See `EXPERIMENTS.md` for the schema.

use fle_analysis::Table;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Escape a string for inclusion in a JSON document.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(cells: &[String]) -> String {
    let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", escape(c))).collect();
    format!("[{}]", quoted.join(", "))
}

/// Render a table plus metadata as a JSON document.
pub fn table_document(experiment: &str, title: &str, table: &Table) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", escape(experiment));
    let _ = writeln!(out, "  \"title\": \"{}\",", escape(title));
    let _ = writeln!(out, "  \"header\": {},", string_array(table.header()));
    out.push_str("  \"rows\": [\n");
    for (index, row) in table.rows().iter().enumerate() {
        let comma = if index + 1 < table.rows().len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(out, "    {}{comma}", string_array(row));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render several named tables as one JSON document: `"sections"` maps each
/// section name to a `{header, rows}` object. Experiments with more than one
/// result shape (e.g. a growth curve plus a comparison table) emit a single
/// `BENCH_*.json` instead of scattering files.
pub fn multi_table_document(experiment: &str, title: &str, sections: &[(&str, &Table)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", escape(experiment));
    let _ = writeln!(out, "  \"title\": \"{}\",", escape(title));
    out.push_str("  \"sections\": {\n");
    for (index, (name, table)) in sections.iter().enumerate() {
        let _ = writeln!(out, "    \"{}\": {{", escape(name));
        let _ = writeln!(out, "      \"header\": {},", string_array(table.header()));
        out.push_str("      \"rows\": [\n");
        for (row_index, row) in table.rows().iter().enumerate() {
            let comma = if row_index + 1 < table.rows().len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(out, "        {}{comma}", string_array(row));
        }
        out.push_str("      ]\n");
        let comma = if index + 1 < sections.len() { "," } else { "" };
        let _ = writeln!(out, "    }}{comma}");
    }
    out.push_str("  }\n}\n");
    out
}

/// Write a multi-section document as `BENCH_<experiment>.json` (same IO
/// policy as [`write_table_document`]).
pub fn write_multi_table_document(
    experiment: &str,
    title: &str,
    sections: &[(&str, &Table)],
) -> PathBuf {
    let path = PathBuf::from(format!("BENCH_{experiment}.json"));
    write_or_warn(&path, &multi_table_document(experiment, title, sections));
    path
}

/// Write `BENCH_<experiment>.json` into the current directory and return its
/// path. IO failures are reported to stderr, not propagated — a missing
/// summary file must not abort a long experiment run.
pub fn write_table_document(experiment: &str, title: &str, table: &Table) -> PathBuf {
    let path = PathBuf::from(format!("BENCH_{experiment}.json"));
    write_or_warn(&path, &table_document(experiment, title, table));
    path
}

pub(crate) fn write_or_warn(path: &Path, contents: &str) {
    if let Err(error) = std::fs::write(path, contents) {
        eprintln!("warning: could not write {}: {error}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_wellformed_enough() {
        let mut table = Table::new(["n", "note"]);
        table.add_row(["16", "has \"quotes\" and\nnewline"]);
        let doc = table_document("E1", "survivors", &table);
        assert!(doc.contains("\"experiment\": \"E1\""));
        assert!(doc.contains("\\\"quotes\\\""));
        assert!(doc.contains("\\n"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn multi_table_documents_are_wellformed_enough() {
        let mut growth = Table::new(["episodes", "features"]);
        growth.add_row(["10", "42"]);
        let mut kills = Table::new(["mutant", "blind", "guided"]);
        kills.add_row(["drop-writes", "5", "2"]);
        let doc = multi_table_document(
            "coverage",
            "guided vs blind",
            &[("growth", &growth), ("kills", &kills)],
        );
        assert!(doc.contains("\"growth\""));
        assert!(doc.contains("\"kills\""));
        assert!(doc.contains("\"drop-writes\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("tab\there"), "tab\\there");
    }
}
