//! Multi-core fan-out of independent simulated executions.
//!
//! Every experiment in this crate repeats independent `(seed, n, adversary)`
//! executions and aggregates the results. [`BatchRunner`] distributes such
//! jobs across OS threads with a work-stealing index (scoped threads, no
//! external dependencies): results come back **in job order**, so the
//! deterministic per-seed results are bitwise independent of thread count
//! and scheduling — parallelism never changes an experiment's numbers, only
//! its wall-clock time.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fans independent jobs across threads and collects ordered results.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner using every available core.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchRunner { threads }
    }

    /// A runner with an explicit thread count (0 is clamped to 1).
    pub fn with_threads(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
        }
    }

    /// The number of worker threads this runner will spawn.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `job` to every element of `inputs` in parallel; results are
    /// returned in input order.
    ///
    /// # Panics
    /// Propagates a panic from any job (the batch is aborted).
    pub fn map<I, T, F>(&self, inputs: &[I], job: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        if inputs.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(inputs.len());
        if workers == 1 {
            return inputs.iter().map(job).collect();
        }
        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(inputs.len()));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= inputs.len() {
                            break;
                        }
                        local.push((index, job(&inputs[index])));
                    }
                    collected
                        .lock()
                        .expect("no poisoned lock without a panicking job")
                        .append(&mut local);
                });
            }
        });
        let mut results = collected
            .into_inner()
            .expect("all workers joined by scope exit");
        results.sort_by_key(|(index, _)| *index);
        results.into_iter().map(|(_, value)| value).collect()
    }

    /// Run `job` for every seed in `0..trials` in parallel, in seed order.
    pub fn map_seeds<T, F>(&self, trials: u64, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        let seeds: Vec<u64> = (0..trials).collect();
        self.map(&seeds, |&seed| job(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..257).collect();
        let doubled = BatchRunner::with_threads(8).map(&inputs, |&x| {
            // Jitter completion order.
            if x % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            x * 2
        });
        assert_eq!(doubled.len(), 257);
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let work = |seed: u64| seed.wrapping_mul(0x9e37_79b9).rotate_left(13);
        let serial = BatchRunner::with_threads(1).map_seeds(100, work);
        let parallel = BatchRunner::with_threads(16).map_seeds(100, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batches_are_fine() {
        let empty: Vec<u64> = BatchRunner::new().map(&[] as &[u64], |&x| x);
        assert!(empty.is_empty());
        assert!(BatchRunner::with_threads(0).threads() == 1);
    }
}
