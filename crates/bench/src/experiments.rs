//! The experiment implementations (E1–E8 of DESIGN.md).

use crate::batch::BatchRunner;
use fle_analysis::{theory, Summary, Table};
use fle_baselines::{RandomOrderRenaming, TournamentConfig, TournamentTas};
use fle_core::checks;
use fle_core::harness::{
    run_heterogeneous_poison_pill, run_leader_election, run_poison_pill, run_renaming,
    ElectionSetup, RenamingSetup, SiftSetup,
};
use fle_model::ProcId;
use fle_sim::{
    Adversary, CoinAwareAdversary, CrashPlan, CrashingAdversary, ObliviousAdversary,
    RandomAdversary, SequentialAdversary, SimConfig, Simulator,
};

/// The adversary strategies the experiments sweep over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Uniformly random scheduling (fair baseline).
    Random,
    /// The weak/oblivious adversary of AA11/GW12a.
    Oblivious,
    /// Run participants one at a time (Section 3.2's worst case for the
    /// fixed-bias PoisonPill).
    Sequential,
    /// Inspect coin flips and prioritise 0-flippers (the strong-adversary
    /// strategy sketched in the introduction).
    CoinAware,
}

impl AdversaryKind {
    /// All strategies, in presentation order.
    pub fn all() -> [AdversaryKind; 4] {
        [
            AdversaryKind::Random,
            AdversaryKind::Oblivious,
            AdversaryKind::Sequential,
            AdversaryKind::CoinAware,
        ]
    }

    /// Instantiate the adversary with the given seed.
    pub fn build(self, seed: u64) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::Random => Box::new(RandomAdversary::with_seed(seed)),
            AdversaryKind::Oblivious => Box::new(ObliviousAdversary::with_seed(seed)),
            AdversaryKind::Sequential => Box::new(SequentialAdversary::new()),
            AdversaryKind::CoinAware => Box::new(CoinAwareAdversary::with_seed(seed)),
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            AdversaryKind::Random => "random",
            AdversaryKind::Oblivious => "oblivious",
            AdversaryKind::Sequential => "sequential",
            AdversaryKind::CoinAware => "coin-aware",
        }
    }
}

fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

/// E1 — Claims 3.1/3.2 and Section 3.2: survivors of one plain PoisonPill
/// phase (bias `1/√n`) under each adversary, against the `√n` curve.
pub fn e1_poisonpill_survivors(sizes: &[usize], trials: u64) -> Table {
    let runner = BatchRunner::new();
    let mut table = Table::new([
        "n",
        "adversary",
        "mean survivors",
        "max survivors",
        "min survivors",
        "sqrt(n)",
    ]);
    for &n in sizes {
        for adversary in AdversaryKind::all() {
            let samples = runner.map_seeds(trials, |seed| {
                let setup = SiftSetup::all_participate(n).with_seed(seed);
                let report = run_poison_pill(
                    &setup,
                    1.0 / (n as f64).sqrt(),
                    adversary.build(seed).as_mut(),
                )
                .expect("sift terminates");
                assert!(checks::at_least_one_survivor(&report), "Claim 3.1 violated");
                report.survivors().len() as f64
            });
            let summary = Summary::of(samples);
            table.add_row([
                n.to_string(),
                adversary.label().to_string(),
                fmt2(summary.mean()),
                fmt2(summary.max()),
                fmt2(summary.min()),
                fmt2(theory::sqrt_curve(n as u64)),
            ]);
        }
    }
    table
}

/// E2 — Lemmas 3.6/3.7: survivors of one Heterogeneous PoisonPill phase under
/// each adversary, against the `log² n` curve (and `√n` for comparison).
pub fn e2_het_survivors(sizes: &[usize], trials: u64) -> Table {
    let runner = BatchRunner::new();
    let mut table = Table::new([
        "n",
        "adversary",
        "mean survivors",
        "max survivors",
        "log2(n)^2",
        "sqrt(n)",
    ]);
    for &n in sizes {
        for adversary in AdversaryKind::all() {
            let samples = runner.map_seeds(trials, |seed| {
                let setup = SiftSetup::all_participate(n).with_seed(seed);
                let report = run_heterogeneous_poison_pill(&setup, adversary.build(seed).as_mut())
                    .expect("sift terminates");
                assert!(checks::at_least_one_survivor(&report), "Claim 3.1 violated");
                report.survivors().len() as f64
            });
            let summary = Summary::of(samples);
            table.add_row([
                n.to_string(),
                adversary.label().to_string(),
                fmt2(summary.mean()),
                fmt2(summary.max()),
                fmt2(theory::log_squared(n as u64)),
                fmt2(theory::sqrt_curve(n as u64)),
            ]);
        }
    }
    table
}

fn run_tournament_election(
    n: usize,
    k: usize,
    seed: u64,
    adversary: &mut dyn Adversary,
) -> fle_sim::ExecutionReport {
    let config = TournamentConfig::new(n);
    let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
    for i in 0..k {
        sim.add_participant(ProcId(i), Box::new(TournamentTas::new(ProcId(i), config)));
    }
    sim.run(adversary).expect("tournament terminates")
}

/// E3 — Theorem A.5 (time): maximum communicate calls of any processor for
/// the paper's election versus the tournament baseline, against `log* k` and
/// `log k`.
pub fn e3_election_time(sizes: &[usize], trials: u64) -> Table {
    let runner = BatchRunner::new();
    let mut table = Table::new([
        "k = n",
        "poisonpill max calls (mean)",
        "tournament max calls (mean)",
        "log*(k)",
        "log2(k)",
    ]);
    for &n in sizes {
        let ours = Summary::of(runner.map_seeds(trials, |seed| {
            let setup = ElectionSetup::all_participate(n).with_seed(seed);
            let report = run_leader_election(&setup, RandomAdversary::with_seed(seed).as_adv())
                .expect("election terminates");
            assert!(checks::unique_winner(&report));
            assert!(checks::someone_won(&report));
            report.max_communicate_calls() as f64
        }));
        let baseline = Summary::of(runner.map_seeds(trials, |seed| {
            let report = run_tournament_election(n, n, seed, &mut RandomAdversary::with_seed(seed));
            assert!(checks::unique_winner(&report));
            report.max_communicate_calls() as f64
        }));
        table.add_row([
            n.to_string(),
            fmt2(ours.mean()),
            fmt2(baseline.mean()),
            theory::log_star(n as u64).to_string(),
            fmt2(theory::log2(n as u64)),
        ]);
    }
    table
}

/// Small extension trait so the drivers read naturally.
trait AsAdv {
    fn as_adv(&mut self) -> &mut dyn Adversary;
}

impl<A: Adversary> AsAdv for A {
    fn as_adv(&mut self) -> &mut dyn Adversary {
        self
    }
}

/// E4 — Theorem A.5 (messages): total messages versus the number of
/// participants `k` at fixed `n`, for the paper's election and the tournament
/// baseline, against the `k·n` curve.
pub fn e4_message_complexity(n: usize, ks: &[usize], trials: u64) -> Table {
    let runner = BatchRunner::new();
    let mut table = Table::new([
        "n",
        "k",
        "poisonpill messages (mean)",
        "tournament messages (mean)",
        "k*n",
    ]);
    for &k in ks {
        let ours = Summary::of(runner.map_seeds(trials, |seed| {
            let setup = ElectionSetup::first_k_participate(n, k).with_seed(seed);
            let report = run_leader_election(&setup, RandomAdversary::with_seed(seed).as_adv())
                .expect("election terminates");
            report.total_messages() as f64
        }));
        let baseline = Summary::of(runner.map_seeds(trials, |seed| {
            let report = run_tournament_election(n, k, seed, &mut RandomAdversary::with_seed(seed));
            report.total_messages() as f64
        }));
        table.add_row([
            n.to_string(),
            k.to_string(),
            fmt2(ours.mean()),
            fmt2(baseline.mean()),
            fmt2(theory::kn_curve(k as u64, n as u64)),
        ]);
    }
    table
}

/// E5 — Theorem A.5 (fault tolerance + linearizability): inject
/// `⌈n/2⌉ − 1` crashes at adversarial points and check that every correct
/// participant still returns, at most one wins, and the execution is
/// linearizable.
pub fn e5_fault_tolerance(sizes: &[usize], trials: u64) -> Table {
    let mut table = Table::new([
        "n",
        "crashes",
        "trials",
        "correct terminated",
        "unique winner",
        "linearizable",
    ]);
    let runner = BatchRunner::new();
    for &n in sizes {
        let budget = n.div_ceil(2).saturating_sub(1);
        let verdicts = runner.map_seeds(trials, |seed| {
            // Crash the top `budget` processors at staggered points.
            let mut plan = CrashPlan::none();
            for (index, victim) in (n - budget..n).enumerate() {
                plan = plan.and_then((index as u64 + 1) * 50, ProcId(victim));
            }
            let mut adversary = CrashingAdversary::new(RandomAdversary::with_seed(seed), plan);
            let setup = ElectionSetup::all_participate(n).with_seed(seed);
            let report = run_leader_election(&setup, &mut adversary).expect("election terminates");
            let participants: Vec<ProcId> = (0..n).map(ProcId).collect();
            (
                checks::all_correct_returned(&report, &participants),
                checks::unique_winner(&report),
                checks::linearizable_test_and_set(&report),
            )
        });
        let terminated = verdicts.iter().filter(|v| v.0).count() as u64;
        let unique = verdicts.iter().filter(|v| v.1).count() as u64;
        let linearizable = verdicts.iter().filter(|v| v.2).count() as u64;
        table.add_row([
            n.to_string(),
            budget.to_string(),
            trials.to_string(),
            format!("{terminated}/{trials}"),
            format!("{unique}/{trials}"),
            format!("{linearizable}/{trials}"),
        ]);
    }
    table
}

/// E6 — Theorems 4.2 and A.13: renaming time (max communicate calls) and
/// messages for the paper's algorithm versus the random-order baseline,
/// against `log² n` and `n` curves for time and `n²` for messages.
pub fn e6_renaming(sizes: &[usize], trials: u64) -> Table {
    let mut table = Table::new([
        "n",
        "paper max calls",
        "naive max calls",
        "paper messages",
        "naive messages",
        "log2(n)^2",
        "n^2",
    ]);
    let runner = BatchRunner::new();
    for &n in sizes {
        let samples = runner.map_seeds(trials, |seed| {
            // The sequential schedule is where the baselines differ most: a
            // late processor that ignores contention information has to try
            // Ω(n) names, while the paper's algorithm only picks among names
            // it has verified to be free.
            let setup = RenamingSetup::all_participate(n).with_seed(seed);
            let report = run_renaming(&setup, SequentialAdversary::new().as_adv())
                .expect("renaming terminates");
            assert!(checks::valid_tight_renaming(&report, n, n));
            let ours = (
                report.max_communicate_calls() as f64,
                report.total_messages() as f64,
            );

            let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
            for i in 0..n {
                sim.add_participant(ProcId(i), Box::new(RandomOrderRenaming::new(ProcId(i), n)));
            }
            let report = sim
                .run(&mut SequentialAdversary::new())
                .expect("naive renaming terminates");
            assert!(checks::valid_tight_renaming(&report, n, n));
            (
                ours,
                (
                    report.max_communicate_calls() as f64,
                    report.total_messages() as f64,
                ),
            )
        });
        let ours_calls: Vec<f64> = samples.iter().map(|((calls, _), _)| *calls).collect();
        let ours_msgs: Vec<f64> = samples.iter().map(|((_, msgs), _)| *msgs).collect();
        let naive_calls: Vec<f64> = samples.iter().map(|(_, (calls, _))| *calls).collect();
        let naive_msgs: Vec<f64> = samples.iter().map(|(_, (_, msgs))| *msgs).collect();
        table.add_row([
            n.to_string(),
            fmt2(Summary::of(ours_calls).mean()),
            fmt2(Summary::of(naive_calls).mean()),
            fmt2(Summary::of(ours_msgs).mean()),
            fmt2(Summary::of(naive_msgs).mean()),
            fmt2(theory::log_squared(n as u64)),
            fmt2((n * n) as f64),
        ]);
    }
    table
}

/// E7 — Corollary B.3: the measured message complexity of both algorithms
/// sits above the `α·k·n/16` lower bound and within a modest constant of
/// `k·n`.
pub fn e7_lower_bound_check(sizes: &[usize], trials: u64) -> Table {
    let mut table = Table::new([
        "k = n",
        "election messages (mean)",
        "renaming messages (mean)",
        "lower bound kn/16",
        "kn",
    ]);
    let runner = BatchRunner::new();
    for &n in sizes {
        let election = Summary::of(runner.map_seeds(trials, |seed| {
            let setup = ElectionSetup::all_participate(n).with_seed(seed);
            run_leader_election(&setup, RandomAdversary::with_seed(seed).as_adv())
                .expect("election terminates")
                .total_messages() as f64
        }));
        let renaming = Summary::of(runner.map_seeds(trials, |seed| {
            let setup = RenamingSetup::all_participate(n).with_seed(seed);
            run_renaming(&setup, RandomAdversary::with_seed(seed).as_adv())
                .expect("renaming terminates")
                .total_messages() as f64
        }));
        table.add_row([
            n.to_string(),
            fmt2(election.mean()),
            fmt2(renaming.mean()),
            fmt2(theory::lower_bound_messages(n as u64, n as u64)),
            fmt2(theory::kn_curve(n as u64, n as u64)),
        ]);
    }
    table
}

/// E8 — the Section 3.2 ablation: survivors of a single sifting phase under
/// the *coin-aware* strong adversary, for fixed biases `1/n^γ` with
/// γ ∈ {0.25, 0.5, 0.75} and for the heterogeneous bias, showing why the
/// heterogeneous rule is needed.
pub fn e8_bias_ablation(sizes: &[usize], trials: u64) -> Table {
    let runner = BatchRunner::new();
    let mut table = Table::new([
        "n",
        "bias",
        "mean survivors (coin-aware)",
        "mean survivors (sequential)",
    ]);
    for &n in sizes {
        let biases: Vec<(String, Option<f64>)> = vec![
            ("1/n^0.25".to_string(), Some(1.0 / (n as f64).powf(0.25))),
            ("1/sqrt(n)".to_string(), Some(1.0 / (n as f64).sqrt())),
            ("1/n^0.75".to_string(), Some(1.0 / (n as f64).powf(0.75))),
            ("heterogeneous".to_string(), None),
        ];
        for (label, bias) in biases {
            let survivors_under = |kind: AdversaryKind| {
                Summary::of(runner.map_seeds(trials, |seed| {
                    let setup = SiftSetup::all_participate(n).with_seed(seed);
                    let report = match bias {
                        Some(p) => run_poison_pill(&setup, p, kind.build(seed).as_mut()),
                        None => run_heterogeneous_poison_pill(&setup, kind.build(seed).as_mut()),
                    }
                    .expect("sift terminates");
                    report.survivors().len() as f64
                }))
            };
            let coin_aware = survivors_under(AdversaryKind::CoinAware);
            let sequential = survivors_under(AdversaryKind::Sequential);
            table.add_row([
                n.to_string(),
                label,
                fmt2(coin_aware.mean()),
                fmt2(sequential.mean()),
            ]);
        }
    }
    table
}

/// Convenience used by the criterion benches: one full election on the
/// simulator, returning the winner count (so the optimiser cannot discard
/// the run).
pub fn bench_one_election(n: usize, seed: u64) -> usize {
    let setup = ElectionSetup::all_participate(n).with_seed(seed);
    let report = run_leader_election(&setup, &mut RandomAdversary::with_seed(seed))
        .expect("election terminates");
    report.winners().len()
}

/// Convenience used by the criterion benches: one full tournament election.
pub fn bench_one_tournament(n: usize, seed: u64) -> usize {
    run_tournament_election(n, n, seed, &mut RandomAdversary::with_seed(seed))
        .winners()
        .len()
}

/// Convenience used by the criterion benches: one renaming execution.
pub fn bench_one_renaming(n: usize, seed: u64) -> usize {
    let setup = RenamingSetup::all_participate(n).with_seed(seed);
    run_renaming(&setup, &mut RandomAdversary::with_seed(seed))
        .expect("renaming terminates")
        .names()
        .len()
}

/// Convenience used by the criterion benches: one threaded election on real
/// OS threads.
pub fn bench_one_threaded_election(n: usize, seed: u64) -> usize {
    fle_runtime::run_threaded_leader_election(n, seed)
        .expect("threaded election completes")
        .winners()
        .len()
}

/// One sifting phase of each flavour, used by `bench_sifting`.
pub fn bench_one_sift(n: usize, heterogeneous: bool, seed: u64) -> usize {
    let setup = SiftSetup::all_participate(n).with_seed(seed);
    let report = if heterogeneous {
        run_heterogeneous_poison_pill(&setup, &mut RandomAdversary::with_seed(seed))
    } else {
        run_poison_pill(
            &setup,
            1.0 / (n as f64).sqrt(),
            &mut RandomAdversary::with_seed(seed),
        )
    }
    .expect("sift terminates");
    report.survivors().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adversary_kinds_build_and_label() {
        for kind in AdversaryKind::all() {
            let mut adversary = kind.build(3);
            assert!(!adversary.name().is_empty());
            assert!(!kind.label().is_empty());
            let _ = &mut adversary;
        }
    }

    #[test]
    fn small_experiment_tables_have_expected_shape() {
        let t1 = e1_poisonpill_survivors(&[4], 2);
        assert_eq!(t1.len(), AdversaryKind::all().len());

        let t3 = e3_election_time(&[4], 1);
        assert_eq!(t3.len(), 1);

        let t5 = e5_fault_tolerance(&[5], 2);
        assert_eq!(t5.len(), 1);
        assert!(t5.render().contains("2/2"));

        let t8 = e8_bias_ablation(&[4], 1);
        assert_eq!(t8.len(), 4);
    }

    #[test]
    fn bench_helpers_return_sane_values() {
        assert_eq!(bench_one_election(4, 1), 1);
        assert_eq!(bench_one_tournament(4, 1), 1);
        assert_eq!(bench_one_renaming(3, 1), 3);
        assert!(bench_one_sift(6, true, 1) >= 1);
        assert!(bench_one_sift(6, false, 1) >= 1);
    }
}
