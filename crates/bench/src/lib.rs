//! Experiment drivers reproducing every complexity claim of the paper.
//!
//! The paper is a theory paper: its "evaluation" is a set of proven bounds
//! rather than measured tables, so the experiments here measure the
//! quantities those bounds are about and compare them with the theoretical
//! reference curves (see `EXPERIMENTS.md` at the repository root for the
//! recorded outputs and the paper-vs-measured discussion).
//!
//! Each experiment is available as
//!
//! * a library function in [`experiments`] returning an
//!   [`fle_analysis::Table`], used by the integration tests and by
//!   EXPERIMENTS.md regeneration, and
//! * a binary (`cargo run --release -p fle-bench --bin exp_e1_poisonpill_survivors`,
//!   etc.) that prints the table, and
//! * a criterion benchmark (`cargo bench`) for the wall-clock view.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod experiments;
pub mod json;
pub mod parallel;
pub mod service_load;

/// The log-scaled histogram now lives in `fle-obs` (the service's
/// observability layer shares it); re-exported here for the bench API's
/// long-standing `fle_bench::hist` path.
pub use fle_obs::hist;

pub use batch::BatchRunner;
pub use experiments::{
    e1_poisonpill_survivors, e2_het_survivors, e3_election_time, e4_message_complexity,
    e5_fault_tolerance, e6_renaming, e7_lower_bound_check, e8_bias_ablation, AdversaryKind,
};
pub use fle_obs::LogHistogram;
pub use parallel::{
    measure_parallel_default, measure_parallel_point, parallel_smoke_check,
    record_parallel_preserving, ParallelPoint, PartitionSample,
};
pub use service_load::{
    closed_loop, metrics_smoke_check, open_loop, open_loop_overload, overload_smoke_check,
    overload_sweep, submit_with_retry, LoadResult, LoadSpec, OverloadResult, OverloadSpec,
};
