//! The simulator-throughput baseline: incremental vs naive event scheduling.
//!
//! Measures full leader elections (all `n` processors participate, fair
//! random adversary) in events per second under both engine modes:
//!
//! * **incremental** — the production scheduler: enabled events served from
//!   the incrementally maintained indexes (O(log) per event),
//! * **naive** — [`fle_sim::SimConfig::with_naive_event_set`]: the historical
//!   rebuild-the-event-list-per-event scheduler (O(n + messages) per event).
//!
//! Both modes execute *byte-identical schedules* (asserted here via the event
//! counts), so the ratio is a pure scheduling-cost measurement. The result is
//! recorded in `BENCH_baseline.json` so future performance PRs have a
//! trajectory to compare against.

use crate::json::write_or_warn;
use fle_core::LeaderElection;
use fle_model::ProcId;
use fle_sim::{RandomAdversary, SimConfig, Simulator};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Throughput of both engine modes at one system size.
#[derive(Debug, Clone)]
pub struct BaselinePoint {
    /// System size (all `n` processors participate).
    pub n: usize,
    /// Seeds measured.
    pub trials: u64,
    /// Total events executed across all trials (identical in both modes).
    pub events: u64,
    /// Events per second with the incremental scheduler.
    pub incremental_events_per_sec: f64,
    /// Events per second with the naive rebuild-per-event scheduler.
    pub naive_events_per_sec: f64,
}

impl BaselinePoint {
    /// Incremental over naive throughput.
    pub fn speedup(&self) -> f64 {
        self.incremental_events_per_sec / self.naive_events_per_sec
    }
}

fn run_elections(n: usize, trials: u64, naive: bool) -> (f64, u64) {
    let mut events = 0u64;
    let start = Instant::now();
    for seed in 0..trials {
        let mut config = SimConfig::new(n).with_seed(seed);
        if naive {
            config = config.with_naive_event_set();
        }
        let mut sim = Simulator::new(config);
        for i in 0..n {
            sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
        }
        let report = sim
            .run(&mut RandomAdversary::with_seed(seed))
            .expect("election terminates");
        assert_eq!(report.winners().len(), 1);
        events += report.events_executed;
    }
    (start.elapsed().as_secs_f64(), events)
}

/// Measure both engine modes at each size (single-threaded, for comparable
/// timings).
pub fn measure(sizes: &[usize], trials: u64) -> Vec<BaselinePoint> {
    sizes
        .iter()
        .map(|&n| {
            let (incremental_secs, events) = run_elections(n, trials, false);
            let (naive_secs, naive_events) = run_elections(n, trials, true);
            assert_eq!(
                events, naive_events,
                "both engine modes must execute identical schedules"
            );
            BaselinePoint {
                n,
                trials,
                events,
                incremental_events_per_sec: events as f64 / incremental_secs,
                naive_events_per_sec: events as f64 / naive_secs,
            }
        })
        .collect()
}

/// Render baseline points as the `BENCH_baseline.json` document.
pub fn to_json(points: &[BaselinePoint]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"election_events_per_sec\",\n");
    out.push_str(
        "  \"workload\": \"full leader election, all n participate, random adversary\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (index, p) in points.iter().enumerate() {
        let comma = if index + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"trials\": {}, \"events\": {}, \
             \"incremental_events_per_sec\": {:.1}, \"naive_events_per_sec\": {:.1}, \
             \"speedup\": {:.2}}}{comma}",
            p.n,
            p.trials,
            p.events,
            p.incremental_events_per_sec,
            p.naive_events_per_sec,
            p.speedup()
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// Measure the standard sizes and write `BENCH_baseline.json` at `path`;
/// returns the points.
pub fn record(path: &Path, sizes: &[usize], trials: u64) -> Vec<BaselinePoint> {
    let points = measure(sizes, trials);
    write_or_warn(path, &to_json(&points));
    points
}

/// The standard baseline: n ∈ {16, 64, 256}, written to the tracked
/// `BENCH_baseline.json` at the workspace root (resolved relative to this
/// crate, so it lands in the same place whether invoked via the
/// `bench_baseline` bin or via `cargo bench`, whose working directory is the
/// package root).
pub fn record_default() -> Vec<BaselinePoint> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json");
    record(&path, &[16, 64, 256], 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_agree_and_incremental_wins_at_scale() {
        // Small sizes keep the test fast; the full criterion run uses 256.
        let points = measure(&[16, 48], 2);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.events > 0);
            assert!(p.incremental_events_per_sec > 0.0);
            assert!(p.naive_events_per_sec > 0.0);
        }
        let json = to_json(&points);
        assert!(json.contains("\"n\": 16"));
        assert!(json.contains("speedup"));
    }
}
