//! The simulator-throughput baseline: production engine vs its two retained
//! reference implementations.
//!
//! Measures full leader elections (all `n` processors participate, fair
//! random adversary) in events per second under three engine modes:
//!
//! * **incremental** — the production configuration: enabled events served
//!   from incrementally maintained indexes (PR 1) *and* O(1) payloads —
//!   refcount-shared broadcasts, copy-on-write snapshot / delta collect
//!   replies, arena-recycled trial buffers (PR 2),
//! * **clone payloads** — [`fle_sim::SimConfig::with_naive_payloads`]: the
//!   historical payload path (entry-list clone per propagate send, full view
//!   copy per collect reply) on top of the incremental scheduler,
//! * **naive** — [`fle_sim::SimConfig::with_naive_event_set`]: additionally
//!   the historical rebuild-the-event-list-per-event scheduler. Skipped above
//!   [`NAIVE_SCHEDULER_LIMIT`], where a single trial would take minutes.
//!
//! All modes execute *byte-identical schedules* (asserted here via the event
//! counts, and end-to-end by `tests/event_set_equivalence.rs`), so the ratios
//! are pure cost measurements. The result is recorded in
//! `BENCH_baseline.json` so future performance PRs have a trajectory to
//! compare against; [`smoke_check`] re-measures one point and fails loudly if
//! throughput regressed far below the recording (the CI smoke-perf job).

use crate::json::write_or_warn;
use fle_core::LeaderElection;
use fle_model::ProcId;
use fle_sim::{RandomAdversary, SimArena, SimConfig, Simulator};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Largest `n` at which the naive rebuild-per-event scheduler is measured.
pub const NAIVE_SCHEDULER_LIMIT: usize = 256;

/// Throughput of the engine modes at one system size.
#[derive(Debug, Clone)]
pub struct BaselinePoint {
    /// System size (all `n` processors participate).
    pub n: usize,
    /// Seeds measured.
    pub trials: u64,
    /// Total events executed across all trials (identical in every mode).
    pub events: u64,
    /// Events per second in the production configuration.
    pub incremental_events_per_sec: f64,
    /// Events per second with the historical clone-per-message payloads.
    pub clone_payload_events_per_sec: f64,
    /// Events per second with the naive rebuild-per-event scheduler
    /// (`None` above [`NAIVE_SCHEDULER_LIMIT`]).
    pub naive_events_per_sec: Option<f64>,
}

impl BaselinePoint {
    /// Production over naive-scheduler throughput, where measured.
    pub fn speedup(&self) -> Option<f64> {
        self.naive_events_per_sec
            .map(|naive| self.incremental_events_per_sec / naive)
    }

    /// Production over clone-payload throughput.
    pub fn payload_speedup(&self) -> f64 {
        self.incremental_events_per_sec / self.clone_payload_events_per_sec
    }
}

/// Engine configuration under measurement.
#[derive(Debug, Clone, Copy)]
enum Mode {
    Incremental,
    ClonePayloads,
    NaiveScheduler,
}

fn run_elections(n: usize, trials: u64, mode: Mode) -> (f64, u64) {
    let mut events = 0u64;
    // One explicit arena threaded through the trial loop: after the first
    // trial the engine re-allocates (almost) nothing.
    let mut arena = SimArena::new();
    let start = Instant::now();
    for seed in 0..trials {
        let mut config = SimConfig::new(n).with_seed(seed);
        match mode {
            Mode::Incremental => {}
            Mode::ClonePayloads => config = config.with_naive_payloads(),
            Mode::NaiveScheduler => config = config.with_naive_payloads().with_naive_event_set(),
        }
        let mut sim = Simulator::from_arena(config, arena);
        for i in 0..n {
            sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
        }
        let report = sim
            .run(&mut RandomAdversary::with_seed(seed))
            .expect("election terminates");
        assert_eq!(report.winners().len(), 1);
        events += report.events_executed;
        arena = sim.into_arena();
    }
    (start.elapsed().as_secs_f64(), events)
}

/// Measure the engine modes at one size (single-threaded, for comparable
/// timings).
pub fn measure_point(n: usize, trials: u64) -> BaselinePoint {
    let (incremental_secs, events) = run_elections(n, trials, Mode::Incremental);
    let (clone_secs, clone_events) = run_elections(n, trials, Mode::ClonePayloads);
    assert_eq!(
        events, clone_events,
        "payload modes must execute identical schedules"
    );
    let naive_events_per_sec = (n <= NAIVE_SCHEDULER_LIMIT).then(|| {
        let (naive_secs, naive_events) = run_elections(n, trials, Mode::NaiveScheduler);
        assert_eq!(
            events, naive_events,
            "all engine modes must execute identical schedules"
        );
        naive_events as f64 / naive_secs
    });
    BaselinePoint {
        n,
        trials,
        events,
        incremental_events_per_sec: events as f64 / incremental_secs,
        clone_payload_events_per_sec: events as f64 / clone_secs,
        naive_events_per_sec,
    }
}

/// Measure every `(n, trials)` specification.
pub fn measure(specs: &[(usize, u64)]) -> Vec<BaselinePoint> {
    specs
        .iter()
        .map(|&(n, trials)| measure_point(n, trials))
        .collect()
}

/// Render baseline points as the `BENCH_baseline.json` document.
pub fn to_json(points: &[BaselinePoint]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"election_events_per_sec\",\n");
    out.push_str(
        "  \"workload\": \"full leader election, all n participate, random adversary\",\n",
    );
    out.push_str(
        "  \"methodology\": \"single-threaded wall clock over `trials` seeded runs; all modes \
         execute byte-identical schedules; incremental = O(1) scheduling (PR 1) + O(1) payloads \
         (PR 2); clone_payload = incremental scheduler with per-message payload clones; naive = \
         per-event rebuild scheduler, measured only for n <= 256 and null above\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (index, p) in points.iter().enumerate() {
        let comma = if index + 1 < points.len() { "," } else { "" };
        let naive = p
            .naive_events_per_sec
            .map_or("null".to_string(), |v| format!("{v:.1}"));
        let speedup = p
            .speedup()
            .map_or("null".to_string(), |v| format!("{v:.2}"));
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"trials\": {}, \"events\": {}, \
             \"incremental_events_per_sec\": {:.1}, \
             \"clone_payload_events_per_sec\": {:.1}, \
             \"naive_events_per_sec\": {naive}, \
             \"payload_speedup\": {:.2}, \"speedup\": {speedup}}}{comma}",
            p.n,
            p.trials,
            p.events,
            p.incremental_events_per_sec,
            p.clone_payload_events_per_sec,
            p.payload_speedup(),
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The tracked `BENCH_baseline.json` at the workspace root (resolved relative
/// to this crate, so it lands in the same place whether invoked via the
/// `bench_baseline` bin or via `cargo bench`).
pub fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

/// Measure the given specifications and write `BENCH_baseline.json` at
/// `path`; returns the points.
pub fn record(path: &Path, specs: &[(usize, u64)]) -> Vec<BaselinePoint> {
    let points = measure(specs);
    write_or_warn(path, &to_json(&points));
    points
}

/// The standard baseline: n ∈ {16, 64, 256} with 3 trials each plus a single
/// n = 1024 trial, written to the tracked `BENCH_baseline.json`.
pub fn record_default() -> Vec<BaselinePoint> {
    record(&baseline_path(), &[(16, 3), (64, 3), (256, 3), (1024, 1)])
}

/// Extract `incremental_events_per_sec` for one `n` from a recorded
/// `BENCH_baseline.json` document (line-oriented; resilient to reformatting
/// as long as each point stays on its own line).
pub fn recorded_events_per_sec(json: &str, n: usize) -> Option<f64> {
    let needle = format!("\"n\": {n},");
    let line = json.lines().find(|line| line.contains(&needle))?;
    let key = "\"incremental_events_per_sec\": ";
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// The CI smoke-perf gate: re-measure `n = 64` with a single trial and fail
/// if throughput fell more than [`SMOKE_REGRESSION_FACTOR`]× below the
/// recorded baseline. The threshold is deliberately generous — the job must
/// be loud on real regressions, never flaky on machine noise.
pub const SMOKE_REGRESSION_FACTOR: f64 = 3.0;

/// Machine-independent backstop for the smoke gate: the production engine
/// must beat the naive rebuild-per-event scheduler by at least this factor
/// *in the same run*. The recorded ratio is > 10×, so 2× only trips on a
/// genuine production-path regression, never on a slow runner.
pub const SMOKE_MIN_SPEEDUP: f64 = 2.0;

/// Run the smoke gate; returns `(measured, recorded)` on success.
///
/// The absolute comparison against the recorded baseline catches
/// regressions, but the recording comes from the reference machine — a CI
/// runner several times slower would fail it with no code change. So the
/// gate only fails when **both** signals agree: absolute events/s fell more
/// than [`SMOKE_REGRESSION_FACTOR`]× below the recording **and** the
/// same-run production-vs-naive ratio fell below [`SMOKE_MIN_SPEEDUP`]
/// (machine-independent). A slow runner passes the second check; a real
/// engine regression fails both.
///
/// # Errors
/// Returns a description of the failure: missing/unparseable recording, or a
/// regression confirmed by both signals.
pub fn smoke_check() -> Result<(f64, f64), String> {
    let path = baseline_path();
    let json = std::fs::read_to_string(&path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let recorded = recorded_events_per_sec(&json, 64)
        .ok_or_else(|| format!("no n=64 point recorded in {}", path.display()))?;
    let point = measure_point(64, 1);
    let measured = point.incremental_events_per_sec;
    let absolute_regressed = measured * SMOKE_REGRESSION_FACTOR < recorded;
    if absolute_regressed {
        let ratio = point.speedup().unwrap_or(f64::INFINITY);
        if ratio < SMOKE_MIN_SPEEDUP {
            return Err(format!(
                "events/s regressed at n=64: measured {measured:.0} is more than \
                 {SMOKE_REGRESSION_FACTOR}x below the recorded {recorded:.0}, and the \
                 same-run production/naive ratio {ratio:.2}x is below the \
                 {SMOKE_MIN_SPEEDUP}x floor"
            ));
        }
        eprintln!(
            "smoke-perf note: absolute events/s below the recording \
             (measured {measured:.0} vs recorded {recorded:.0}) but the same-run \
             production/naive ratio {ratio:.2}x is healthy — assuming a slower machine"
        );
    }
    Ok((measured, recorded))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_modes_agree_and_render_to_json() {
        // Small sizes keep the test fast; the full run uses 256 and 1024.
        let points = measure(&[(16, 2), (48, 1)]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.events > 0);
            assert!(p.incremental_events_per_sec > 0.0);
            assert!(p.clone_payload_events_per_sec > 0.0);
            assert!(p.naive_events_per_sec.is_some());
        }
        let json = to_json(&points);
        assert!(json.contains("\"n\": 16"));
        assert!(json.contains("payload_speedup"));
        assert!(json.contains("methodology"));
        // The smoke gate's parser must read back what we write.
        let parsed = recorded_events_per_sec(&json, 16).expect("parseable");
        assert!((parsed - points[0].incremental_events_per_sec).abs() < 1.0);
    }

    #[test]
    fn naive_scheduler_is_skipped_above_the_limit() {
        let json = to_json(&[BaselinePoint {
            n: 1024,
            trials: 1,
            events: 100,
            incremental_events_per_sec: 5.0,
            clone_payload_events_per_sec: 4.0,
            naive_events_per_sec: None,
        }]);
        assert!(json.contains("\"naive_events_per_sec\": null"));
        assert!(json.contains("\"speedup\": null"));
        assert_eq!(recorded_events_per_sec(&json, 1024), Some(5.0));
        assert_eq!(recorded_events_per_sec(&json, 64), None);
    }
}
