//! Load generation against the sharded [`fle_service::ElectionService`].
//!
//! Three generator shapes:
//!
//! * **closed loop** ([`closed_loop`]) — `clients` threads, each submitting
//!   its next instance only after the previous one completed; measures the
//!   *sustained* instances/second the service can serve at that concurrency,
//!   with per-instance latencies for tail percentiles.
//! * **open loop** ([`open_loop`]) — a single submitter paces submissions at
//!   a target rate regardless of completions, so queueing shows up as
//!   latency rather than as throttled throughput. Transient `Overloaded`
//!   refusals are retried with jittered exponential backoff
//!   ([`submit_with_retry`]).
//! * **overload** ([`open_loop_overload`]) — open loop *past* the service's
//!   capacity with **no** retry: refusals are counted instead, measuring
//!   goodput, admitted-work tail latency, and shed rate under the service's
//!   admission control. [`overload_sweep`] runs it at multiples of the
//!   measured sustainable rate for the `overload` section of
//!   `BENCH_service.json`.
//!
//! Latencies are aggregated in a fixed-footprint log-scaled histogram
//! ([`crate::hist::LogHistogram`]) — O(1) recording, ≤ 1.6 % quantile error —
//! instead of a sorted sample vector. Every run verifies correctness while
//! it measures: exactly one result per admitted key (nothing lost, nothing
//! duplicated), exactly one winner per election instance, and the service's
//! accounting invariant `submitted = completed + failed + shed + drained`.
//! The standard recording ([`record_default`]) sweeps the concurrent backend
//! at shard counts {1, 4, `num_cpus`}, the concurrent-vs-async backend
//! density sweep at n ∈ {4, 16, 64} ([`density_sweep`]), and the
//! executor-direct density storm ([`executor_density_storm`] — every
//! instance in flight at once, `peak_in_flight` measured), and writes
//! `BENCH_service.json`; [`smoke_check`], [`overload_smoke_check`] and
//! [`async_smoke_check`] are the CI gates.

use crate::hist::LogHistogram;
use crate::json::write_or_warn;
use fle_obs::MetricsSnapshot;
use fle_runtime::{ExecResult, Executor, ExecutorConfig};
use fle_service::{
    BackendKind, ElectionService, InstanceSpec, OverloadPolicy, ServiceConfig, SubmitError, Ticket,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One load-generation configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// The backend instances execute on.
    pub backend: BackendKind,
    /// Service shards (worker threads).
    pub shards: usize,
    /// Total instances to run.
    pub instances: usize,
    /// System size of each instance.
    pub n: usize,
    /// Closed-loop client threads (ignored by [`open_loop`]).
    pub clients: usize,
    /// Base for the per-instance keys/seeds.
    pub base_key: u64,
}

impl LoadSpec {
    /// A closed-loop spec on the concurrent backend: `instances` elections
    /// of size `n` over `shards` shards, with twice as many clients as
    /// shards (enough to keep every shard busy).
    pub fn concurrent(shards: usize, instances: usize, n: usize) -> Self {
        LoadSpec {
            backend: BackendKind::Concurrent,
            shards,
            instances,
            n,
            clients: (shards * 2).max(2),
            base_key: 0,
        }
    }

    /// Use a different backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// The measurement of one load run.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// The configuration measured.
    pub spec: LoadSpec,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Completed instances per second, sustained over the run.
    pub instances_per_sec: f64,
    /// Median submit-to-completion latency, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
    /// Worst observed latency, microseconds (exact).
    pub max_micros: u64,
    /// The service's per-shard metrics at shutdown (cross-checked against
    /// the aggregate stats); `None` when the run disabled metrics.
    pub metrics: Option<MetricsSnapshot>,
}

fn summarize(
    spec: LoadSpec,
    wall: Duration,
    latencies: &LogHistogram,
    metrics: Option<MetricsSnapshot>,
) -> LoadResult {
    let wall_secs = wall.as_secs_f64();
    LoadResult {
        spec,
        wall_secs,
        instances_per_sec: spec.instances as f64 / wall_secs.max(f64::MIN_POSITIVE),
        p50_micros: latencies.value_at_quantile(0.50),
        p95_micros: latencies.value_at_quantile(0.95),
        p99_micros: latencies.value_at_quantile(0.99),
        max_micros: latencies.max(),
        metrics,
    }
}

/// Verify one completed instance and return its latency in microseconds.
///
/// # Panics
/// Panics when an instance loses its result, completes under the wrong key,
/// returns the wrong number of outcomes, or fails to elect a unique winner —
/// the load generator doubles as a correctness harness.
fn verify(expected_key: u64, n: usize, ticket: Ticket) -> u64 {
    let result = ticket.wait().expect("no instance result may be lost");
    assert_eq!(result.key, expected_key, "results must not cross instances");
    assert_eq!(
        result.outcomes.len(),
        n,
        "every participant of instance {expected_key} must return"
    );
    assert!(
        result.winner().is_some(),
        "instance {expected_key} must elect exactly one winner"
    );
    u64::try_from(result.latency.as_micros()).unwrap_or(u64::MAX)
}

/// Submit, retrying transient [`SubmitError::Overloaded`] refusals with
/// jittered exponential backoff (50 µs doubling to a 5 ms cap, plus a
/// deterministic key-seeded jitter to decorrelate competing submitters).
/// Gives up after `max_attempts`, returning the last refusal.
///
/// # Errors
/// Whatever the final `submit` attempt returned.
pub fn submit_with_retry(
    service: &ElectionService,
    spec: InstanceSpec,
    max_attempts: u32,
) -> Result<Ticket, SubmitError> {
    let mut backoff_micros = 50u64;
    let mut attempt = 0u32;
    loop {
        match service.submit(spec) {
            Err(SubmitError::Overloaded) if attempt + 1 < max_attempts => {
                let jitter =
                    fle_model::splitmix64(spec.key ^ u64::from(attempt)) % backoff_micros.max(1);
                std::thread::sleep(Duration::from_micros(backoff_micros + jitter));
                backoff_micros = (backoff_micros * 2).min(5_000);
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Closed-loop load: `spec.clients` threads, each keeping one instance in
/// flight, until `spec.instances` have completed.
///
/// # Panics
/// Panics on any correctness violation (lost/duplicate/cross-keyed result,
/// no unique winner, accounting imbalance) — see the internal `verify` pass.
pub fn closed_loop(spec: LoadSpec) -> LoadResult {
    run_closed_loop(spec, true)
}

/// [`closed_loop`] with the per-shard metrics recorders on or off — the
/// off variant exists for the metrics-overhead gate
/// ([`metrics_smoke_check`]).
fn run_closed_loop(spec: LoadSpec, metrics: bool) -> LoadResult {
    let service =
        ElectionService::new(ServiceConfig::new(spec.shards, spec.backend).with_metrics(metrics));
    let start = Instant::now();
    let latencies: LogHistogram = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..spec.clients)
            .map(|client| {
                scope.spawn(move || {
                    // Client `c` owns keys c, c+clients, c+2·clients, …:
                    // disjoint by construction, so nothing is ever duplicated.
                    let mut latencies = LogHistogram::new();
                    let mut index = client;
                    while index < spec.instances {
                        let key = spec.base_key + index as u64;
                        let ticket = service
                            .submit(InstanceSpec::election(key, spec.n))
                            .expect("disjoint fresh keys are always accepted");
                        latencies.record(verify(key, spec.n, ticket));
                        index += spec.clients;
                    }
                    latencies
                })
            })
            .collect();
        let mut merged = LogHistogram::new();
        for handle in handles {
            merged.merge(&handle.join().expect("client threads do not panic"));
        }
        merged
    });
    let wall = start.elapsed();
    let (stats, snapshot) = service.shutdown_with_metrics();
    assert_eq!(
        stats.completed, spec.instances as u64,
        "the service must complete exactly the submitted instances"
    );
    assert_eq!(
        latencies.count(),
        spec.instances as u64,
        "one result per instance"
    );
    stats
        .check_invariant()
        .expect("the service accounting must balance");
    if let Some(snapshot) = &snapshot {
        stats
            .check_metrics(snapshot)
            .expect("the per-shard metrics must agree with the aggregate stats");
    }
    summarize(spec, wall, &latencies, snapshot)
}

/// Open-loop load: submit every instance at a fixed target rate (per
/// second), then drain all tickets. Queueing delay shows up in the latency
/// percentiles instead of throttling the submission rate; transient
/// `Overloaded` refusals are retried with backoff ([`submit_with_retry`]).
///
/// # Panics
/// Panics on the same correctness violations as [`closed_loop`], and when a
/// submission is still refused after exhausting its retries.
pub fn open_loop(spec: LoadSpec, rate_per_sec: f64) -> LoadResult {
    assert!(rate_per_sec > 0.0, "the target rate must be positive");
    let service = ElectionService::new(ServiceConfig::new(spec.shards, spec.backend));
    let gap = Duration::from_secs_f64(1.0 / rate_per_sec);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(spec.instances);
    for index in 0..spec.instances {
        // Pace against the ideal schedule, not the previous send, so a slow
        // submit does not permanently lower the offered rate.
        let due = start + gap * index as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let key = spec.base_key + index as u64;
        tickets.push(
            submit_with_retry(&service, InstanceSpec::election(key, spec.n), 16)
                .expect("fresh keys are admitted within the retry budget"),
        );
    }
    let mut latencies = LogHistogram::new();
    for (index, ticket) in tickets.into_iter().enumerate() {
        latencies.record(verify(spec.base_key + index as u64, spec.n, ticket));
    }
    let wall = start.elapsed();
    let (stats, snapshot) = service.shutdown_with_metrics();
    assert_eq!(stats.completed, spec.instances as u64);
    stats
        .check_invariant()
        .expect("the service accounting must balance");
    if let Some(snapshot) = &snapshot {
        stats
            .check_metrics(snapshot)
            .expect("the per-shard metrics must agree with the aggregate stats");
    }
    summarize(spec, wall, &latencies, snapshot)
}

/// One overload configuration: open-loop past capacity, no retries.
#[derive(Debug, Clone, Copy)]
pub struct OverloadSpec {
    /// Service shards (worker threads).
    pub shards: usize,
    /// Bound of each shard's admission queue.
    pub queue_capacity: usize,
    /// System size of each instance.
    pub n: usize,
    /// Submission attempts to offer.
    pub instances: usize,
    /// The overload policy under test.
    pub policy: OverloadPolicy,
    /// Base for the per-instance keys/seeds.
    pub base_key: u64,
}

impl OverloadSpec {
    /// The standard overload shape: `shards` workers with short queues of
    /// 32, four-processor elections, [`OverloadPolicy::Shed`].
    pub fn shed(shards: usize, instances: usize, n: usize) -> Self {
        OverloadSpec {
            shards,
            queue_capacity: 32,
            n,
            instances,
            policy: OverloadPolicy::Shed,
            base_key: 0,
        }
    }
}

/// The measurement of one overload run.
#[derive(Debug, Clone, Copy)]
pub struct OverloadResult {
    /// The configuration measured.
    pub spec: OverloadSpec,
    /// The offered submission rate, per second.
    pub offered_per_sec: f64,
    /// Offered rate as a multiple of the measured sustainable rate.
    pub multiplier: f64,
    /// Submission attempts made.
    pub offered: u64,
    /// Submissions admitted to a queue.
    pub admitted: u64,
    /// Admitted instances that completed correctly.
    pub completed: u64,
    /// Submissions refused at the door (`Overloaded`).
    pub refused: u64,
    /// Admitted jobs later dropped (displaced by `DropOldest`, expired, or
    /// drained at shutdown).
    pub dropped: u64,
    /// Completed instances per second of wall clock — the *goodput*.
    pub goodput_per_sec: f64,
    /// Fraction of offered work not completed (refused + dropped).
    pub shed_fraction: f64,
    /// Median admitted-work latency, microseconds.
    pub p50_micros: u64,
    /// 99th-percentile admitted-work latency, microseconds.
    pub p99_micros: u64,
    /// Highest queue depth any shard reached (must stay ≤ capacity).
    pub max_queue_depth: usize,
}

/// Open-loop load *past* capacity with **no** retry: a refusal is a counted
/// shed, not an error. Measures what admission control is for — bounded
/// queues, bounded admitted-work latency, and goodput that holds up while
/// excess load is turned away.
///
/// # Panics
/// Panics when an *admitted* instance is lost, duplicated, or mis-elected,
/// or when the service accounting imbalances — shedding must never corrupt
/// admitted work.
pub fn open_loop_overload(spec: OverloadSpec, rate_per_sec: f64) -> OverloadResult {
    open_loop_overload_observed(spec, rate_per_sec).0
}

/// [`open_loop_overload`], also returning the per-shard metrics snapshot so
/// the sweep can attribute where the overload landed.
pub fn open_loop_overload_observed(
    spec: OverloadSpec,
    rate_per_sec: f64,
) -> (OverloadResult, Option<MetricsSnapshot>) {
    assert!(rate_per_sec > 0.0, "the offered rate must be positive");
    let config = ServiceConfig::new(spec.shards, BackendKind::Concurrent)
        .with_queue_capacity(spec.queue_capacity)
        .with_overload_policy(spec.policy);
    let service = ElectionService::new(config);
    let gap = Duration::from_secs_f64(1.0 / rate_per_sec);
    let start = Instant::now();
    let mut tickets: Vec<(u64, Ticket)> = Vec::new();
    let mut refused = 0u64;
    for index in 0..spec.instances {
        let due = start + gap * index as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let key = spec.base_key + index as u64;
        match service.submit(InstanceSpec::election(key, spec.n)) {
            Ok(ticket) => tickets.push((key, ticket)),
            Err(SubmitError::Overloaded) => refused += 1,
            Err(error) => panic!("unexpected refusal for fresh key {key}: {error}"),
        }
    }
    let admitted = tickets.len() as u64;
    let mut latencies = LogHistogram::new();
    let mut dropped = 0u64;
    for (key, ticket) in tickets {
        match ticket.wait() {
            Ok(result) => {
                assert_eq!(result.key, key, "results must not cross instances");
                assert_eq!(result.outcomes.len(), spec.n);
                assert!(result.winner().is_some(), "instance {key}");
                latencies.record(u64::try_from(result.latency.as_micros()).unwrap_or(u64::MAX));
            }
            // An admitted-then-dropped job (displaced, expired, or drained)
            // is a counted shed; losing the *channel* would be a bug caught
            // by `wait` returning ServiceShutdown only after real shutdown.
            Err(SubmitError::Overloaded | SubmitError::DeadlineExceeded(_)) => dropped += 1,
            Err(error) => panic!("admitted instance {key} failed: {error}"),
        }
    }
    let wall = start.elapsed();
    let (stats, snapshot) = service.shutdown_with_metrics();
    stats
        .check_invariant()
        .expect("shedding must not unbalance the accounting");
    assert_eq!(stats.submitted, admitted, "admission accounting");
    assert_eq!(stats.completed, latencies.count(), "completion accounting");
    assert_eq!(stats.rejected, refused, "refusal accounting");
    if let Some(snapshot) = &snapshot {
        stats
            .check_metrics(snapshot)
            .expect("the per-shard metrics must agree even under overload");
    }
    let completed = latencies.count();
    let offered = spec.instances as u64;
    let result = OverloadResult {
        spec,
        offered_per_sec: rate_per_sec,
        multiplier: 0.0, // stamped by the caller when a sustainable rate is known
        offered,
        admitted,
        completed,
        refused,
        dropped,
        goodput_per_sec: completed as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
        shed_fraction: (offered - completed) as f64 / offered.max(1) as f64,
        p50_micros: latencies.value_at_quantile(0.50),
        p99_micros: latencies.value_at_quantile(0.99),
        max_queue_depth: stats.max_queue_depth,
    };
    (result, snapshot)
}

/// Measure the sustainable rate (closed loop), then offer multiples of it
/// open-loop under [`OverloadPolicy::Shed`]: the overload section of the
/// standard recording. Returns the sustainable rate and one result per
/// multiplier. Each sweep point prints its per-shard attribution report
/// (slowest shard, deepest queue, wait:run split) to stdout.
pub fn overload_sweep(
    shards: usize,
    instances: usize,
    n: usize,
    multipliers: &[f64],
) -> (f64, Vec<OverloadResult>) {
    let sustainable = closed_loop(LoadSpec::concurrent(shards, instances, n)).instances_per_sec;
    let results = multipliers
        .iter()
        .enumerate()
        .map(|(index, &multiplier)| {
            let mut spec = OverloadSpec::shed(shards, instances, n);
            // Disjoint key ranges per sweep point (one service per point,
            // but disjointness keeps the latency seeds independent too).
            spec.base_key = 1_000_000 * (index as u64 + 1);
            let (mut result, snapshot) =
                open_loop_overload_observed(spec, sustainable * multiplier);
            result.multiplier = multiplier;
            if let Some(snapshot) = snapshot {
                println!(
                    "overload x{multiplier:.2} ({:.0}/s offered) — per-shard attribution:",
                    result.offered_per_sec
                );
                print!("{}", snapshot.attribution_report());
            }
            result
        })
        .collect();
    (sustainable, results)
}

/// Single-threaded reference: the same instances run back-to-back on the
/// bare backend with no service in front (no shards, no queues, no tickets).
/// The machine-independent yardstick for [`smoke_check`].
pub fn sequential_reference(spec: LoadSpec) -> f64 {
    let registers = std::sync::Arc::new(fle_runtime::SharedRegisters::new(16));
    let backend = spec.backend.build(&registers, None);
    let none = fle_model::CancelToken::none();
    let start = Instant::now();
    for index in 0..spec.instances {
        let key = spec.base_key + index as u64;
        let output = backend
            .run(&InstanceSpec::election(key, spec.n), &none)
            .expect("an uncancelled run completes");
        assert_eq!(output.outcomes.values().filter(|o| o.is_win()).count(), 1);
        registers.retire(key);
    }
    spec.instances as f64 / start.elapsed().as_secs_f64()
}

/// The backend-density sweep: the same closed-loop storm at system sizes
/// n ∈ {4, 16, 64} on both the concurrent and the async backend. The
/// concurrent backend spends n OS threads per in-flight instance (spawned
/// and joined per run), the async backend multiplexes the n participant
/// tasks of every instance over one fixed worker pool — so the gap between
/// the two columns at a given n is the price of thread-per-participant
/// execution, and it widens as n grows. Instance counts shrink with n to
/// keep total work roughly level across the sweep.
pub fn density_sweep(shards: usize) -> Vec<LoadResult> {
    let mut points = Vec::new();
    for (n, instances) in [(4usize, 800usize), (16, 400), (64, 120)] {
        for backend in [BackendKind::Concurrent, BackendKind::Async] {
            points.push(closed_loop(
                LoadSpec::concurrent(shards, instances, n).with_backend(backend),
            ));
        }
    }
    points
}

/// The measurement of one executor-direct density storm
/// ([`executor_density_storm`]).
#[derive(Debug, Clone, Copy)]
pub struct DensityStorm {
    /// Instances staged (all submitted before any task ran).
    pub instances: usize,
    /// System size of each instance.
    pub n: usize,
    /// Worker threads in the executor pool.
    pub task_workers: usize,
    /// Highest number of simultaneously in-flight instances the executor
    /// observed — the density high-water mark.
    pub peak_in_flight: usize,
    /// Wall-clock seconds from worker release to last verified result.
    pub wall_secs: f64,
    /// Completed instances per second over the whole storm.
    pub instances_per_sec: f64,
}

/// Drive the task executor directly — no service, no queues — with
/// `instances` n-participant elections all staged *before any task runs*:
/// the pool starts paused, the whole batch is submitted (so `instances × n`
/// cooperative tasks are genuinely in flight at once — a load shape that
/// would need `instances × n` OS threads on the concurrent backend), and
/// the workers are then released to drain it. Verifies while it measures:
/// every ticket resolves exactly once with n outcomes and one winner
/// (nothing lost, nothing duplicated, namespaces don't interfere), and the
/// executor's in-flight accounting returns to zero. `wall_secs` covers the
/// drain, release to last verified result.
///
/// # Panics
/// Panics on any correctness violation.
pub fn executor_density_storm(instances: usize, n: usize) -> DensityStorm {
    let executor = Executor::new(ExecutorConfig::default().with_start_paused());
    let registers = std::sync::Arc::new(fle_runtime::SharedRegisters::new(4));
    let plan = fle_runtime::FaultPlan::default();
    let tickets: Vec<_> = (0..instances)
        .map(|index| {
            executor.submit(
                &registers,
                index as u64,
                index as u64,
                fle_runtime::election_participants(n),
                &plan,
                fle_model::CancelToken::none(),
            )
        })
        .collect();
    assert_eq!(
        executor.stats().in_flight,
        instances,
        "the paused pool must hold the whole staged batch in flight"
    );
    let start = Instant::now();
    executor.release();
    for (index, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            ExecResult::Completed(report) => {
                assert_eq!(
                    report.outcomes.len(),
                    n,
                    "instance {index}: every participant must return"
                );
                assert_eq!(
                    report.winners().len(),
                    1,
                    "instance {index}: exactly one winner"
                );
            }
            other => panic!("instance {index}: unexpected {other:?}"),
        }
        registers.retire(index as u64);
    }
    let wall = start.elapsed();
    let stats = executor.stats();
    assert_eq!(
        stats.in_flight, 0,
        "every submitted instance must be accounted for"
    );
    executor.shutdown();
    DensityStorm {
        instances,
        n,
        task_workers: stats.workers,
        peak_in_flight: stats.peak_in_flight,
        wall_secs: wall.as_secs_f64(),
        instances_per_sec: instances as f64 / wall.as_secs_f64().max(f64::MIN_POSITIVE),
    }
}

/// Instances of the CI density storm — comfortably above the gate's floor
/// so a few early completions during the submit loop cannot flake it.
pub const DENSITY_STORM_INSTANCES: usize = 6000;

/// System size of each density-storm instance.
pub const DENSITY_STORM_N: usize = 16;

/// The concurrency high-water mark the storm must reach: at least this many
/// instances simultaneously in flight (the "thousands of participants per
/// OS thread" claim, asserted rather than assumed).
pub const DENSITY_MIN_PEAK: usize = 5000;

/// The CI async-smoke gate, two halves:
///
/// 1. **Density**: [`executor_density_storm`] with
///    [`DENSITY_STORM_INSTANCES`] instances of size [`DENSITY_STORM_N`] —
///    every outcome verified (zero lost or duplicate, one winner each,
///    in-flight accounting returns to zero) and the peak concurrency must
///    reach [`DENSITY_MIN_PEAK`], proving the executor really multiplexes
///    thousands of instances over its fixed pool.
/// 2. **Service**: the standard closed-loop smoke storm on
///    `BackendKind::Async` — the same correctness assertions the concurrent
///    smoke makes (one result per key, one winner per instance, balanced
///    accounting invariant, per-shard metrics agreeing with the aggregate).
///
/// # Errors
/// Returns a description of the failure (the correctness assertions inside
/// the storms panic instead — a lost outcome is a bug, not a gate trip).
pub fn async_smoke_check() -> Result<(DensityStorm, f64), String> {
    let storm = executor_density_storm(DENSITY_STORM_INSTANCES, DENSITY_STORM_N);
    if storm.peak_in_flight < DENSITY_MIN_PEAK {
        return Err(format!(
            "the executor never got dense: peak {} concurrent instances across {} staged \
             (floor {DENSITY_MIN_PEAK}) — the in-flight accounting is broken",
            storm.peak_in_flight, storm.instances
        ));
    }
    let spec =
        LoadSpec::concurrent(SMOKE_SHARDS, SMOKE_INSTANCES, 4).with_backend(BackendKind::Async);
    let service = closed_loop(spec);
    Ok((storm, service.instances_per_sec))
}

/// Render load + overload + density results as the `BENCH_service.json`
/// document. `density` is the [`density_sweep`] n-sweep, `storm` the
/// executor-direct [`executor_density_storm`] high-water mark, and `metrics`
/// the per-shard snapshot of one representative closed-loop point (the one
/// whose shard count the overload sweep reuses), serialized as the
/// document's `metrics` section.
pub fn to_json(
    points: &[LoadResult],
    overload: &[OverloadResult],
    density: &[LoadResult],
    storm: Option<&DensityStorm>,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"service_instances_per_sec\",\n");
    out.push_str(
        "  \"workload\": \"closed-loop election storm: `instances` independent n-processor \
         elections over a sharded ElectionService\",\n",
    );
    out.push_str(
        "  \"methodology\": \"clients = 2 x shards closed-loop threads, each keeping one \
         instance in flight; every run asserts exactly one result per key and one winner per \
         instance; latency is submit-to-completion including queueing; concurrent backend = \
         namespaced shared registers, threads per instance = n; percentiles from a log-scaled \
         histogram (<= 1.6% bucket error)\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (index, p) in points.iter().enumerate() {
        let comma = if index + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"shards\": {}, \"instances\": {}, \"n\": {}, \
             \"clients\": {}, \"instances_per_sec\": {:.1}, \"p50_micros\": {}, \
             \"p95_micros\": {}, \"p99_micros\": {}, \"max_micros\": {}}}{comma}",
            p.spec.backend.label(),
            p.spec.shards,
            p.spec.instances,
            p.spec.n,
            p.spec.clients,
            p.instances_per_sec,
            p.p50_micros,
            p.p95_micros,
            p.p99_micros,
            p.max_micros,
        );
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"overload_methodology\": \"open-loop at multiples of the measured sustainable \
         rate, shed policy, queue capacity 32 per shard, no retry: refusals count as shed; \
         goodput = completed/s; latency percentiles cover admitted work only; accounting \
         invariant submitted = completed + failed + shed + drained asserted every run\",\n",
    );
    // NOTE: entries here must not contain the bare key `\"shards\":` — the
    // line-oriented closed-loop parser above matches on it.
    out.push_str("  \"overload\": [\n");
    for (index, o) in overload.iter().enumerate() {
        let comma = if index + 1 < overload.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"policy\": \"{}\", \"worker_shards\": {}, \"queue_capacity\": {}, \
             \"multiplier\": {:.2}, \"offered_per_sec\": {:.1}, \"goodput_per_sec\": {:.1}, \
             \"offered\": {}, \"admitted\": {}, \"completed\": {}, \"refused\": {}, \
             \"dropped\": {}, \"shed_fraction\": {:.3}, \"p50_micros\": {}, \
             \"p99_micros\": {}, \"max_queue_depth\": {}}}{comma}",
            o.spec.policy.label(),
            o.spec.shards,
            o.spec.queue_capacity,
            o.multiplier,
            o.offered_per_sec,
            o.goodput_per_sec,
            o.offered,
            o.admitted,
            o.completed,
            o.refused,
            o.dropped,
            o.shed_fraction,
            o.p50_micros,
            o.p99_micros,
            o.max_queue_depth,
        );
    }
    out.push_str("  ],\n");
    out.push_str(
        "  \"density_methodology\": \"the same closed-loop storm at n in {4, 16, 64} on the \
         concurrent and async backends (instance counts shrink with n to keep total work \
         level): concurrent spawns and joins n OS threads per instance, async multiplexes the \
         n participant tasks over one fixed executor pool, so the per-n gap prices \
         thread-per-participant execution; executor_storm drives the executor directly: the \
         whole batch is staged on a paused pool, then the workers are released to drain it — \
         peak_in_flight is the measured concurrency high-water mark, instances_per_sec the \
         drain rate, with every outcome verified (none lost, none duplicated, one winner \
         each)\",\n",
    );
    // NOTE: density entries use `worker_shards`, never the bare `"shards":`
    // key the line-oriented closed-loop parser matches on.
    out.push_str("  \"density\": [\n");
    for (index, p) in density.iter().enumerate() {
        let comma = if index + 1 < density.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"worker_shards\": {}, \"n\": {}, \"instances\": {}, \
             \"clients\": {}, \"instances_per_sec\": {:.1}, \"p50_micros\": {}, \
             \"p95_micros\": {}, \"p99_micros\": {}, \"max_micros\": {}}}{comma}",
            p.spec.backend.label(),
            p.spec.shards,
            p.spec.n,
            p.spec.instances,
            p.spec.clients,
            p.instances_per_sec,
            p.p50_micros,
            p.p95_micros,
            p.p99_micros,
            p.max_micros,
        );
    }
    out.push_str("  ]");
    if let Some(s) = storm {
        out.push_str(",\n");
        let _ = write!(
            out,
            "  \"executor_storm\": {{\"instances\": {}, \"n\": {}, \"task_workers\": {}, \
             \"peak_in_flight\": {}, \"wall_secs\": {:.3}, \"instances_per_sec\": {:.1}}}",
            s.instances, s.n, s.task_workers, s.peak_in_flight, s.wall_secs, s.instances_per_sec,
        );
    }
    if let Some(snapshot) = metrics {
        out.push_str(",\n");
        out.push_str(
            "  \"metrics_methodology\": \"per-shard recorders sampled at shutdown of one \
             representative closed-loop point; wait = submit-to-dequeue, run = dequeue-to-\
             terminal; histogram quantiles <= 1.6% bucket error; per-shard sums cross-checked \
             against the aggregate ServiceStats every run\",\n",
        );
        // The snapshot serializer never emits a bare `"shards":` key (it
        // uses `worker_shards`/`per_shard`), so the line-oriented
        // closed-loop parser above stays safe.
        let _ = write!(
            out,
            "  \"metrics\": {}",
            snapshot.to_json("  ").trim_start()
        );
    }
    out.push_str("\n}\n");
    out
}

/// The tracked `BENCH_service.json` at the workspace root.
pub fn service_bench_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json")
}

/// Everything one standard recording measures (and writes to
/// `BENCH_service.json`).
#[derive(Debug, Clone)]
pub struct Recording {
    /// The closed-loop shard-sweep points.
    pub points: Vec<LoadResult>,
    /// The backend-density n-sweep points ([`density_sweep`]).
    pub density: Vec<LoadResult>,
    /// The executor-direct density storm ([`executor_density_storm`]).
    pub storm: DensityStorm,
}

/// Measure the given specs plus the overload sweep, the backend-density
/// n-sweep, and the executor density storm, and write the document at
/// `path`.
pub fn record(path: &Path, specs: &[LoadSpec], overload_shards: usize) -> Recording {
    let points: Vec<LoadResult> = specs.iter().map(|&spec| closed_loop(spec)).collect();
    let (_, overload) = overload_sweep(overload_shards, 800, 4, &[0.5, 1.0, 2.0, 4.0]);
    let density = density_sweep(overload_shards);
    let storm = executor_density_storm(DENSITY_STORM_INSTANCES, DENSITY_STORM_N);
    // The document's `metrics` section: the closed-loop point whose shard
    // count the overload sweep reuses (falling back to the last point).
    let metrics = points
        .iter()
        .find(|p| p.spec.shards == overload_shards)
        .or_else(|| points.last())
        .and_then(|p| p.metrics.as_ref());
    write_or_warn(
        path,
        &to_json(&points, &overload, &density, Some(&storm), metrics),
    );
    Recording {
        points,
        density,
        storm,
    }
}

/// The standard recording: the concurrent backend at shard counts
/// {1, 4, `num_cpus`} (deduplicated), 2000 four-processor elections each,
/// plus the overload sweep, density n-sweep, and executor storm at 4 shards.
pub fn record_default() -> Recording {
    let cpus = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut shard_counts = vec![1usize, 4, cpus];
    shard_counts.sort_unstable();
    shard_counts.dedup();
    let specs: Vec<LoadSpec> = shard_counts
        .into_iter()
        .map(|shards| LoadSpec::concurrent(shards, 2000, 4))
        .collect();
    record(&service_bench_path(), &specs, 4)
}

/// Extract `instances_per_sec` for one shard count from a recorded
/// `BENCH_service.json` (line-oriented, like the baseline parser).
pub fn recorded_instances_per_sec(json: &str, shards: usize) -> Option<f64> {
    let needle = format!("\"shards\": {shards},");
    let line = json.lines().find(|line| line.contains(&needle))?;
    let key = "\"instances_per_sec\": ";
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extract `instances_per_sec` for one `(backend, n)` point of the recorded
/// density sweep (line-oriented, like [`recorded_instances_per_sec`];
/// density lines are the only ones carrying both a `backend` label and a
/// `worker_shards` key).
pub fn recorded_density_instances_per_sec(json: &str, backend: &str, n: usize) -> Option<f64> {
    let backend_needle = format!("\"backend\": \"{backend}\", \"worker_shards\":");
    let n_needle = format!("\"n\": {n},");
    let line = json
        .lines()
        .find(|line| line.contains(&backend_needle) && line.contains(&n_needle))?;
    let key = "\"instances_per_sec\": ";
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Instances of the CI smoke run (the "≥ 1000 concurrent instances" gate).
pub const SMOKE_INSTANCES: usize = 1000;

/// Shard count of the CI smoke run (matches a recorded point).
pub const SMOKE_SHARDS: usize = 4;

/// Absolute regression factor against the recording before the gate even
/// considers failing.
pub const SMOKE_REGRESSION_FACTOR: f64 = 3.0;

/// Machine-independent backstop: the sharded service must retain at least
/// this fraction of the single-threaded sequential throughput *measured in
/// the same run*. Anything lower means the service layer itself (queueing,
/// sharding, retirement) is devouring the backend's throughput — a real
/// regression even on a slow runner.
pub const SMOKE_MIN_SEQUENTIAL_FRACTION: f64 = 1.0 / 3.0;

/// The CI service-smoke gate: run [`SMOKE_INSTANCES`] concurrent-backend
/// instances (correctness asserted throughout — zero lost or duplicate
/// outcomes, one winner each, balanced accounting), then compare throughput
/// with the recorded `BENCH_service.json`.
///
/// Mirrors the baseline smoke gate's two-signal design: fail only when the
/// absolute throughput fell more than [`SMOKE_REGRESSION_FACTOR`]× below the
/// recording **and** the same-run service-vs-sequential ratio dropped below
/// [`SMOKE_MIN_SEQUENTIAL_FRACTION`] — a slow runner passes the second
/// check, a genuine service regression fails both.
///
/// # Errors
/// Returns a description of the failure: unreadable recording or a
/// regression confirmed by both signals.
pub fn smoke_check() -> Result<(f64, f64), String> {
    let path = service_bench_path();
    let json = std::fs::read_to_string(&path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let recorded = recorded_instances_per_sec(&json, SMOKE_SHARDS)
        .ok_or_else(|| format!("no shards={SMOKE_SHARDS} point in {}", path.display()))?;
    let result = closed_loop(LoadSpec::concurrent(SMOKE_SHARDS, SMOKE_INSTANCES, 4));
    let measured = result.instances_per_sec;
    if measured * SMOKE_REGRESSION_FACTOR < recorded {
        let sequential = sequential_reference(LoadSpec::concurrent(1, 200, 4));
        let fraction = measured / sequential;
        if fraction < SMOKE_MIN_SEQUENTIAL_FRACTION {
            return Err(format!(
                "service throughput regressed: measured {measured:.0} instances/s is more \
                 than {SMOKE_REGRESSION_FACTOR}x below the recorded {recorded:.0}, and the \
                 same-run service/sequential ratio {fraction:.2} fell below \
                 {SMOKE_MIN_SEQUENTIAL_FRACTION:.2}"
            ));
        }
        eprintln!(
            "service-smoke note: absolute throughput below the recording \
             (measured {measured:.0} vs recorded {recorded:.0}) but the same-run \
             service/sequential ratio {fraction:.2} is healthy — assuming a slower machine"
        );
    }
    Ok((measured, recorded))
}

/// Maximum slowdown the per-shard metrics layer may cost: metrics-on
/// throughput must stay at least this fraction of metrics-off throughput
/// (the ISSUE budget is 5 %; the gate allows 20 % to absorb CI noise, with
/// one re-measure before failing).
pub const METRICS_MIN_THROUGHPUT_FRACTION: f64 = 0.80;

/// The CI metrics-smoke gate: run the same closed-loop storm with the
/// per-shard recorders on and off, and verify that
///
/// * the instrumented run produces a snapshot whose per-shard sums equal
///   the aggregate `ServiceStats` (asserted inside [`closed_loop`] via
///   `check_metrics`, alongside `check_invariant`),
/// * the snapshot attributes the work — every shard admitted something and
///   wait/run histograms carry one sample per completed instance, and
/// * metrics-on throughput stays within [`METRICS_MIN_THROUGHPUT_FRACTION`]
///   of metrics-off (re-measured once before failing, to damp scheduler
///   noise on shared runners).
///
/// Prints the instrumented run's attribution report. Returns
/// `(metrics_on_per_sec, metrics_off_per_sec)`.
///
/// # Errors
/// Returns a description of the first violated property.
pub fn metrics_smoke_check() -> Result<(f64, f64), String> {
    let spec = LoadSpec::concurrent(SMOKE_SHARDS, SMOKE_INSTANCES, 4);
    let mut on = run_closed_loop(spec, true);
    let snapshot = on
        .metrics
        .take()
        .ok_or_else(|| "the instrumented run produced no metrics snapshot".to_string())?;
    let total = snapshot.aggregate();
    if total.admitted != spec.instances as u64 {
        return Err(format!(
            "per-shard admitted sums to {} but {} instances were submitted",
            total.admitted, spec.instances
        ));
    }
    if total.started() != total.queue_wait_micros.count()
        || total.started() != total.run_micros.count()
    {
        return Err(format!(
            "started {} runs but recorded {} waits and {} run times",
            total.started(),
            total.queue_wait_micros.count(),
            total.run_micros.count()
        ));
    }
    if let Some(idle) = snapshot.per_shard.iter().find(|s| s.admitted == 0) {
        return Err(format!(
            "shard {} admitted nothing across {} instances — routing is not spreading keys",
            idle.shard, spec.instances
        ));
    }
    println!("metrics-smoke attribution ({} instances):", spec.instances);
    print!("{}", snapshot.attribution_report());
    let mut off = run_closed_loop(spec, false);
    if off.metrics.is_some() {
        return Err("the metrics-off run still produced a snapshot".to_string());
    }
    if on.instances_per_sec < off.instances_per_sec * METRICS_MIN_THROUGHPUT_FRACTION {
        // One re-measure: a single descheduled worker can cost more than
        // the whole metrics layer does.
        eprintln!(
            "metrics-smoke note: first pass measured {:.0}/s on vs {:.0}/s off — re-measuring",
            on.instances_per_sec, off.instances_per_sec
        );
        on = run_closed_loop(spec, true);
        off = run_closed_loop(spec, false);
        if on.instances_per_sec < off.instances_per_sec * METRICS_MIN_THROUGHPUT_FRACTION {
            return Err(format!(
                "metrics overhead too high: {:.0} instances/s with recorders vs {:.0} \
                 without (floor {:.0}%)",
                on.instances_per_sec,
                off.instances_per_sec,
                METRICS_MIN_THROUGHPUT_FRACTION * 100.0
            ));
        }
    }
    Ok((on.instances_per_sec, off.instances_per_sec))
}

/// The CI overload-smoke gate: offer **2× the sustainable rate** (measured
/// in the same run) under [`OverloadPolicy::Shed`] and verify that the
/// service sheds instead of degrading:
///
/// * something was refused (the queues actually filled),
/// * admitted work stayed intact — zero lost/duplicate results, one winner
///   each (asserted inside [`open_loop_overload`]),
/// * no queue ever grew past its capacity,
/// * the accounting invariant balanced, and
/// * goodput stayed above a third of the sustainable rate (the service kept
///   serving while turning work away).
///
/// # Errors
/// Returns a description of the first violated property.
pub fn overload_smoke_check() -> Result<(f64, f64), String> {
    let shards = 2;
    let sustainable = closed_loop(LoadSpec::concurrent(shards, 400, 4)).instances_per_sec;
    let mut spec = OverloadSpec::shed(shards, 600, 4);
    spec.base_key = 10_000_000;
    let mut result = open_loop_overload(spec, sustainable * 2.0);
    result.multiplier = 2.0;
    if result.refused == 0 {
        return Err(format!(
            "expected shedding at 2x the sustainable rate ({sustainable:.0}/s), but all \
             {} submissions were admitted — the queues never filled",
            result.offered
        ));
    }
    if result.max_queue_depth > spec.queue_capacity {
        return Err(format!(
            "queue depth {} exceeded the configured capacity {}",
            result.max_queue_depth, spec.queue_capacity
        ));
    }
    if result.completed == 0 {
        return Err("the service completed nothing under overload".to_string());
    }
    if result.goodput_per_sec * 3.0 < sustainable {
        return Err(format!(
            "goodput collapsed under overload: {:.0}/s vs sustainable {sustainable:.0}/s",
            result.goodput_per_sec
        ));
    }
    Ok((result.goodput_per_sec, result.shed_fraction))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_serves_and_verifies_a_small_storm() {
        let result = closed_loop(LoadSpec::concurrent(2, 64, 3));
        assert!(result.instances_per_sec > 0.0);
        assert!(result.p50_micros <= result.p95_micros);
        assert!(result.p95_micros <= result.p99_micros);
        assert!(result.p99_micros <= result.max_micros);
    }

    #[test]
    fn open_loop_completes_at_a_modest_rate() {
        let result = open_loop(LoadSpec::concurrent(2, 20, 3), 2000.0);
        assert!(result.instances_per_sec > 0.0);
        assert!(result.max_micros > 0);
    }

    #[test]
    fn sim_backend_load_also_verifies() {
        let spec = LoadSpec::concurrent(2, 32, 4).with_backend(BackendKind::Sim);
        let result = closed_loop(spec);
        assert!(result.instances_per_sec > 0.0);
    }

    #[test]
    fn retry_with_backoff_eventually_admits_against_a_tiny_queue() {
        let config = ServiceConfig::new(1, BackendKind::Concurrent)
            .with_queue_capacity(1)
            .with_overload_policy(OverloadPolicy::Shed);
        let service = ElectionService::new(config);
        let tickets: Vec<Ticket> = (0..30)
            .map(|key| {
                submit_with_retry(&service, InstanceSpec::election(key, 3), 64)
                    .expect("backoff outlasts a queue of one")
            })
            .collect();
        for (key, ticket) in tickets.into_iter().enumerate() {
            assert_eq!(ticket.wait().unwrap().key, key as u64);
        }
        let stats = service.shutdown();
        assert_eq!(stats.completed, 30);
        stats.check_invariant().unwrap();
    }

    #[test]
    fn overload_sheds_but_never_corrupts_admitted_work() {
        // A rate far past anything 1 shard with a queue of 2 can serve.
        let mut spec = OverloadSpec::shed(1, 200, 3);
        spec.queue_capacity = 2;
        let result = open_loop_overload(spec, 50_000.0);
        assert!(result.refused > 0, "the tiny queue must fill");
        assert!(result.completed > 0, "the service keeps serving");
        assert!(result.max_queue_depth <= 2, "depth bounded by capacity");
        assert_eq!(
            result.offered,
            result.admitted + result.refused,
            "every offer is admitted or refused"
        );
        assert!(result.shed_fraction > 0.0);
    }

    #[test]
    fn json_round_trips_through_the_smoke_parser() {
        let points = vec![closed_loop(LoadSpec::concurrent(1, 16, 3))];
        let mut spec = OverloadSpec::shed(1, 40, 3);
        spec.queue_capacity = 2;
        spec.base_key = 500_000;
        let overload = vec![open_loop_overload(spec, 20_000.0)];
        let density = vec![
            closed_loop(LoadSpec::concurrent(1, 12, 3)),
            closed_loop(LoadSpec::concurrent(1, 12, 3).with_backend(BackendKind::Async)),
        ];
        let storm = executor_density_storm(32, 3);
        let metrics = points[0].metrics.clone();
        let json = to_json(&points, &overload, &density, Some(&storm), metrics.as_ref());
        assert!(json.contains("\"benchmark\": \"service_instances_per_sec\""));
        assert!(json.contains("\"overload\": ["));
        assert!(json.contains("\"policy\": \"shed\""));
        assert!(json.contains("\"density\": ["));
        assert!(json.contains("\"executor_storm\": {"));
        assert!(json.contains("\"peak_in_flight\""));
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"worker_shards\": 1"));
        assert!(json.contains("\"per_shard\": ["));
        let parsed = recorded_instances_per_sec(&json, 1).expect("parseable");
        assert!(
            (parsed - points[0].instances_per_sec).abs() < 1.0,
            "the overload, density and metrics sections must not shadow the closed-loop points"
        );
        assert_eq!(recorded_instances_per_sec(&json, 99), None);
        let dense = recorded_density_instances_per_sec(&json, "async", 3).expect("parseable");
        assert!(
            (dense - density[1].instances_per_sec).abs() < 1.0,
            "the density parser must pick the async point, not the concurrent one"
        );
        assert_eq!(recorded_density_instances_per_sec(&json, "async", 99), None);
    }

    #[test]
    fn json_without_metrics_still_closes_cleanly() {
        let points = vec![closed_loop(LoadSpec::concurrent(1, 8, 3))];
        let json = to_json(&points, &[], &[], None, None);
        assert!(json.trim_end().ends_with('}'));
        assert!(!json.contains("\"metrics\""));
        assert!(!json.contains("\"executor_storm\""));
    }

    #[test]
    fn async_backend_load_also_verifies() {
        let spec = LoadSpec::concurrent(2, 32, 4).with_backend(BackendKind::Async);
        let result = closed_loop(spec);
        assert!(result.instances_per_sec > 0.0);
    }

    #[test]
    fn executor_density_storm_holds_every_instance_in_flight() {
        let storm = executor_density_storm(200, 4);
        assert_eq!(storm.instances, 200);
        assert_eq!(
            storm.peak_in_flight, 200,
            "the staged batch is fully in flight before the workers are released"
        );
        assert!(storm.task_workers >= 2);
        assert!(storm.instances_per_sec > 0.0);
    }

    #[test]
    fn closed_loop_snapshot_attributes_every_instance() {
        let result = closed_loop(LoadSpec::concurrent(2, 64, 3));
        let snapshot = result.metrics.expect("metrics are on by default");
        let total = snapshot.aggregate();
        assert_eq!(total.admitted, 64);
        assert_eq!(total.completed, 64);
        assert_eq!(total.queue_wait_micros.count(), 64);
        assert_eq!(total.run_micros.count(), 64);
        assert_eq!(snapshot.per_shard.len(), 2);
    }

    #[test]
    fn sequential_reference_is_positive() {
        assert!(sequential_reference(LoadSpec::concurrent(1, 8, 3)) > 0.0);
    }
}
