//! Load generation against the sharded [`fle_service::ElectionService`].
//!
//! Two generator shapes, the standard pair for services:
//!
//! * **closed loop** ([`closed_loop`]) — `clients` threads, each submitting
//!   its next instance only after the previous one completed; measures the
//!   *sustained* instances/second the service can serve at that concurrency,
//!   with per-instance latencies for tail percentiles.
//! * **open loop** ([`open_loop`]) — a single submitter paces submissions at
//!   a target rate regardless of completions, so queueing shows up as
//!   latency rather than as throttled throughput.
//!
//! Every run verifies correctness while it measures: exactly one result per
//! submitted key (nothing lost, nothing duplicated) and exactly one winner
//! per election instance. The standard recording ([`record_default`]) sweeps
//! the concurrent backend at shard counts {1, 4, `num_cpus`} and writes
//! `BENCH_service.json`; [`smoke_check`] is the CI gate over that recording.

use crate::json::write_or_warn;
use fle_service::{BackendKind, ElectionService, InstanceSpec, ServiceConfig, Ticket};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One load-generation configuration.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// The backend instances execute on.
    pub backend: BackendKind,
    /// Service shards (worker threads).
    pub shards: usize,
    /// Total instances to run.
    pub instances: usize,
    /// System size of each instance.
    pub n: usize,
    /// Closed-loop client threads (ignored by [`open_loop`]).
    pub clients: usize,
    /// Base for the per-instance keys/seeds.
    pub base_key: u64,
}

impl LoadSpec {
    /// A closed-loop spec on the concurrent backend: `instances` elections
    /// of size `n` over `shards` shards, with twice as many clients as
    /// shards (enough to keep every shard busy).
    pub fn concurrent(shards: usize, instances: usize, n: usize) -> Self {
        LoadSpec {
            backend: BackendKind::Concurrent,
            shards,
            instances,
            n,
            clients: (shards * 2).max(2),
            base_key: 0,
        }
    }

    /// Use a different backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }
}

/// The measurement of one load run.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// The configuration measured.
    pub spec: LoadSpec,
    /// Wall-clock seconds for the whole run.
    pub wall_secs: f64,
    /// Completed instances per second, sustained over the run.
    pub instances_per_sec: f64,
    /// Median submit-to-completion latency, microseconds.
    pub p50_micros: u64,
    /// 95th-percentile latency, microseconds.
    pub p95_micros: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: u64,
    /// Worst observed latency, microseconds.
    pub max_micros: u64,
}

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let rank = ((sorted_micros.len() as f64 - 1.0) * p).round() as usize;
    sorted_micros[rank.min(sorted_micros.len() - 1)]
}

fn summarize(spec: LoadSpec, wall: Duration, mut latencies_micros: Vec<u64>) -> LoadResult {
    latencies_micros.sort_unstable();
    let wall_secs = wall.as_secs_f64();
    LoadResult {
        spec,
        wall_secs,
        instances_per_sec: spec.instances as f64 / wall_secs.max(f64::MIN_POSITIVE),
        p50_micros: percentile(&latencies_micros, 0.50),
        p95_micros: percentile(&latencies_micros, 0.95),
        p99_micros: percentile(&latencies_micros, 0.99),
        max_micros: latencies_micros.last().copied().unwrap_or(0),
    }
}

/// Verify one completed instance and return its latency in microseconds.
///
/// # Panics
/// Panics when an instance loses its result, completes under the wrong key,
/// returns the wrong number of outcomes, or fails to elect a unique winner —
/// the load generator doubles as a correctness harness.
fn verify(expected_key: u64, n: usize, ticket: Ticket) -> u64 {
    let result = ticket.wait().expect("no instance result may be lost");
    assert_eq!(result.key, expected_key, "results must not cross instances");
    assert_eq!(
        result.outcomes.len(),
        n,
        "every participant of instance {expected_key} must return"
    );
    assert!(
        result.winner().is_some(),
        "instance {expected_key} must elect exactly one winner"
    );
    u64::try_from(result.latency.as_micros()).unwrap_or(u64::MAX)
}

/// Closed-loop load: `spec.clients` threads, each keeping one instance in
/// flight, until `spec.instances` have completed.
///
/// # Panics
/// Panics on any correctness violation (lost/duplicate/cross-keyed result,
/// no unique winner) — see the internal `verify` pass.
pub fn closed_loop(spec: LoadSpec) -> LoadResult {
    let service = ElectionService::new(ServiceConfig::new(spec.shards, spec.backend));
    let start = Instant::now();
    let latencies: Vec<u64> = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = (0..spec.clients)
            .map(|client| {
                scope.spawn(move || {
                    // Client `c` owns keys c, c+clients, c+2·clients, …:
                    // disjoint by construction, so nothing is ever duplicated.
                    let mut latencies = Vec::new();
                    let mut index = client;
                    while index < spec.instances {
                        let key = spec.base_key + index as u64;
                        let ticket = service
                            .submit(InstanceSpec::election(key, spec.n))
                            .expect("disjoint fresh keys are always accepted");
                        latencies.push(verify(key, spec.n, ticket));
                        index += spec.clients;
                    }
                    latencies
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("client threads do not panic"))
            .collect()
    });
    let wall = start.elapsed();
    let stats = service.shutdown();
    assert_eq!(
        stats.completed, spec.instances as u64,
        "the service must complete exactly the submitted instances"
    );
    assert_eq!(latencies.len(), spec.instances, "one result per instance");
    summarize(spec, wall, latencies)
}

/// Open-loop load: submit every instance at a fixed target rate (per
/// second), then drain all tickets. Queueing delay shows up in the latency
/// percentiles instead of throttling the submission rate.
///
/// # Panics
/// Panics on the same correctness violations as [`closed_loop`].
pub fn open_loop(spec: LoadSpec, rate_per_sec: f64) -> LoadResult {
    assert!(rate_per_sec > 0.0, "the target rate must be positive");
    let service = ElectionService::new(ServiceConfig::new(spec.shards, spec.backend));
    let gap = Duration::from_secs_f64(1.0 / rate_per_sec);
    let start = Instant::now();
    let mut tickets = Vec::with_capacity(spec.instances);
    for index in 0..spec.instances {
        // Pace against the ideal schedule, not the previous send, so a slow
        // submit does not permanently lower the offered rate.
        let due = start + gap * index as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let key = spec.base_key + index as u64;
        tickets.push(
            service
                .submit(InstanceSpec::election(key, spec.n))
                .expect("fresh keys are always accepted"),
        );
    }
    let latencies: Vec<u64> = tickets
        .into_iter()
        .enumerate()
        .map(|(index, ticket)| verify(spec.base_key + index as u64, spec.n, ticket))
        .collect();
    let wall = start.elapsed();
    let stats = service.shutdown();
    assert_eq!(stats.completed, spec.instances as u64);
    summarize(spec, wall, latencies)
}

/// Single-threaded reference: the same instances run back-to-back on the
/// bare backend with no service in front (no shards, no queues, no tickets).
/// The machine-independent yardstick for [`smoke_check`].
pub fn sequential_reference(spec: LoadSpec) -> f64 {
    let registers = std::sync::Arc::new(fle_runtime::SharedRegisters::new(16));
    let backend = spec.backend.build(&registers);
    let start = Instant::now();
    for index in 0..spec.instances {
        let key = spec.base_key + index as u64;
        let outcomes = backend.run_instance(&InstanceSpec::election(key, spec.n));
        assert_eq!(outcomes.values().filter(|o| o.is_win()).count(), 1);
        registers.retire(key);
    }
    spec.instances as f64 / start.elapsed().as_secs_f64()
}

/// Render load results as the `BENCH_service.json` document.
pub fn to_json(points: &[LoadResult]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"service_instances_per_sec\",\n");
    out.push_str(
        "  \"workload\": \"closed-loop election storm: `instances` independent n-processor \
         elections over a sharded ElectionService\",\n",
    );
    out.push_str(
        "  \"methodology\": \"clients = 2 x shards closed-loop threads, each keeping one \
         instance in flight; every run asserts exactly one result per key and one winner per \
         instance; latency is submit-to-completion including queueing; concurrent backend = \
         namespaced shared registers, threads per instance = n\",\n",
    );
    out.push_str("  \"points\": [\n");
    for (index, p) in points.iter().enumerate() {
        let comma = if index + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"backend\": \"{}\", \"shards\": {}, \"instances\": {}, \"n\": {}, \
             \"clients\": {}, \"instances_per_sec\": {:.1}, \"p50_micros\": {}, \
             \"p95_micros\": {}, \"p99_micros\": {}, \"max_micros\": {}}}{comma}",
            p.spec.backend.label(),
            p.spec.shards,
            p.spec.instances,
            p.spec.n,
            p.spec.clients,
            p.instances_per_sec,
            p.p50_micros,
            p.p95_micros,
            p.p99_micros,
            p.max_micros,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The tracked `BENCH_service.json` at the workspace root.
pub fn service_bench_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json")
}

/// Measure the given specs and write the document at `path`.
pub fn record(path: &Path, specs: &[LoadSpec]) -> Vec<LoadResult> {
    let points: Vec<LoadResult> = specs.iter().map(|&spec| closed_loop(spec)).collect();
    write_or_warn(path, &to_json(&points));
    points
}

/// The standard recording: the concurrent backend at shard counts
/// {1, 4, `num_cpus`} (deduplicated), 2000 four-processor elections each.
pub fn record_default() -> Vec<LoadResult> {
    let cpus = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    let mut shard_counts = vec![1usize, 4, cpus];
    shard_counts.sort_unstable();
    shard_counts.dedup();
    let specs: Vec<LoadSpec> = shard_counts
        .into_iter()
        .map(|shards| LoadSpec::concurrent(shards, 2000, 4))
        .collect();
    record(&service_bench_path(), &specs)
}

/// Extract `instances_per_sec` for one shard count from a recorded
/// `BENCH_service.json` (line-oriented, like the baseline parser).
pub fn recorded_instances_per_sec(json: &str, shards: usize) -> Option<f64> {
    let needle = format!("\"shards\": {shards},");
    let line = json.lines().find(|line| line.contains(&needle))?;
    let key = "\"instances_per_sec\": ";
    let start = line.find(key)? + key.len();
    let rest = &line[start..];
    let end = rest.find(',').unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Instances of the CI smoke run (the "≥ 1000 concurrent instances" gate).
pub const SMOKE_INSTANCES: usize = 1000;

/// Shard count of the CI smoke run (matches a recorded point).
pub const SMOKE_SHARDS: usize = 4;

/// Absolute regression factor against the recording before the gate even
/// considers failing.
pub const SMOKE_REGRESSION_FACTOR: f64 = 3.0;

/// Machine-independent backstop: the sharded service must retain at least
/// this fraction of the single-threaded sequential throughput *measured in
/// the same run*. Anything lower means the service layer itself (queueing,
/// sharding, retirement) is devouring the backend's throughput — a real
/// regression even on a slow runner.
pub const SMOKE_MIN_SEQUENTIAL_FRACTION: f64 = 1.0 / 3.0;

/// The CI service-smoke gate: run [`SMOKE_INSTANCES`] concurrent-backend
/// instances (correctness asserted throughout — zero lost or duplicate
/// outcomes, one winner each), then compare throughput with the recorded
/// `BENCH_service.json`.
///
/// Mirrors the baseline smoke gate's two-signal design: fail only when the
/// absolute throughput fell more than [`SMOKE_REGRESSION_FACTOR`]× below the
/// recording **and** the same-run service-vs-sequential ratio dropped below
/// [`SMOKE_MIN_SEQUENTIAL_FRACTION`] — a slow runner passes the second
/// check, a genuine service regression fails both.
///
/// # Errors
/// Returns a description of the failure: unreadable recording or a
/// regression confirmed by both signals.
pub fn smoke_check() -> Result<(f64, f64), String> {
    let path = service_bench_path();
    let json = std::fs::read_to_string(&path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    let recorded = recorded_instances_per_sec(&json, SMOKE_SHARDS)
        .ok_or_else(|| format!("no shards={SMOKE_SHARDS} point in {}", path.display()))?;
    let result = closed_loop(LoadSpec::concurrent(SMOKE_SHARDS, SMOKE_INSTANCES, 4));
    let measured = result.instances_per_sec;
    if measured * SMOKE_REGRESSION_FACTOR < recorded {
        let sequential = sequential_reference(LoadSpec::concurrent(1, 200, 4));
        let fraction = measured / sequential;
        if fraction < SMOKE_MIN_SEQUENTIAL_FRACTION {
            return Err(format!(
                "service throughput regressed: measured {measured:.0} instances/s is more \
                 than {SMOKE_REGRESSION_FACTOR}x below the recorded {recorded:.0}, and the \
                 same-run service/sequential ratio {fraction:.2} fell below \
                 {SMOKE_MIN_SEQUENTIAL_FRACTION:.2}"
            ));
        }
        eprintln!(
            "service-smoke note: absolute throughput below the recording \
             (measured {measured:.0} vs recorded {recorded:.0}) but the same-run \
             service/sequential ratio {fraction:.2} is healthy — assuming a slower machine"
        );
    }
    Ok((measured, recorded))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_serves_and_verifies_a_small_storm() {
        let result = closed_loop(LoadSpec::concurrent(2, 64, 3));
        assert!(result.instances_per_sec > 0.0);
        assert!(result.p50_micros <= result.p95_micros);
        assert!(result.p95_micros <= result.p99_micros);
        assert!(result.p99_micros <= result.max_micros);
    }

    #[test]
    fn open_loop_completes_at_a_modest_rate() {
        let result = open_loop(LoadSpec::concurrent(2, 20, 3), 2000.0);
        assert!(result.instances_per_sec > 0.0);
        assert!(result.max_micros > 0);
    }

    #[test]
    fn sim_backend_load_also_verifies() {
        let spec = LoadSpec::concurrent(2, 32, 4).with_backend(BackendKind::Sim);
        let result = closed_loop(spec);
        assert!(result.instances_per_sec > 0.0);
    }

    #[test]
    fn json_round_trips_through_the_smoke_parser() {
        let points = vec![closed_loop(LoadSpec::concurrent(1, 16, 3))];
        let json = to_json(&points);
        assert!(json.contains("\"benchmark\": \"service_instances_per_sec\""));
        let parsed = recorded_instances_per_sec(&json, 1).expect("parseable");
        assert!((parsed - points[0].instances_per_sec).abs() < 1.0);
        assert_eq!(recorded_instances_per_sec(&json, 99), None);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.50), 51);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
    }

    #[test]
    fn sequential_reference_is_positive() {
        assert!(sequential_reference(LoadSpec::concurrent(1, 8, 3)) > 0.0);
    }
}
