//! The partitioned-simulator throughput benchmark: one giant election,
//! partitioned across worker threads.
//!
//! Measures k-of-n leader elections driven by the canonical super-round
//! schedule of [`fle_sim::ParallelSimulator`] (crash-free
//! [`fle_sim::RoundCrashPlan`]), in events per second, at several partition
//! counts. Because canonical-mode reports are *identical for every partition
//! count* (the differential tests pin this), the ratios are pure cost
//! measurements of the same execution — scaling efficiency is
//! `events_per_sec(p) / (p × events_per_sec(1))`.
//!
//! The results extend `BENCH_baseline.json` with a `parallel` section;
//! [`record_parallel_preserving`] performs line-oriented surgery that keeps
//! the recorded sequential `points` byte-for-byte intact, so the historical
//! engine trajectory is never disturbed by re-running the parallel sweep on
//! a different machine.
//!
//! [`parallel_smoke_check`] is the CI gate: a small run at p = 2 must
//! produce *exactly* the outcomes, metrics and event count of p = 1 (hard
//! failure), while the measured efficiency is only reported (single-core CI
//! runners cannot meaningfully gate on speedup).

use crate::json::write_or_warn;
use fle_core::LeaderElection;
use fle_model::ProcId;
use fle_sim::{ParallelSimulator, RoundCrashPlan, SimConfig};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Throughput at one partition count.
#[derive(Debug, Clone)]
pub struct PartitionSample {
    /// Partition count (== worker threads used, up to the core count).
    pub partitions: usize,
    /// Events per second.
    pub events_per_sec: f64,
}

/// The parallel benchmark at one system size.
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    /// System size (replica count).
    pub n: usize,
    /// Number of contenders (processors `0..k` participate).
    pub k: usize,
    /// Seeds measured per partition count.
    pub trials: u64,
    /// Total events across all trials (identical at every partition count).
    pub events: u64,
    /// One sample per measured partition count, ascending.
    pub samples: Vec<PartitionSample>,
}

impl ParallelPoint {
    /// Throughput at p = 1, the scaling reference.
    pub fn base_events_per_sec(&self) -> f64 {
        self.samples
            .iter()
            .find(|s| s.partitions == 1)
            .map_or(f64::NAN, |s| s.events_per_sec)
    }

    /// `events_per_sec(p) / (p × events_per_sec(1))` for one sample.
    pub fn efficiency(&self, sample: &PartitionSample) -> f64 {
        sample.events_per_sec / (sample.partitions as f64 * self.base_events_per_sec())
    }

    /// `events_per_sec(p) / events_per_sec(1)` for one sample.
    pub fn speedup(&self, sample: &PartitionSample) -> f64 {
        sample.events_per_sec / self.base_events_per_sec()
    }
}

/// Run `trials` seeded canonical-mode elections of `k` contenders among `n`
/// processors over `partitions` partitions; returns `(seconds, events)`.
pub fn run_parallel_elections(n: usize, k: usize, partitions: usize, trials: u64) -> (f64, u64) {
    let plan = RoundCrashPlan::none();
    let mut events = 0u64;
    let start = Instant::now();
    for seed in 0..trials {
        let config = SimConfig::new(n)
            .with_seed(seed)
            .with_partitions(partitions);
        let mut sim = ParallelSimulator::new(config);
        for i in 0..k {
            sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
        }
        let report = sim.run_canonical(&plan).expect("election terminates");
        assert_eq!(report.winners().len(), 1, "one leader per election");
        events += report.events_executed;
    }
    (start.elapsed().as_secs_f64(), events)
}

/// The partition counts to measure: `{1, 2, num_cpus}`, deduplicated and
/// ascending. On a single-core machine this is `{1, 2}` — recorded honestly;
/// p = 2 then measures pure partitioning overhead, not speedup.
pub fn partition_counts() -> Vec<usize> {
    let cpus = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1);
    let mut counts = vec![1, 2, cpus];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Measure one system size at every partition count of
/// [`partition_counts`].
pub fn measure_parallel_point(n: usize, k: usize, trials: u64) -> ParallelPoint {
    let mut samples = Vec::new();
    let mut events = 0u64;
    for partitions in partition_counts() {
        let (secs, total) = run_parallel_elections(n, k, partitions, trials);
        if events == 0 {
            events = total;
        } else {
            assert_eq!(
                events, total,
                "canonical runs must be partition-count independent"
            );
        }
        samples.push(PartitionSample {
            partitions,
            events_per_sec: total as f64 / secs,
        });
    }
    ParallelPoint {
        n,
        k,
        trials,
        events,
        samples,
    }
}

/// The standard parallel sweep: one giant election per size class. The
/// contender counts keep each measurement in the seconds range while the
/// replica count (and with it the per-call quorum traffic) grows to the
/// hundreds of thousands.
pub fn measure_parallel_default() -> Vec<ParallelPoint> {
    vec![
        measure_parallel_point(4096, 64, 2),
        measure_parallel_point(65536, 48, 1),
        measure_parallel_point(262_144, 24, 1),
    ]
}

/// Render the `parallel` section lines of `BENCH_baseline.json`.
pub fn parallel_section_json(points: &[ParallelPoint]) -> String {
    let mut out = String::new();
    out.push_str(
        "  \"parallel_workload\": \"k-of-n leader election, canonical super-round schedule, \
         crash-free, partitioned engine\",\n",
    );
    let _ = writeln!(
        out,
        "  \"parallel_methodology\": \"wall clock over `trials` seeded canonical runs; reports \
         are identical at every partition count (differential-tested), so ratios are pure cost; \
         efficiency = events_per_sec(p) / (p * events_per_sec(1)); measured partition counts \
         are {{1, 2, num_cpus}} of the recording machine ({} cores)\",",
        std::thread::available_parallelism().map_or(1, |w| w.get())
    );
    out.push_str("  \"parallel\": [\n");
    for (index, point) in points.iter().enumerate() {
        let comma = if index + 1 < points.len() { "," } else { "" };
        let mut samples = String::new();
        for (j, sample) in point.samples.iter().enumerate() {
            let inner_comma = if j + 1 < point.samples.len() {
                ", "
            } else {
                ""
            };
            let _ = write!(
                samples,
                "{{\"p\": {}, \"events_per_sec\": {:.1}, \"speedup\": {:.2}, \
                 \"efficiency\": {:.2}}}{inner_comma}",
                sample.partitions,
                sample.events_per_sec,
                point.speedup(sample),
                point.efficiency(sample),
            );
        }
        let _ = writeln!(
            out,
            "    {{\"n\": {}, \"k\": {}, \"trials\": {}, \"events\": {}, \
             \"partitions\": [{samples}]}}{comma}",
            point.n, point.k, point.trials, point.events,
        );
    }
    out.push_str("  ]\n");
    out
}

/// Splice a `parallel` section into an existing `BENCH_baseline.json`
/// document, keeping every line up to and including the sequential
/// `"points"` array byte-for-byte intact. Any previous `parallel*` section
/// is replaced.
pub fn splice_parallel_section(existing: &str, points: &[ParallelPoint]) -> String {
    let mut out = String::new();
    // Copy the document head verbatim: everything through the line that
    // closes the sequential points array (`  ],`or `  ]`).
    let mut lines = existing.lines();
    let mut in_points = false;
    for line in lines.by_ref() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"points\"") {
            in_points = true;
        }
        if in_points && (trimmed == "]," || trimmed == "]") {
            out.push_str("  ],\n");
            break;
        }
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&parallel_section_json(points));
    out.push_str("}\n");
    out
}

/// Read `path`, splice the parallel section in
/// ([`splice_parallel_section`]), and write it back.
pub fn record_parallel_preserving(path: &Path, points: &[ParallelPoint]) {
    let existing = std::fs::read_to_string(path).unwrap_or_else(|error| {
        panic!(
            "cannot read {} to extend it with the parallel section \
             (run the sequential baseline first): {error}",
            path.display()
        )
    });
    write_or_warn(path, &splice_parallel_section(&existing, points));
}

/// The CI parallel-smoke gate.
///
/// Runs one n = 4096 election at p = 1 and at p = 2 and **fails** if any
/// report field that canonical mode promises to be partition-count
/// independent differs: outcomes, crash list, event count, total messages,
/// max communicate calls. The p = 2 efficiency is returned for logging but
/// never gates — CI runners are routinely single-core.
///
/// # Errors
/// A description of the first mismatching field.
pub fn parallel_smoke_check() -> Result<(f64, f64), String> {
    let (n, k, seed) = (4096usize, 32usize, 7u64);
    let mut reports = Vec::new();
    let mut rates = Vec::new();
    for partitions in [1usize, 2] {
        let config = SimConfig::new(n)
            .with_seed(seed)
            .with_partitions(partitions);
        let mut sim = ParallelSimulator::new(config);
        for i in 0..k {
            sim.add_participant(ProcId(i), Box::new(LeaderElection::new(ProcId(i))));
        }
        let start = Instant::now();
        let report = sim
            .run_canonical(&RoundCrashPlan::none())
            .map_err(|error| format!("p={partitions} run failed: {error}"))?;
        rates.push(report.events_executed as f64 / start.elapsed().as_secs_f64());
        reports.push(report);
    }
    let (a, b) = (&reports[0], &reports[1]);
    if a.outcomes != b.outcomes {
        return Err("p=2 outcomes differ from p=1".to_string());
    }
    if a.crashed != b.crashed {
        return Err("p=2 crash list differs from p=1".to_string());
    }
    if a.events_executed != b.events_executed {
        return Err(format!(
            "p=2 executed {} events, p=1 executed {}",
            b.events_executed, a.events_executed
        ));
    }
    if a.metrics.total_messages() != b.metrics.total_messages() {
        return Err("p=2 message totals differ from p=1".to_string());
    }
    if a.metrics.max_communicate_calls() != b.metrics.max_communicate_calls() {
        return Err("p=2 communicate-call maxima differ from p=1".to_string());
    }
    let efficiency = rates[1] / (2.0 * rates[0]);
    Ok((rates[1] / rates[0], efficiency))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_measurements_agree_across_partition_counts() {
        let point = measure_parallel_point(64, 16, 2);
        assert!(point.events > 0);
        assert!(point.samples.len() >= 2);
        assert_eq!(point.samples[0].partitions, 1);
        for sample in &point.samples {
            assert!(sample.events_per_sec > 0.0);
        }
        assert!(point.base_events_per_sec() > 0.0);
    }

    #[test]
    fn splice_preserves_the_sequential_points_verbatim() {
        let existing = "{\n  \"benchmark\": \"election_events_per_sec\",\n  \"points\": [\n    \
                        {\"n\": 16, \"incremental_events_per_sec\": 123.4, \"speedup\": null}\n  \
                        ]\n}\n";
        let point = ParallelPoint {
            n: 4096,
            k: 64,
            trials: 1,
            events: 1000,
            samples: vec![
                PartitionSample {
                    partitions: 1,
                    events_per_sec: 10.0,
                },
                PartitionSample {
                    partitions: 2,
                    events_per_sec: 15.0,
                },
            ],
        };
        let spliced = splice_parallel_section(existing, &[point]);
        assert!(
            spliced
                .contains("{\"n\": 16, \"incremental_events_per_sec\": 123.4, \"speedup\": null}"),
            "sequential point must survive verbatim: {spliced}"
        );
        assert!(spliced.contains("\"parallel\": ["));
        assert!(spliced.contains("\"p\": 2"));
        assert!(spliced.contains("\"efficiency\": 0.75"));
        assert!(spliced.trim_end().ends_with('}'));
        // Splicing twice replaces, not duplicates.
        let twice = splice_parallel_section(&spliced, &[]);
        assert_eq!(twice.matches("parallel_workload").count(), 1);
        // The sequential smoke parser still reads the spliced document.
        assert_eq!(
            crate::baseline::recorded_events_per_sec(&spliced, 16),
            Some(123.4)
        );
    }

    #[test]
    fn smoke_check_passes_on_identical_partitioned_runs() {
        // The real smoke runs n = 4096; the unit test only checks the
        // comparison logic wiring, so keep it cheap by calling the pieces.
        let (secs1, events1) = run_parallel_elections(128, 8, 1, 1);
        let (secs2, events2) = run_parallel_elections(128, 8, 2, 1);
        assert!(secs1 > 0.0 && secs2 > 0.0);
        assert_eq!(events1, events2);
    }
}
