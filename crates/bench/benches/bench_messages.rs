//! Wall-clock view of the message-complexity experiment (E4): contention
//! adaptivity of the paper's election as the number of participants grows at
//! fixed system size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_core::harness::{run_leader_election, ElectionSetup};
use fle_sim::RandomAdversary;
use std::hint::black_box;

fn messages(c: &mut Criterion) {
    let mut group = c.benchmark_group("election_adaptivity_n64");
    group.sample_size(10);
    let n = 32;
    for &k in &[1usize, 4, 16, 32] {
        group.bench_with_input(BenchmarkId::new("participants", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let setup = ElectionSetup::first_k_participate(n, k).with_seed(seed);
                let report =
                    run_leader_election(&setup, &mut RandomAdversary::with_seed(seed)).unwrap();
                black_box(report.total_messages())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, messages);
criterion_main!(benches);
