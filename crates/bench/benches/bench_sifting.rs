//! Wall-clock cost of one sifting phase (plain vs heterogeneous PoisonPill),
//! the simulator-level counterpart of experiments E1/E2/E8 — plus a direct
//! incremental-vs-naive scheduler comparison on the sifting workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_core::PoisonPill;
use fle_model::ProcId;
use fle_sim::{RandomAdversary, SimConfig, Simulator};
use std::hint::black_box;

fn sifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sifting_phase");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("poison_pill", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_sift(n, false, seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("heterogeneous", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_sift(n, true, seed))
            });
        });
    }
    group.finish();
}

fn one_sift_with_scheduler(n: usize, seed: u64, naive: bool) -> usize {
    let mut config = SimConfig::new(n).with_seed(seed);
    if naive {
        config = config.with_naive_event_set();
    }
    let mut sim = Simulator::new(config);
    let bias = 1.0 / (n as f64).sqrt();
    for i in 0..n {
        sim.add_participant(ProcId(i), Box::new(PoisonPill::with_bias(ProcId(i), bias)));
    }
    sim.run(&mut RandomAdversary::with_seed(seed))
        .expect("sift terminates")
        .survivors()
        .len()
}

fn scheduler_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sifting_scheduler");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(one_sift_with_scheduler(n, seed, false))
            });
        });
        group.bench_with_input(BenchmarkId::new("naive_rebuild", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(one_sift_with_scheduler(n, seed, true))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, sifting, scheduler_modes);
criterion_main!(benches);
