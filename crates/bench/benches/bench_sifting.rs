//! Wall-clock cost of one sifting phase (plain vs heterogeneous PoisonPill),
//! the simulator-level counterpart of experiments E1/E2/E8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn sifting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sifting_phase");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("poison_pill", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_sift(n, false, seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("heterogeneous", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_sift(n, true, seed))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, sifting);
criterion_main!(benches);
