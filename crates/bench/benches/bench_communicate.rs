//! Isolates the `communicate` payload path — propagate broadcasts and
//! collect replies — from scheduling, so payload cost is tracked
//! independently of the event-set machinery that `bench_election` exercises.
//!
//! The workload is a deliberately communication-heavy protocol: every
//! processor performs `ROUNDS` alternations of *propagate a status carrying a
//! participant list* (the largest value the real algorithms ship) and
//! *collect the same instance*, under the sequential adversary (deterministic
//! schedules, no protocol-level branching). Each n is measured under both
//! payload modes:
//!
//! * `shared` — the production path: refcount-shared broadcast payloads,
//!   copy-on-write snapshot / delta collect replies,
//! * `clone` — [`fle_sim::SimConfig::with_naive_payloads`]: one entry-list
//!   clone per propagate send, one full view copy per collect reply.
//!
//! Both modes execute byte-identical schedules, so the ratio is a pure
//! payload-cost measurement.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_model::{Action, InstanceId, Key, LocalStateView, Outcome, ProcId, Protocol, Response};
use fle_model::{Status, Value};
use fle_sim::{SequentialAdversary, SimConfig, Simulator};

const ROUNDS: u8 = 4;

/// Propagate-then-collect `ROUNDS` times, carrying a spilled participant
/// list so payload size matches the heterogeneous sifting phases.
struct Chatter {
    me: ProcId,
    n: usize,
    round: u8,
    collecting: bool,
}

impl Protocol for Chatter {
    fn step(&mut self, response: Response) -> Action {
        let acked = matches!(response, Response::AckQuorum);
        if self.collecting {
            black_box(response.expect_views().len());
            self.collecting = false;
            self.round += 1;
        }
        if self.round >= ROUNDS {
            return Action::Return(Outcome::Proceed);
        }
        if acked {
            self.collecting = true;
            return Action::Collect {
                instance: InstanceId::custom(7, 0),
            };
        }
        let list: Vec<ProcId> = (0..self.n.min(64)).map(ProcId).collect();
        Action::Propagate {
            entries: vec![(
                Key::proc(InstanceId::custom(7, 0), self.me),
                Value::Status(Status::resolved_with_list(fle_model::Priority::High, list)),
            )],
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        LocalStateView::new("chatter", "running").with_round(u64::from(self.round))
    }
}

fn run_chatter(n: usize, naive_payloads: bool) -> u64 {
    let mut config = SimConfig::new(n).with_seed(11);
    if naive_payloads {
        config = config.with_naive_payloads();
    }
    let mut sim = Simulator::new(config);
    // Cap the chatterers: each call still broadcasts to all n replicas (the
    // payload cost under measurement scales with n), but wall-clock per
    // iteration stays bounded at the largest size.
    let participants = n.min(64);
    for i in 0..participants {
        sim.add_participant(
            ProcId(i),
            Box::new(Chatter {
                me: ProcId(i),
                n,
                round: 0,
                collecting: false,
            }),
        );
    }
    let report = sim
        .run(&mut SequentialAdversary::new())
        .expect("terminates");
    report.events_executed
}

fn bench_communicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("communicate");
    group.sample_size(10);
    // Participant count is capped in `run_chatter`; n controls replica count.
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("shared", n), &n, |b, &n| {
            b.iter(|| black_box(run_chatter(n, false)))
        });
        group.bench_with_input(BenchmarkId::new("clone", n), &n, |b, &n| {
            b.iter(|| black_box(run_chatter(n, true)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_communicate);
criterion_main!(benches);
