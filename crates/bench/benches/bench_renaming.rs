//! Wall-clock cost of tight renaming: the paper's contention-aware algorithm
//! vs the random-order baseline. Counterpart of experiment E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fle_baselines::RandomOrderRenaming;
use fle_model::ProcId;
use fle_sim::{RandomAdversary, SimConfig, Simulator};
use std::hint::black_box;

fn renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("tight_renaming");
    group.sample_size(10);
    for &n in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("paper", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_renaming(n, seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("random_order", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
                for i in 0..n {
                    sim.add_participant(
                        ProcId(i),
                        Box::new(RandomOrderRenaming::new(ProcId(i), n)),
                    );
                }
                let report = sim.run(&mut RandomAdversary::with_seed(seed)).unwrap();
                black_box(report.names().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, renaming);
criterion_main!(benches);
