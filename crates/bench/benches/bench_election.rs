//! Wall-clock cost of a full leader election: the paper's O(log* k)
//! construction vs the Θ(log n) tournament baseline, plus the threaded
//! runtime. Counterpart of experiment E3.
//!
//! Also records `BENCH_baseline.json`: election events/sec at
//! n ∈ {16, 64, 256} under the incremental scheduler vs the naive
//! rebuild-per-event scheduler, so perf PRs have a trajectory to compare
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn election(c: &mut Criterion) {
    let mut group = c.benchmark_group("leader_election");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("poisonpill_sim", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_election(n, seed))
            });
        });
        group.bench_with_input(BenchmarkId::new("tournament_sim", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_tournament(n, seed))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("leader_election_threaded");
    group.sample_size(10);
    for &n in &[4usize, 8] {
        group.bench_with_input(BenchmarkId::new("poisonpill_threads", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(fle_bench::experiments::bench_one_threaded_election(n, seed))
            });
        });
    }
    group.finish();
}

fn scheduler_baseline(_c: &mut Criterion) {
    // Single-threaded dedicated timing (not criterion-sampled) so the two
    // engine modes are directly comparable; writes BENCH_baseline.json.
    let points = fle_bench::baseline::record_default();
    for p in &points {
        println!(
            "baseline n={:<4} production {:>12.0} ev/s   clone payloads {:>12.0} ev/s   naive {:>12} ev/s",
            p.n,
            p.incremental_events_per_sec,
            p.clone_payload_events_per_sec,
            p.naive_events_per_sec
                .map_or("-".to_string(), |v| format!("{v:.0}")),
        );
    }
}

criterion_group!(benches, election, scheduler_baseline);
criterion_main!(benches);
