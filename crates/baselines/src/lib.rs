//! Baseline algorithms the paper compares against.
//!
//! * [`TournamentTas`] — the tournament-tree test-and-set of Afek, Gafni,
//!   Tromp and Vitányi (AGTV92), the fastest previously-known leader election
//!   against a strong adversary: pair processors into two-contender matches
//!   arranged in a complete binary tree; winners ascend, losers drop out.
//!   Time complexity Θ(log n) — the winner must communicate once per tree
//!   level — which is exactly the barrier the paper's O(log\* n) algorithm
//!   breaks.
//! * [`RandomOrderRenaming`] — the simple balls-into-bins renaming of
//!   AAG+10 discussed in the paper's related-work section: each processor
//!   tries names in random order (ignoring contention information) until it
//!   wins one; its expected time is Ω(n) for a late processor, compared with
//!   the paper's O(log² n).
//!
//! Both baselines run on the same simulator, the same `communicate`
//! primitive and the same adversaries as the paper's algorithms, so the
//! experiment harness compares like with like.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod naive_renaming;
pub mod tournament;

pub use naive_renaming::RandomOrderRenaming;
pub use tournament::{bracket_size, TournamentConfig, TournamentTas};
