//! The random-order renaming baseline (AAG+10, as discussed in the paper's
//! related-work section).
//!
//! Each processor tries names in a uniformly random order, competing for each
//! one with a per-name leader election, until it wins one. Unlike the paper's
//! algorithm (Figure 3) it never looks at contention information, so a late
//! processor may have to try a linear number of names: expected time Ω(n),
//! versus the paper's O(log² n).

use fle_core::leader_election::{ElectionConfig, LeaderElection};
use fle_model::{Action, LocalStateView, Outcome, ProcId, Protocol, Response};

#[derive(Debug)]
enum Stage {
    Init,
    Choosing,
    Electing {
        spot: usize,
        election: Box<LeaderElection>,
    },
    Done(Outcome),
}

/// Random-order renaming: try uniformly random untried names until one is won.
#[derive(Debug)]
pub struct RandomOrderRenaming {
    me: ProcId,
    namespace: usize,
    tried: Vec<bool>,
    stage: Stage,
    attempts: u32,
}

impl RandomOrderRenaming {
    /// A participant renaming into `1..=namespace`.
    ///
    /// # Panics
    /// Panics if `namespace == 0`.
    pub fn new(me: ProcId, namespace: usize) -> Self {
        assert!(
            namespace > 0,
            "the namespace must contain at least one name"
        );
        RandomOrderRenaming {
            me,
            namespace,
            tried: vec![false; namespace],
            stage: Stage::Init,
            attempts: 0,
        }
    }

    /// Number of names tried so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The size of the namespace this participant renames into.
    pub fn namespace(&self) -> usize {
        self.namespace
    }

    fn untried(&self) -> Vec<u64> {
        self.tried
            .iter()
            .enumerate()
            .filter(|(_, tried)| !**tried)
            .map(|(name, _)| name as u64)
            .collect()
    }

    fn choose_next(&mut self) -> Action {
        let choices = self.untried();
        if choices.is_empty() {
            // Exhausted the namespace without winning: only possible when more
            // processors request names than the namespace holds, which the
            // tight-renaming problem excludes. Fail closed.
            self.stage = Stage::Done(Outcome::Lose);
            return Action::Return(Outcome::Lose);
        }
        self.stage = Stage::Choosing;
        Action::Choose { choices }
    }
}

impl Protocol for RandomOrderRenaming {
    fn step(&mut self, response: Response) -> Action {
        match &mut self.stage {
            Stage::Init => {
                debug_assert_eq!(response, Response::Start);
                self.choose_next()
            }
            Stage::Choosing => {
                let spot = response.expect_chosen() as usize;
                self.tried[spot] = true;
                self.attempts += 1;
                let mut election = Box::new(LeaderElection::with_config(
                    self.me,
                    ElectionConfig::for_name(spot),
                ));
                let first_action = election.step(Response::Start);
                self.stage = Stage::Electing { spot, election };
                first_action
            }
            Stage::Electing { spot, election } => {
                let action = election.step(response);
                match action {
                    Action::Return(Outcome::Win) => {
                        let name = *spot + 1;
                        self.stage = Stage::Done(Outcome::Name(name));
                        Action::Return(Outcome::Name(name))
                    }
                    Action::Return(_) => self.choose_next(),
                    other => other,
                }
            }
            Stage::Done(outcome) => Action::Return(*outcome),
        }
    }

    fn adversary_view(&self) -> LocalStateView {
        let (phase, coin) = match &self.stage {
            Stage::Init => ("init", None),
            Stage::Choosing => ("choosing", None),
            Stage::Electing { election, .. } => ("electing", election.adversary_view().coin),
            Stage::Done(_) => ("done", None),
        };
        LocalStateView {
            algorithm: "random-order-renaming",
            phase,
            round: u64::from(self.attempts),
            coin,
            details: vec![("attempts", i64::from(self.attempts))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fle_core::checks;
    use fle_sim::{Adversary, RandomAdversary, SequentialAdversary, SimConfig, Simulator};

    fn run_naive(
        n: usize,
        k: usize,
        seed: u64,
        adversary: &mut dyn Adversary,
    ) -> fle_sim::ExecutionReport {
        let mut sim = Simulator::new(SimConfig::new(n).with_seed(seed));
        for i in 0..k {
            sim.add_participant(ProcId(i), Box::new(RandomOrderRenaming::new(ProcId(i), n)));
        }
        sim.run(adversary).expect("renaming terminates")
    }

    #[test]
    fn names_are_unique_and_tight() {
        for (n, k) in [(2usize, 2usize), (4, 4), (6, 6), (8, 5)] {
            for seed in 0..3u64 {
                let adversaries: Vec<Box<dyn Adversary>> = vec![
                    Box::new(RandomAdversary::with_seed(seed)),
                    Box::new(SequentialAdversary::new()),
                ];
                for mut adversary in adversaries {
                    let report = run_naive(n, k, seed, adversary.as_mut());
                    assert!(
                        checks::valid_tight_renaming(&report, k, n),
                        "n={n} k={k} seed={seed} adversary={} names={:?}",
                        adversary.name(),
                        report.names()
                    );
                }
            }
        }
    }

    #[test]
    fn attempts_never_repeat_a_name() {
        let mut baseline = RandomOrderRenaming::new(ProcId(0), 3);
        let _ = baseline.step(Response::Start);
        let _ = baseline.step(Response::Chosen(1));
        assert!(baseline.tried[1]);
        assert_eq!(baseline.attempts(), 1);
        assert_eq!(baseline.untried(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one name")]
    fn zero_namespace_is_rejected() {
        let _ = RandomOrderRenaming::new(ProcId(0), 0);
    }
}
